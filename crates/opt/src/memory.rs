//! Memory optimizations: alias analysis, store-to-load forwarding, dead
//! store elimination, and `mem2reg` promotion of allocas.
//!
//! This is where stack symbolization pays off, exactly as the paper argues
//! (§2.1–2.2): before symbolization the lifted program's stack lives in one
//! opaque byte-array global and every access aliases every other, so these
//! passes can do almost nothing. After WYTIWYG partitions the frame into
//! distinct allocas, non-escaping locals provably don't alias anything and
//! loads collapse onto their defining stores.

use std::collections::HashMap;
#[cfg(test)]
use wyt_ir::Term;
use wyt_ir::{BinOp, BlockId, Function, GlobalKind, InstId, InstKind, Module, Ty, Val};

/// The root of a memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// A stack allocation in this function.
    Alloca(InstId),
    /// A constant (data segment / fixed global) address.
    Abs(u32),
    /// A dynamic SSA base value: two locations with the same base and
    /// disjoint constant offsets cannot alias (LLVM basic-aa style).
    Dyn(Val),
    /// Anything else.
    Unknown,
}

/// A resolved memory location: base + constant offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLoc {
    /// Address root.
    pub base: MemBase,
    /// Constant byte offset from the root.
    pub off: i32,
}

/// Resolve an address value to a location by following constant-offset
/// arithmetic and copies.
pub fn resolve_addr(f: &Function, v: Val) -> MemLoc {
    let mut cur = v;
    let mut off = 0i32;
    for _ in 0..64 {
        match cur {
            Val::Const(c) => return MemLoc { base: MemBase::Abs(c as u32), off },
            Val::Param(p) => return MemLoc { base: MemBase::Dyn(Val::Param(p)), off },
            Val::Inst(i) => match f.inst(i) {
                InstKind::Alloca { .. } => return MemLoc { base: MemBase::Alloca(i), off },
                InstKind::Copy { v } => cur = *v,
                InstKind::Bin { op: BinOp::Add, a, b } => match (a.as_const(), b.as_const()) {
                    (_, Some(c)) => {
                        off = off.wrapping_add(c);
                        cur = *a;
                    }
                    (Some(c), _) => {
                        off = off.wrapping_add(c);
                        cur = *b;
                    }
                    _ => return MemLoc { base: MemBase::Dyn(cur), off },
                },
                InstKind::Bin { op: BinOp::Sub, a, b } => match b.as_const() {
                    Some(c) => {
                        off = off.wrapping_sub(c);
                        cur = *a;
                    }
                    None => return MemLoc { base: MemBase::Dyn(cur), off },
                },
                _ => return MemLoc { base: MemBase::Dyn(cur), off },
            },
        }
    }
    MemLoc { base: MemBase::Dyn(cur), off }
}

/// Per-function escape analysis for allocas: an alloca escapes if any
/// value derived from it is used other than as a load/store address.
pub fn escaped_allocas(f: &Function) -> HashMap<InstId, bool> {
    // Map each instruction to the alloca it (constantly) derives from.
    let mut derives: HashMap<InstId, InstId> = HashMap::new();
    let mut escaped: HashMap<InstId, bool> = HashMap::new();
    let rpo = f.rpo();
    for &b in &rpo {
        for &i in &f.blocks[b.index()].insts {
            match f.inst(i) {
                InstKind::Alloca { .. } => {
                    derives.insert(i, i);
                    escaped.entry(i).or_insert(false);
                }
                InstKind::Copy { v: Val::Inst(s) } => {
                    if let Some(&root) = derives.get(s) {
                        derives.insert(i, root);
                    }
                }
                InstKind::Bin { op: BinOp::Add | BinOp::Sub, a, b } => {
                    let root = match (a, b) {
                        (Val::Inst(s), x) if x.as_const().is_some() => derives.get(s).copied(),
                        (x, Val::Inst(s)) if x.as_const().is_some() => derives.get(s).copied(),
                        _ => None,
                    };
                    if let Some(root) = root {
                        derives.insert(i, root);
                    }
                }
                _ => {}
            }
        }
    }
    // Any use of a derived value outside load/store-address position (or
    // further constant derivation) escapes the root.
    let mark = |v: Val, escaped: &mut HashMap<InstId, bool>| {
        if let Val::Inst(s) = v {
            if let Some(&root) = derives.get(&s) {
                escaped.insert(root, true);
            }
        }
    };
    for &b in &rpo {
        for &i in &f.blocks[b.index()].insts {
            match f.inst(i) {
                InstKind::Load { .. } => {} // address use is fine
                InstKind::Store { val, .. } => mark(*val, &mut escaped),
                InstKind::Copy { .. } => {
                    // Copies propagate derivation when tracked above; a copy
                    // of a derived value we failed to track is conservative
                    // only if used elsewhere, which those uses will catch.
                }
                InstKind::Bin { op: BinOp::Add | BinOp::Sub, a, b }
                    if a.as_const().is_some() || b.as_const().is_some() => {}
                other => other.for_each_operand(|v| mark(v, &mut escaped)),
            }
        }
        f.blocks[b.index()].term.for_each_operand(|v| mark(v, &mut escaped));
    }
    escaped
}

/// Address ranges that guest pointers can never reach (the virtual CPU
/// register cells: the lifter only ever addresses them with constants,
/// exactly like BinRec's out-of-guest vCPU state).
pub fn private_ranges(m: &Module) -> Vec<(u32, u32)> {
    let addrs = wyt_ir::interp::layout_globals(&m.globals);
    m.globals
        .iter()
        .zip(addrs)
        .filter(|(g, _)| matches!(g.kind, GlobalKind::VcpuReg(_)))
        .map(|(g, a)| (a, a + g.size))
        .collect()
}

fn in_private(ranges: &[(u32, u32)], addr: u32, size: u32) -> bool {
    ranges.iter().any(|(lo, hi)| addr >= *lo && addr + size <= *hi)
}

fn may_alias(
    a: (MemLoc, u32),
    b: (MemLoc, u32),
    escaped: &HashMap<InstId, bool>,
    ranges: &[(u32, u32)],
) -> bool {
    let overlap =
        |ao: i32, asz: u32, bo: i32, bsz: u32| ao < bo + bsz as i32 && bo < ao + asz as i32;
    match (a.0.base, b.0.base) {
        (MemBase::Alloca(x), MemBase::Alloca(y)) => x == y && overlap(a.0.off, a.1, b.0.off, b.1),
        (MemBase::Abs(x), MemBase::Abs(y)) => {
            overlap(x as i32 + a.0.off, a.1, y as i32 + b.0.off, b.1)
        }
        // Constant addresses name globals / the data segment; programs in
        // this universe cannot forge stack addresses as literals.
        (MemBase::Alloca(_), MemBase::Abs(_)) | (MemBase::Abs(_), MemBase::Alloca(_)) => false,
        (MemBase::Alloca(x), MemBase::Unknown) | (MemBase::Unknown, MemBase::Alloca(x)) => {
            escaped.get(&x).copied().unwrap_or(true)
        }
        // A constant address inside a private (vCPU) range cannot be
        // reached by a computed guest pointer.
        (MemBase::Abs(x), MemBase::Unknown | MemBase::Dyn(_)) => {
            !in_private(ranges, (x as i32 + a.0.off) as u32, a.1)
        }
        (MemBase::Unknown | MemBase::Dyn(_), MemBase::Abs(y)) => {
            !in_private(ranges, (y as i32 + b.0.off) as u32, b.1)
        }
        // Identical dynamic bases: alias iff the constant offsets overlap.
        (MemBase::Dyn(x), MemBase::Dyn(y)) if x == y => overlap(a.0.off, a.1, b.0.off, b.1),
        (MemBase::Alloca(x), MemBase::Dyn(_)) | (MemBase::Dyn(_), MemBase::Alloca(x)) => {
            escaped.get(&x).copied().unwrap_or(true)
        }
        _ => true,
    }
}

/// Store-to-load forwarding and redundant load elimination, block-local.
pub fn forward_function(f: &mut Function, ranges: &[(u32, u32)]) -> bool {
    let escaped = escaped_allocas(f);
    let mut changed = false;
    for b in f.rpo() {
        // (loc, ty) -> known value
        let mut avail: Vec<(MemLoc, Ty, Val)> = Vec::new();
        let insts = f.blocks[b.index()].insts.clone();
        for id in insts {
            match f.inst(id).clone() {
                InstKind::Load { ty, addr } => {
                    let loc = resolve_addr(f, addr);
                    if let Some((_, _, v)) = avail.iter().find(|(l, t, _)| *l == loc && *t == ty) {
                        let v = *v;
                        *f.inst_mut(id) = InstKind::Copy { v };
                        f.replace_all_uses(Val::Inst(id), v);
                        changed = true;
                        continue;
                    }
                    if loc.base != MemBase::Unknown {
                        avail.push((loc, ty, Val::Inst(id)));
                    }
                }
                InstKind::Store { ty, addr, val } => {
                    let loc = resolve_addr(f, addr);
                    let sz = ty.bytes();
                    avail.retain(|(l, t, _)| {
                        !may_alias((loc, sz), (*l, t.bytes()), &escaped, ranges)
                    });
                    // A narrow store truncates: the stored SSA value is NOT
                    // what a narrow load would return unless it fits the
                    // access width, so only full-width stores forward.
                    let forwardable = match ty {
                        Ty::I32 => true,
                        _ => match val.as_const() {
                            Some(c) => (c as u32) & !ty.mask() == 0,
                            None => false,
                        },
                    };
                    if loc.base != MemBase::Unknown && forwardable {
                        avail.push((loc, ty, val));
                    }
                }
                k if k.is_call() => {
                    // Calls may write anything except non-escaping allocas
                    // (vCPU cells included: callees store to them).
                    avail.retain(|(l, _, _)| match l.base {
                        MemBase::Alloca(a) => !escaped.get(&a).copied().unwrap_or(true),
                        _ => false,
                    });
                }
                _ => {}
            }
        }
    }
    changed
}

/// Block-local dead store elimination.
pub fn dead_stores_function(f: &mut Function, ranges: &[(u32, u32)]) -> bool {
    let escaped = escaped_allocas(f);
    let mut changed = false;
    for b in f.rpo() {
        let insts = f.blocks[b.index()].insts.clone();
        // Walk backward; `overwritten` holds exact locations that will be
        // overwritten before any potential read.
        let mut overwritten: Vec<(MemLoc, Ty)> = Vec::new();
        let mut dead: Vec<InstId> = Vec::new();
        for &id in insts.iter().rev() {
            match f.inst(id).clone() {
                InstKind::Store { ty, addr, .. } => {
                    let loc = resolve_addr(f, addr);
                    if loc.base != MemBase::Unknown
                        && overwritten.iter().any(|(l, t)| *l == loc && *t == ty)
                    {
                        dead.push(id);
                        continue;
                    }
                    if loc.base != MemBase::Unknown {
                        overwritten.push((loc, ty));
                    } else {
                        // Unknown store may read-modify anything? It writes;
                        // conservatively it does not invalidate overwrites
                        // of non-aliasing locations — but Unknown aliases
                        // everything, so clear non-private entries.
                        overwritten.retain(|(l, _)| match l.base {
                            MemBase::Alloca(a) => !escaped.get(&a).copied().unwrap_or(true),
                            _ => false,
                        });
                    }
                }
                InstKind::Load { ty, addr } => {
                    let loc = resolve_addr(f, addr);
                    let sz = ty.bytes();
                    overwritten
                        .retain(|(l, t)| !may_alias((loc, sz), (*l, t.bytes()), &escaped, ranges));
                }
                k if k.is_call() => {
                    // A call may read anything except non-escaping allocas.
                    overwritten.retain(|(l, _)| match l.base {
                        MemBase::Alloca(a) => !escaped.get(&a).copied().unwrap_or(true),
                        _ => false,
                    });
                }
                _ => {}
            }
        }
        if !dead.is_empty() {
            f.blocks[b.index()].insts.retain(|i| !dead.contains(i));
            changed = true;
        }
    }
    changed
}

/// Promote non-escaping, directly addressed 4-byte allocas to SSA values.
pub fn mem2reg_function(f: &mut Function) -> bool {
    let escaped = escaped_allocas(f);
    let rpo = f.rpo();

    // Find promotable allocas: every use is a Load/Store i32 whose address
    // is *exactly* the alloca value.
    let mut candidates: Vec<InstId> = Vec::new();
    let mut disqualified: HashMap<InstId, bool> = HashMap::new();
    for &b in &rpo {
        for &i in &f.blocks[b.index()].insts {
            if let InstKind::Alloca { size, .. } = f.inst(i) {
                if *size == 4 && !escaped.get(&i).copied().unwrap_or(true) {
                    candidates.push(i);
                }
            }
        }
    }
    for &b in &rpo {
        for &i in &f.blocks[b.index()].insts {
            let check = |v: Val, dq: &mut HashMap<InstId, bool>| {
                if let Val::Inst(s) = v {
                    dq.insert(s, true);
                }
            };
            match f.inst(i) {
                InstKind::Load { ty: Ty::I32, addr } => {
                    // Direct address use is fine; anything else about the
                    // operand set of a load is just the address.
                    if addr.as_inst().is_none() {
                        // constant address: irrelevant
                    }
                }
                InstKind::Load { addr, .. } => check(*addr, &mut disqualified),
                InstKind::Store { ty: Ty::I32, addr, val } => {
                    let _ = addr;
                    check(*val, &mut disqualified);
                }
                InstKind::Store { addr, val, .. } => {
                    check(*addr, &mut disqualified);
                    check(*val, &mut disqualified);
                }
                other => other.for_each_operand(|v| check(v, &mut disqualified)),
            }
        }
        f.blocks[b.index()].term.for_each_operand(|v| check_term(v, &mut disqualified));
    }
    fn check_term(v: Val, dq: &mut HashMap<InstId, bool>) {
        if let Val::Inst(s) = v {
            dq.insert(s, true);
        }
    }
    candidates.retain(|c| !disqualified.get(c).copied().unwrap_or(false));
    if candidates.is_empty() {
        return false;
    }
    let cand_index: HashMap<InstId, usize> =
        candidates.iter().enumerate().map(|(k, v)| (*v, k)).collect();

    // Maximal-phi SSA construction: one phi per (block, alloca) for blocks
    // with predecessors; DCE and phi simplification clean the rest.
    let preds = f.preds();
    let n = candidates.len();
    let mut phi_of: HashMap<(BlockId, usize), InstId> = HashMap::new();
    for &b in &rpo {
        if b == f.entry || preds[b.index()].is_empty() {
            continue;
        }
        for k in 0..n {
            let phi = f.add_inst(InstKind::Phi { incomings: Vec::new() });
            phi_of.insert((b, k), phi);
        }
    }

    // Rewrite block bodies, collecting out-values.
    let mut out_vals: HashMap<(BlockId, usize), Val> = HashMap::new();
    for &b in &rpo {
        let mut cur: Vec<Val> = (0..n)
            .map(|k| match phi_of.get(&(b, k)) {
                Some(&p) => Val::Inst(p),
                None => Val::Const(0), // entry / no preds: uninitialized
            })
            .collect();
        let insts = f.blocks[b.index()].insts.clone();
        let mut new_insts = Vec::with_capacity(insts.len());
        for id in insts {
            match f.inst(id).clone() {
                InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) }
                    if cand_index.contains_key(&a) =>
                {
                    let k = cand_index[&a];
                    *f.inst_mut(id) = InstKind::Copy { v: cur[k] };
                    new_insts.push(id);
                }
                InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val }
                    if cand_index.contains_key(&a) =>
                {
                    let k = cand_index[&a];
                    cur[k] = val;
                    // Store removed entirely.
                }
                _ => new_insts.push(id),
            }
        }
        // Prepend this block's phis.
        let mut with_phis: Vec<InstId> =
            (0..n).filter_map(|k| phi_of.get(&(b, k)).copied()).collect();
        with_phis.extend(new_insts);
        f.blocks[b.index()].insts = with_phis;
        for (k, v) in cur.into_iter().enumerate() {
            out_vals.insert((b, k), v);
        }
    }

    // Fill phi incomings from predecessors.
    for (&(b, k), &phi) in &phi_of {
        let incomings: Vec<(BlockId, Val)> = preds[b.index()]
            .iter()
            .map(|&p| (p, out_vals.get(&(p, k)).copied().unwrap_or(Val::Const(0))))
            .collect();
        *f.inst_mut(phi) = InstKind::Phi { incomings };
    }

    // The allocas themselves are now unused; DCE removes them.
    true
}

/// Forwarding, dead-store elimination and mem2reg for one function.
/// `ranges` is the module-level [`private_ranges`] precomputation.
pub fn run_function(f: &mut Function, ranges: &[(u32, u32)]) -> bool {
    forward_function(f, ranges) | dead_stores_function(f, ranges) | mem2reg_function(f)
}

/// Run forwarding, dead-store elimination and mem2reg over a module:
/// one serial module-level alias precomputation, then a function-local
/// sweep (sharded across the pool for large modules).
pub fn run(m: &mut Module) -> bool {
    let ranges = private_ranges(m);
    crate::for_each_func(m, |f| run_function(f, &ranges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::verify::verify_module;
    use wyt_ir::{CmpOp, Module};

    fn check(f: Function) -> Module {
        let mut m = Module::new();
        let id = m.add_func(f);
        m.entry = Some(id);
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn forwards_store_to_load_through_alloca() {
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "x".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Const(7) },
        );
        let l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(l)));
        assert!(forward_function(&mut f, &[]));
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Val::Const(7))));
        check(f);
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "a".into() });
        let b = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "b".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Const(1) },
        );
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(b), val: Val::Const(2) },
        );
        let l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(l)));
        assert!(forward_function(&mut f, &[]));
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Val::Const(1))));
    }

    #[test]
    fn unknown_store_kills_escaped_but_not_private() {
        let mut m = Module::new();
        // callee(p) stores through its parameter.
        let mut callee = Function::new("c");
        callee.num_params = 1;
        callee.push_inst(
            callee.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Param(0), val: Val::Const(9) },
        );
        callee.blocks[0].term = Term::Ret(None);
        let cid = m.add_func(callee);

        let mut f = Function::new("t");
        let private =
            f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "p".into() });
        let public = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "q".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(private), val: Val::Const(1) },
        );
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(public), val: Val::Const(2) },
        );
        f.push_inst(f.entry, InstKind::Call { f: cid, args: vec![Val::Inst(public)] });
        let l1 = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(private) });
        let l2 = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(public) });
        let s = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(l1), b: Val::Inst(l2) },
        );
        f.blocks[0].term = Term::Ret(Some(Val::Inst(s)));

        let escaped = escaped_allocas(&f);
        assert_eq!(escaped.get(&private), Some(&false));
        assert_eq!(escaped.get(&public), Some(&true));

        assert!(forward_function(&mut f, &[]));
        // l1 must be folded to 1; l2 must remain a load.
        assert!(matches!(f.inst(l1), InstKind::Copy { v: Val::Const(1) }));
        assert!(matches!(f.inst(l2), InstKind::Load { .. }));
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn dead_store_removed_when_overwritten() {
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "x".into() });
        let s1 = f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Const(1) },
        );
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Const(2) },
        );
        let l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(l)));
        assert!(dead_stores_function(&mut f, &[]));
        assert!(!f.blocks[0].insts.contains(&s1));
    }

    #[test]
    fn mem2reg_promotes_through_loop() {
        // x = 0; while (x != 5) x = x + 1; return x;
        let mut f = Function::new("t");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "x".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Const(0) },
        );
        f.blocks[0].term = Term::Br(header);
        let l = f.push_inst(header, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        let c =
            f.push_inst(header, InstKind::Cmp { op: CmpOp::Ne, a: Val::Inst(l), b: Val::Const(5) });
        f.blocks[header.index()].term = Term::CondBr { c: Val::Inst(c), t: body, f: exit };
        let l2 = f.push_inst(body, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        let inc =
            f.push_inst(body, InstKind::Bin { op: BinOp::Add, a: Val::Inst(l2), b: Val::Const(1) });
        f.push_inst(body, InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Inst(inc) });
        f.blocks[body.index()].term = Term::Br(header);
        let l3 = f.push_inst(exit, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        f.blocks[exit.index()].term = Term::Ret(Some(Val::Inst(l3)));

        assert!(mem2reg_function(&mut f));
        let m = check(f);
        // No loads/stores of the alloca remain.
        let f = &m.funcs[0];
        for b in f.rpo() {
            for &i in &f.blocks[b.index()].insts {
                assert!(
                    !matches!(f.inst(i), InstKind::Load { addr: Val::Inst(x), .. } | InstKind::Store { addr: Val::Inst(x), .. } if *x == wyt_ir::InstId(0))
                );
            }
        }
        // And it still computes 5.
        let out = wyt_ir::interp::Interp::new(&m, vec![], wyt_ir::interp::NoHooks).run();
        assert_eq!(out.exit_code, 5);
    }

    #[test]
    fn escaped_alloca_not_promoted() {
        let mut m = Module::new();
        let mut callee = Function::new("c");
        callee.num_params = 1;
        callee.blocks[0].term = Term::Ret(None);
        let cid = m.add_func(callee);
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "x".into() });
        f.push_inst(f.entry, InstKind::Call { f: cid, args: vec![Val::Inst(a)] });
        let l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(l)));
        assert!(!mem2reg_function(&mut f));
    }

    #[test]
    fn resolve_addr_follows_chains() {
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Alloca { size: 16, align: 4, name: "arr".into() });
        let p1 = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(a), b: Val::Const(8) },
        );
        let p2 = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Sub, a: Val::Inst(p1), b: Val::Const(4) },
        );
        f.blocks[0].term = Term::Ret(None);
        assert_eq!(resolve_addr(&f, Val::Inst(p2)), MemLoc { base: MemBase::Alloca(a), off: 4 });
        assert_eq!(
            resolve_addr(&f, Val::Const(0x400010)),
            MemLoc { base: MemBase::Abs(0x400010), off: 0 }
        );
    }
}
