//! Control-flow graph cleanup: merge single-predecessor chains, thread
//! trivial branches, and prune phi inputs from unreachable predecessors.

use wyt_ir::{Function, InstKind, Module, Term};

/// Simplify one function's CFG. Returns `true` on change.
pub fn run_function(f: &mut Function) -> bool {
    let mut changed = false;

    // Prune phi incomings whose edge no longer exists: the source block is
    // unreachable, or it no longer branches here at all (edge-removing
    // passes like terminator folding leave such stale entries behind).
    let rpo = f.rpo();
    let mut reachable = vec![false; f.blocks.len()];
    for &b in &rpo {
        reachable[b.index()] = true;
    }
    let preds = f.preds();
    for &b in &rpo {
        let insts = f.blocks[b.index()].insts.clone();
        for id in insts {
            let is_pred = |p: wyt_ir::BlockId| preds[b.index()].contains(&p);
            if let InstKind::Phi { incomings } = f.inst_mut(id) {
                let before = incomings.len();
                incomings.retain(|(p, _)| reachable[p.index()] && is_pred(*p));
                changed |= incomings.len() != before;
            }
        }
    }

    // Merge b -> c where b ends Br(c) and c's only predecessor is b.
    loop {
        let preds = f.preds();
        let rpo = f.rpo();
        let mut merged = false;
        for &b in &rpo {
            let Term::Br(c) = f.blocks[b.index()].term else { continue };
            if c == b || c == f.entry {
                continue;
            }
            // Count only reachable predecessors.
            let cpreds: Vec<_> = preds[c.index()].iter().filter(|p| reachable[p.index()]).collect();
            if cpreds.len() != 1 || *cpreds[0] != b {
                continue;
            }
            // Resolve c's phis (single pred) to copies.
            let c_insts = f.blocks[c.index()].insts.clone();
            for id in &c_insts {
                if let InstKind::Phi { incomings } = f.inst(*id).clone() {
                    let v = incomings
                        .iter()
                        .find(|(p, _)| *p == b)
                        .map(|(_, v)| *v)
                        .unwrap_or(wyt_ir::Val::Const(0));
                    *f.inst_mut(*id) = InstKind::Copy { v };
                }
            }
            // Splice.
            let mut tail = std::mem::take(&mut f.blocks[c.index()].insts);
            let cterm = std::mem::replace(&mut f.blocks[c.index()].term, Term::Unreachable);
            f.blocks[b.index()].insts.append(&mut tail);
            f.blocks[b.index()].term = cterm;
            // Phis in c's former successors referring to c must refer to b.
            let succs: Vec<_> = {
                let mut s = Vec::new();
                f.blocks[b.index()].term.for_each_succ(|x| s.push(x));
                s
            };
            for s in succs {
                let s_insts = f.blocks[s.index()].insts.clone();
                for id in s_insts {
                    if let InstKind::Phi { incomings } = f.inst_mut(id) {
                        for (p, _) in incomings.iter_mut() {
                            if *p == c {
                                *p = b;
                            }
                        }
                    }
                }
            }
            merged = true;
            changed = true;
            break; // recompute preds
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Simplify every function (function-local; sharded across the pool
/// for large modules).
pub fn run(m: &mut Module) -> bool {
    crate::for_each_func(m, run_function)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::verify::verify_module;
    use wyt_ir::{BinOp, Val};

    #[test]
    fn merges_linear_chain() {
        let mut f = Function::new("t");
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.blocks[0].term = Term::Br(b1);
        let x =
            f.push_inst(b1, InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) });
        f.blocks[b1.index()].term = Term::Br(b2);
        f.blocks[b2.index()].term = Term::Ret(Some(Val::Inst(x)));
        assert!(run_function(&mut f));
        // Everything collapses into the entry block.
        assert!(matches!(f.blocks[0].term, Term::Ret(_)));
        let mut m = Module::new();
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn does_not_merge_into_shared_block() {
        let mut f = Function::new("t");
        f.num_params = 1;
        let t = f.add_block();
        let e = f.add_block();
        let join = f.add_block();
        f.blocks[0].term = Term::CondBr { c: Val::Param(0), t, f: e };
        f.blocks[t.index()].term = Term::Br(join);
        f.blocks[e.index()].term = Term::Br(join);
        f.blocks[join.index()].term = Term::Ret(None);
        run_function(&mut f);
        // join still has two predecessors; t and e cannot merge into it.
        assert!(matches!(f.blocks[t.index()].term, Term::Br(b) if b == join));
    }

    #[test]
    fn prunes_unreachable_phi_inputs() {
        let mut f = Function::new("t");
        let dead = f.add_block(); // never branched to
        let next = f.add_block();
        f.blocks[0].term = Term::Br(next);
        f.blocks[dead.index()].term = Term::Br(next);
        // A phi that mentions the unreachable pred.
        let phi = f.push_inst(
            next,
            InstKind::Phi {
                incomings: vec![(wyt_ir::BlockId(0), Val::Const(1)), (dead, Val::Const(2))],
            },
        );
        f.blocks[next.index()].term = Term::Ret(Some(Val::Inst(phi)));
        // Note: `dead` *does* branch to next, but is unreachable from entry.
        assert!(run_function(&mut f));
    }
}
