//! # wyt-opt — the re-optimization pipeline
//!
//! The reproduction's stand-in for LLVM's optimizer: constant folding,
//! dominator-scoped CSE, CFG simplification, dead code elimination, alias
//! analysis with store-to-load forwarding, `mem2reg`, and inlining.
//!
//! Its precision deliberately mirrors the paper's argument (§2.1–2.2): all
//! memory passes key on *distinct allocas*. A lifted-but-unsymbolized
//! program keeps its stack in one byte-array global, so every access
//! aliases everything and the pipeline can only clean up arithmetic. After
//! WYTIWYG symbolizes the frame into allocas, the same pipeline promotes
//! locals to SSA, forwards spills, and deletes the emulated-stack traffic —
//! that asymmetry is the performance story of Table 1.

pub mod cse;
pub mod dce;
pub mod fold;
pub mod inline;
pub mod memory;
pub mod simplify_cfg;

pub use inline::InlineLimits;

use wyt_ir::Module;

/// Optimization effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Cleanup only: folding, CSE, DCE, CFG simplification.
    Clean,
    /// Full pipeline including memory optimization and inlining.
    Full,
}

/// Run `pass` under an observability span, counting rounds that changed
/// the module.
fn timed(name: &'static str, m: &mut Module, pass: fn(&mut Module) -> bool) -> bool {
    let _s = wyt_obs::Span::enter(name);
    let changed = pass(m);
    if changed && wyt_obs::enabled() {
        wyt_obs::counter(&format!("{name}.changed"), 1);
    }
    changed
}

/// Run the pipeline to a bounded fixpoint.
pub fn optimize(m: &mut Module, level: OptLevel) {
    let rounds = 8;
    for _ in 0..rounds {
        wyt_obs::counter("opt.rounds", 1);
        let mut changed = false;
        changed |= timed("opt.fold", m, fold::run);
        changed |= timed("opt.cse", m, cse::run);
        changed |= timed("opt.dce", m, dce::run);
        changed |= timed("opt.simplify_cfg", m, simplify_cfg::run);
        if level == OptLevel::Full {
            changed |= timed("opt.memory", m, memory::run);
            changed |= timed("opt.dce", m, dce::run);
        }
        if !changed {
            break;
        }
    }
    let inlined = level == OptLevel::Full && {
        let _s = wyt_obs::Span::enter("opt.inline");
        inline::run(m, &InlineLimits::default())
    };
    if inlined {
        wyt_obs::counter("opt.inline.changed", 1);
        for _ in 0..rounds {
            wyt_obs::counter("opt.rounds", 1);
            let mut changed = false;
            changed |= timed("opt.fold", m, fold::run);
            changed |= timed("opt.cse", m, cse::run);
            changed |= timed("opt.dce", m, dce::run);
            changed |= timed("opt.simplify_cfg", m, simplify_cfg::run);
            changed |= timed("opt.memory", m, memory::run);
            changed |= timed("opt.dce", m, dce::run);
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::interp::{Interp, NoHooks};
    use wyt_ir::verify::verify_module;
    use wyt_ir::{BinOp, CmpOp, Function, InstKind, Term, Ty, Val};

    /// A function computing sum(i*2+1 for i in 0..10) through allocas.
    fn looped_module() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let acc = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "acc".into() });
        let i = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "i".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(acc), val: Val::Const(0) },
        );
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(i), val: Val::Const(0) },
        );
        f.blocks[0].term = Term::Br(header);
        let iv = f.push_inst(header, InstKind::Load { ty: Ty::I32, addr: Val::Inst(i) });
        let c = f.push_inst(
            header,
            InstKind::Cmp { op: CmpOp::SLt, a: Val::Inst(iv), b: Val::Const(10) },
        );
        f.blocks[header.index()].term = Term::CondBr { c: Val::Inst(c), t: body, f: exit };
        let iv2 = f.push_inst(body, InstKind::Load { ty: Ty::I32, addr: Val::Inst(i) });
        let term = f
            .push_inst(body, InstKind::Bin { op: BinOp::Mul, a: Val::Inst(iv2), b: Val::Const(2) });
        let term1 = f.push_inst(
            body,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(term), b: Val::Const(1) },
        );
        let av = f.push_inst(body, InstKind::Load { ty: Ty::I32, addr: Val::Inst(acc) });
        let acc2 = f.push_inst(
            body,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(av), b: Val::Inst(term1) },
        );
        f.push_inst(
            body,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(acc), val: Val::Inst(acc2) },
        );
        let inext = f
            .push_inst(body, InstKind::Bin { op: BinOp::Add, a: Val::Inst(iv2), b: Val::Const(1) });
        f.push_inst(
            body,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(i), val: Val::Inst(inext) },
        );
        f.blocks[body.index()].term = Term::Br(header);
        let fin = f.push_inst(exit, InstKind::Load { ty: Ty::I32, addr: Val::Inst(acc) });
        f.blocks[exit.index()].term = Term::Ret(Some(Val::Inst(fin)));
        let id = m.add_func(f);
        m.entry = Some(id);
        m
    }

    #[test]
    fn full_pipeline_preserves_semantics_and_removes_memory_traffic() {
        let mut m = looped_module();
        let before = Interp::new(&m, vec![], NoHooks).run();
        optimize(&mut m, OptLevel::Full);
        verify_module(&m).unwrap();
        let after = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 100);
        assert!(after.steps < before.steps, "optimization should reduce work");
        let f = &m.funcs[0];
        for b in f.rpo() {
            for &i in &f.blocks[b.index()].insts {
                assert!(
                    !matches!(f.inst(i), InstKind::Load { .. } | InstKind::Store { .. }),
                    "memory traffic should be fully promoted"
                );
            }
        }
    }

    #[test]
    fn clean_level_does_not_touch_memory() {
        let mut m = looped_module();
        optimize(&mut m, OptLevel::Clean);
        verify_module(&m).unwrap();
        let f = &m.funcs[0];
        let has_store = f.rpo().iter().any(|b| {
            f.blocks[b.index()].insts.iter().any(|&i| matches!(f.inst(i), InstKind::Store { .. }))
        });
        assert!(has_store, "Clean level must keep stores");
        let out = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(out.exit_code, 100);
    }
}
