//! # wyt-opt — the re-optimization pipeline
//!
//! The reproduction's stand-in for LLVM's optimizer: constant folding,
//! dominator-scoped CSE, CFG simplification, dead code elimination, alias
//! analysis with store-to-load forwarding, `mem2reg`, and inlining.
//!
//! Its precision deliberately mirrors the paper's argument (§2.1–2.2): all
//! memory passes key on *distinct allocas*. A lifted-but-unsymbolized
//! program keeps its stack in one byte-array global, so every access
//! aliases everything and the pipeline can only clean up arithmetic. After
//! WYTIWYG symbolizes the frame into allocas, the same pipeline promotes
//! locals to SSA, forwards spills, and deletes the emulated-stack traffic —
//! that asymmetry is the performance story of Table 1.

pub mod cse;
pub mod dce;
pub mod fold;
pub mod inline;
pub mod memory;
pub mod simplify_cfg;

pub use inline::InlineLimits;

use wyt_ir::{Function, Module};

/// Optimization effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Cleanup only: folding, CSE, DCE, CFG simplification.
    Clean,
    /// Full pipeline including memory optimization and inlining.
    Full,
}

/// One pipeline pass: a module-level runner plus **static** span and
/// counter names, so the disabled-obs fast path never allocates (the
/// old driver built `"{name}.changed"` with `format!` per round).
struct Pass {
    /// Span name.
    name: &'static str,
    /// Counter bumped when the pass changes the module.
    changed: &'static str,
    /// The pass itself.
    run: fn(&mut Module) -> bool,
}

const FOLD: Pass = Pass { name: "opt.fold", changed: "opt.fold.changed", run: fold::run };
const CSE: Pass = Pass { name: "opt.cse", changed: "opt.cse.changed", run: cse::run };
const DCE: Pass = Pass { name: "opt.dce", changed: "opt.dce.changed", run: dce::run };
const SIMPLIFY: Pass =
    Pass { name: "opt.simplify_cfg", changed: "opt.simplify_cfg.changed", run: simplify_cfg::run };
const MEMORY: Pass = Pass { name: "opt.memory", changed: "opt.memory.changed", run: memory::run };

/// The cleanup-only round (arithmetic and control flow, no aliasing).
const CLEAN_PASSES: &[Pass] = &[FOLD, CSE, DCE, SIMPLIFY];
/// The full round: cleanup plus memory optimization and a re-sweep of
/// the dead code it exposes.
const FULL_PASSES: &[Pass] = &[FOLD, CSE, DCE, SIMPLIFY, MEMORY, DCE];

/// Round budget for each fixpoint drive.
const ROUNDS: u32 = 8;

/// Run one pass under its span, counting a change.
fn timed(p: &Pass, m: &mut Module) -> bool {
    let _s = wyt_obs::Span::enter(p.name);
    let changed = (p.run)(m);
    if changed {
        wyt_obs::counter(p.changed, 1);
    }
    changed
}

/// Drive `passes` to a bounded fixpoint: repeat the round until no pass
/// reports a change (or the budget runs out). This is the single driver
/// behind both the pre- and post-inline phases of [`optimize`] — they
/// used to be two hand-copied loops that had already drifted in shape.
fn fixpoint(m: &mut Module, passes: &[Pass]) {
    for _ in 0..ROUNDS {
        wyt_obs::counter("opt.rounds", 1);
        let mut changed = false;
        for p in passes {
            changed |= timed(p, m);
        }
        if !changed {
            break;
        }
    }
}

/// Run the pipeline to a bounded fixpoint, then (at [`OptLevel::Full`])
/// inline and re-drive the full round over the merged bodies.
pub fn optimize(m: &mut Module, level: OptLevel) {
    let passes = match level {
        OptLevel::Clean => CLEAN_PASSES,
        OptLevel::Full => FULL_PASSES,
    };
    fixpoint(m, passes);
    if level != OptLevel::Full {
        return;
    }
    let inlined = {
        let _s = wyt_obs::Span::enter("opt.inline");
        inline::run(m, &InlineLimits::default())
    };
    if inlined {
        wyt_obs::counter("opt.inline.changed", 1);
        fixpoint(m, FULL_PASSES);
    }
}

/// Modules below this many arena instructions are transformed serially:
/// the passes are cheap enough that scoped-thread startup would cost
/// more than the sharded work saves.
const PAR_MIN_INSTS: usize = 4096;

/// Apply a **function-local** pass to every function of `m`, sharding
/// the functions across the `wyt-par` pool when the module is large
/// enough to pay for it.
///
/// Function-local means the pass may read and write only the one
/// function it is given — exactly the contract of every pass here
/// except inlining (which stays serial). Each `Function` is moved to
/// exactly one worker and the vector is reassembled in index order, so
/// the resulting module is byte-identical to a serial sweep.
pub(crate) fn for_each_func(m: &mut Module, pass: impl Fn(&mut Function) -> bool + Sync) -> bool {
    let arena_insts: usize = m.funcs.iter().map(|f| f.insts.len()).sum();
    if m.funcs.len() < 2 || arena_insts < PAR_MIN_INSTS || !wyt_par::parallel() {
        let mut changed = false;
        for f in &mut m.funcs {
            changed |= pass(f);
        }
        return changed;
    }
    let funcs = std::mem::take(&mut m.funcs);
    let mut changed = false;
    m.funcs = wyt_par::par_map_take(funcs, |_, mut f| {
        let c = pass(&mut f);
        (c, f)
    })
    .into_iter()
    .map(|(c, f)| {
        changed |= c;
        f
    })
    .collect();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::interp::{Interp, NoHooks};
    use wyt_ir::verify::verify_module;
    use wyt_ir::{BinOp, CmpOp, Function, InstKind, Term, Ty, Val};

    /// A function computing sum(i*2+1 for i in 0..10) through allocas.
    fn looped_module() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let acc = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "acc".into() });
        let i = f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: "i".into() });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(acc), val: Val::Const(0) },
        );
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(i), val: Val::Const(0) },
        );
        f.blocks[0].term = Term::Br(header);
        let iv = f.push_inst(header, InstKind::Load { ty: Ty::I32, addr: Val::Inst(i) });
        let c = f.push_inst(
            header,
            InstKind::Cmp { op: CmpOp::SLt, a: Val::Inst(iv), b: Val::Const(10) },
        );
        f.blocks[header.index()].term = Term::CondBr { c: Val::Inst(c), t: body, f: exit };
        let iv2 = f.push_inst(body, InstKind::Load { ty: Ty::I32, addr: Val::Inst(i) });
        let term = f
            .push_inst(body, InstKind::Bin { op: BinOp::Mul, a: Val::Inst(iv2), b: Val::Const(2) });
        let term1 = f.push_inst(
            body,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(term), b: Val::Const(1) },
        );
        let av = f.push_inst(body, InstKind::Load { ty: Ty::I32, addr: Val::Inst(acc) });
        let acc2 = f.push_inst(
            body,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(av), b: Val::Inst(term1) },
        );
        f.push_inst(
            body,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(acc), val: Val::Inst(acc2) },
        );
        let inext = f
            .push_inst(body, InstKind::Bin { op: BinOp::Add, a: Val::Inst(iv2), b: Val::Const(1) });
        f.push_inst(
            body,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(i), val: Val::Inst(inext) },
        );
        f.blocks[body.index()].term = Term::Br(header);
        let fin = f.push_inst(exit, InstKind::Load { ty: Ty::I32, addr: Val::Inst(acc) });
        f.blocks[exit.index()].term = Term::Ret(Some(Val::Inst(fin)));
        let id = m.add_func(f);
        m.entry = Some(id);
        m
    }

    #[test]
    fn full_pipeline_preserves_semantics_and_removes_memory_traffic() {
        let mut m = looped_module();
        let before = Interp::new(&m, vec![], NoHooks).run();
        optimize(&mut m, OptLevel::Full);
        verify_module(&m).unwrap();
        let after = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 100);
        assert!(after.steps < before.steps, "optimization should reduce work");
        let f = &m.funcs[0];
        for b in f.rpo() {
            for &i in &f.blocks[b.index()].insts {
                assert!(
                    !matches!(f.inst(i), InstKind::Load { .. } | InstKind::Store { .. }),
                    "memory traffic should be fully promoted"
                );
            }
        }
    }

    #[test]
    fn clean_level_does_not_touch_memory() {
        let mut m = looped_module();
        optimize(&mut m, OptLevel::Clean);
        verify_module(&m).unwrap();
        let f = &m.funcs[0];
        let has_store = f.rpo().iter().any(|b| {
            f.blocks[b.index()].insts.iter().any(|&i| matches!(f.inst(i), InstKind::Store { .. }))
        });
        assert!(has_store, "Clean level must keep stores");
        let out = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(out.exit_code, 100);
    }
}
