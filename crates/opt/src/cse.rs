//! Dominator-scoped common subexpression elimination for pure operations.

use std::collections::HashMap;
use wyt_ir::verify::dominators;
use wyt_ir::{BlockId, Function, InstKind, Module, Val};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(wyt_ir::BinOp, Val, Val),
    Cmp(wyt_ir::CmpOp, Val, Val),
    Ext(bool, wyt_ir::Ty, Val),
    GlobalAddr(wyt_ir::GlobalId),
    FuncAddr(wyt_ir::FuncId),
    Select(Val, Val, Val),
}

fn key_of(kind: &InstKind) -> Option<Key> {
    Some(match kind {
        InstKind::Bin { op, a, b } => {
            // Canonical operand order for commutative ops.
            if op.commutative() && format!("{a:?}") > format!("{b:?}") {
                Key::Bin(*op, *b, *a)
            } else {
                Key::Bin(*op, *a, *b)
            }
        }
        InstKind::Cmp { op, a, b } => Key::Cmp(*op, *a, *b),
        InstKind::Ext { signed, from, v } => Key::Ext(*signed, *from, *v),
        InstKind::GlobalAddr { g } => Key::GlobalAddr(*g),
        InstKind::FuncAddr { f } => Key::FuncAddr(*f),
        InstKind::Select { c, a, b } => Key::Select(*c, *a, *b),
        _ => return None,
    })
}

/// Run CSE over one function. Returns `true` on change.
pub fn run_function(f: &mut Function) -> bool {
    let idom = dominators(f);
    let rpo = f.rpo();
    // Children in the dominator tree.
    let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for &b in &rpo {
        if b != f.entry {
            if let Some(p) = idom[b.index()] {
                children.entry(p).or_default().push(b);
            }
        }
    }

    let mut changed = false;
    // Preorder DFS over the dominator tree with a scoped table.
    let mut table: HashMap<Key, Val> = HashMap::new();
    let mut stack: Vec<(BlockId, Vec<Key>, usize)> = vec![(f.entry, Vec::new(), 0)];
    // First visit: process block, record inserted keys for scope pop.
    let mut visited = vec![false; f.blocks.len()];
    while let Some((b, inserted, child_idx)) = stack.pop() {
        if !visited[b.index()] {
            visited[b.index()] = true;
            let mut my_inserted = Vec::new();
            let insts = f.blocks[b.index()].insts.clone();
            for id in insts {
                let Some(key) = key_of(f.inst(id)) else { continue };
                match table.get(&key) {
                    Some(&prev) => {
                        *f.inst_mut(id) = InstKind::Copy { v: prev };
                        f.replace_all_uses(Val::Inst(id), prev);
                        changed = true;
                    }
                    None => {
                        table.insert(key.clone(), Val::Inst(id));
                        my_inserted.push(key);
                    }
                }
            }
            stack.push((b, my_inserted, 0));
            continue;
        }
        // Returning: descend into next child or pop scope.
        let kids = children.get(&b).cloned().unwrap_or_default();
        if child_idx < kids.len() {
            stack.push((b, inserted, child_idx + 1));
            stack.push((kids[child_idx], Vec::new(), 0));
        } else {
            for k in inserted {
                table.remove(&k);
            }
        }
    }
    changed
}

/// CSE over every function (function-local; sharded across the pool
/// for large modules).
pub fn run(m: &mut Module) -> bool {
    crate::for_each_func(m, run_function)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::{BinOp, Term};

    #[test]
    fn identical_exprs_deduped_within_block() {
        let mut f = Function::new("t");
        f.num_params = 2;
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Param(1) },
        );
        let b = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Param(1) },
        );
        let c = f
            .push_inst(f.entry, InstKind::Bin { op: BinOp::Mul, a: Val::Inst(a), b: Val::Inst(b) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        assert!(run_function(&mut f));
        let InstKind::Bin { a: ma, b: mb, .. } = f.inst(c) else { panic!() };
        assert_eq!(ma, mb);
    }

    #[test]
    fn commutative_order_is_canonicalized() {
        let mut f = Function::new("t");
        f.num_params = 2;
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Param(1) },
        );
        let b = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Param(1), b: Val::Param(0) },
        );
        let c = f
            .push_inst(f.entry, InstKind::Bin { op: BinOp::Sub, a: Val::Inst(a), b: Val::Inst(b) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        assert!(run_function(&mut f));
        let InstKind::Bin { a: ma, b: mb, .. } = f.inst(c) else { panic!() };
        assert_eq!(ma, mb);
    }

    #[test]
    fn dominating_def_reused_in_dominated_block() {
        let mut f = Function::new("t");
        f.num_params = 1;
        let next = f.add_block();
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(1) },
        );
        f.blocks[0].term = Term::Br(next);
        let b =
            f.push_inst(next, InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(1) });
        f.blocks[next.index()].term = Term::Ret(Some(Val::Inst(b)));
        assert!(run_function(&mut f));
        assert_eq!(f.blocks[next.index()].term, Term::Ret(Some(Val::Inst(a))));
        wyt_ir::verify::verify_function(&Module::new(), &f).unwrap();
    }

    #[test]
    fn sibling_branches_do_not_share() {
        // entry -> (t, e); expressions in t must not leak into e.
        let mut f = Function::new("t");
        f.num_params = 1;
        let t = f.add_block();
        let e = f.add_block();
        f.blocks[0].term = Term::CondBr { c: Val::Param(0), t, f: e };
        let x =
            f.push_inst(t, InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(9) });
        f.blocks[t.index()].term = Term::Ret(Some(Val::Inst(x)));
        let y =
            f.push_inst(e, InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(9) });
        f.blocks[e.index()].term = Term::Ret(Some(Val::Inst(y)));
        run_function(&mut f);
        // y must NOT have been replaced by x (x does not dominate e).
        assert_eq!(f.blocks[e.index()].term, Term::Ret(Some(Val::Inst(y))));
        assert!(matches!(f.inst(y), InstKind::Bin { .. }));
    }

    #[test]
    fn loads_and_calls_never_cse() {
        let mut f = Function::new("t");
        let a = f.push_inst(f.entry, InstKind::Load { ty: wyt_ir::Ty::I32, addr: Val::Const(8) });
        let b = f.push_inst(f.entry, InstKind::Load { ty: wyt_ir::Ty::I32, addr: Val::Const(8) });
        let c = f
            .push_inst(f.entry, InstKind::Bin { op: BinOp::Sub, a: Val::Inst(a), b: Val::Inst(b) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        assert!(!run_function(&mut f), "loads are not pure for CSE purposes");
    }
}
