//! Constant folding, algebraic simplification and terminator folding.

use wyt_ir::{BinOp, Function, InstKind, Module, Term, Ty, Val};

/// Fold constants in one function. Returns `true` if anything changed.
pub fn run_function(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.rpo() {
        // Instruction folding.
        let insts = f.blocks[b.index()].insts.clone();
        for id in insts {
            let kind = f.inst(id).clone();
            let new = match &kind {
                InstKind::Bin { op, a, b } => fold_bin(*op, *a, *b),
                InstKind::Cmp { op, a, b } => match (a.as_const(), b.as_const()) {
                    (Some(x), Some(y)) => {
                        Some(InstKind::Copy { v: Val::Const(op.eval(x as u32, y as u32) as i32) })
                    }
                    _ => None,
                },
                InstKind::Ext { signed, from, v } => v.as_const().map(|c| {
                    let masked = c as u32 & from.mask();
                    let out = if *signed {
                        let bits = from.bytes() * 8;
                        (((masked as i32) << (32 - bits)) >> (32 - bits)) as u32
                    } else {
                        masked
                    };
                    InstKind::Copy { v: Val::Const(out as i32) }
                }),
                InstKind::Select { c, a, b } => match c.as_const() {
                    Some(cv) => Some(InstKind::Copy { v: if cv != 0 { *a } else { *b } }),
                    None if a == b => Some(InstKind::Copy { v: *a }),
                    None => None,
                },
                InstKind::Phi { incomings } => {
                    // All incomings identical (ignoring self-references).
                    let mut uniq: Option<Val> = None;
                    let mut ok = true;
                    for (_, v) in incomings {
                        if *v == Val::Inst(id) {
                            continue;
                        }
                        match uniq {
                            None => uniq = Some(*v),
                            Some(u) if u == *v => {}
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    match (ok, uniq) {
                        (true, Some(v)) => Some(InstKind::Copy { v }),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(new_kind) = new {
                *f.inst_mut(id) = new_kind;
                changed = true;
            }
            // Copy propagation: replace uses of this inst with its source.
            if let InstKind::Copy { v } = f.inst(id) {
                let v = *v;
                if v != Val::Inst(id) && f.replace_all_uses(Val::Inst(id), v) > 0 {
                    changed = true;
                }
            }
        }
        // Terminator folding.
        let term = f.blocks[b.index()].term.clone();
        let new_term = match &term {
            Term::CondBr { c, t, f: fl } => match c.as_const() {
                Some(cv) => Some(Term::Br(if cv != 0 { *t } else { *fl })),
                None if t == fl => Some(Term::Br(*t)),
                None => None,
            },
            Term::Switch { v, cases, default } => match v.as_const() {
                Some(cv) => {
                    let target =
                        cases.iter().find(|(c, _)| *c == cv).map(|(_, b)| *b).unwrap_or(*default);
                    Some(Term::Br(target))
                }
                None if cases.is_empty() => Some(Term::Br(*default)),
                None => None,
            },
            _ => None,
        };
        if let Some(nt) = new_term {
            // Folding a terminator can drop CFG edges; phis in successors we
            // no longer branch to must forget this block, or the verifier's
            // incomings == predecessors invariant breaks.
            let mut new_succs = Vec::new();
            nt.for_each_succ(|s| new_succs.push(s));
            let mut old_succs = Vec::new();
            term.for_each_succ(|s| old_succs.push(s));
            for s in old_succs {
                if new_succs.contains(&s) {
                    continue;
                }
                let s_insts = f.blocks[s.index()].insts.clone();
                for id in s_insts {
                    if let InstKind::Phi { incomings } = f.inst_mut(id) {
                        incomings.retain(|(p, _)| *p != b);
                    }
                }
            }
            f.blocks[b.index()].term = nt;
            changed = true;
        }
    }
    changed
}

fn fold_bin(op: BinOp, a0: Val, b0: Val) -> Option<InstKind> {
    if let (Some(x), Some(y)) = (a0.as_const(), b0.as_const()) {
        if let Some(r) = op.eval(x as u32, y as u32) {
            return Some(InstKind::Copy { v: Val::Const(r as i32) });
        }
        return None; // division trap must stay
    }
    // Canonicalize constants to the right for commutative ops.
    let swapped = op.commutative() && a0.as_const().is_some() && b0.as_const().is_none();
    let (a, b) = if swapped { (b0, a0) } else { (a0, b0) };
    let copy = |v: Val| Some(InstKind::Copy { v });
    let simplified = match (op, b.as_const()) {
        (
            BinOp::Add
            | BinOp::Sub
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::ShrL
            | BinOp::ShrA,
            Some(0),
        ) => copy(a),
        (BinOp::Mul, Some(1)) | (BinOp::DivS, Some(1)) => copy(a),
        (BinOp::Mul, Some(0)) | (BinOp::And, Some(0)) => copy(Val::Const(0)),
        (BinOp::And, Some(-1)) => copy(a),
        _ => {
            if (op == BinOp::Sub || op == BinOp::Xor) && a == b {
                copy(Val::Const(0))
            } else {
                None
            }
        }
    };
    simplified.or_else(|| {
        // Report the canonicalized order only when it actually changed,
        // otherwise the pass would claim progress forever.
        swapped.then_some(InstKind::Bin { op, a, b })
    })
}

/// Reassociate `(v + c1) + c2` chains; separate because it needs access to
/// defining instructions.
pub fn reassociate(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.rpo() {
        let insts = f.blocks[b.index()].insts.clone();
        for id in insts {
            let InstKind::Bin { op: BinOp::Add, a, b: c2 } = f.inst(id).clone() else {
                continue;
            };
            let Some(c2v) = c2.as_const() else { continue };
            let Some(inner) = a.as_inst() else { continue };
            match f.inst(inner).clone() {
                InstKind::Bin { op: BinOp::Add, a: v, b: c1 } => {
                    if let Some(c1v) = c1.as_const() {
                        *f.inst_mut(id) = InstKind::Bin {
                            op: BinOp::Add,
                            a: v,
                            b: Val::Const(c1v.wrapping_add(c2v)),
                        };
                        changed = true;
                    }
                }
                InstKind::Bin { op: BinOp::Sub, a: v, b: c1 } => {
                    if let Some(c1v) = c1.as_const() {
                        *f.inst_mut(id) = InstKind::Bin {
                            op: BinOp::Add,
                            a: v,
                            b: Val::Const(c2v.wrapping_sub(c1v)),
                        };
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }
    changed
}

/// Narrow-load/ext simplification: `Ext(zext/sext, Load)` patterns keep the
/// load but drop redundant double-extensions.
pub fn simplify_ext(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.rpo() {
        let insts = f.blocks[b.index()].insts.clone();
        for id in insts {
            let InstKind::Ext { signed: false, from, v } = f.inst(id).clone() else {
                continue;
            };
            // zext(from, x) where x is a Load of width <= from: already
            // zero-extended by the load semantics.
            if let Some(src) = v.as_inst() {
                if let InstKind::Load { ty, .. } = f.inst(src) {
                    if ty.bytes() <= from.bytes() {
                        *f.inst_mut(id) = InstKind::Copy { v };
                        changed = true;
                        continue;
                    }
                }
                // zext(from, zext(from2, x)) with from2 <= from.
                if let InstKind::Ext { signed: false, from: f2, .. } = f.inst(src) {
                    if f2.bytes() <= from.bytes() {
                        *f.inst_mut(id) = InstKind::Copy { v };
                        changed = true;
                    }
                }
            } else if let Val::Const(c) = v {
                let masked = (c as u32) & from.mask();
                *f.inst_mut(id) = InstKind::Copy { v: Val::Const(masked as i32) };
                changed = true;
            }
        }
    }
    changed
}

/// Run all folding sub-passes over a module once (function-local;
/// sharded across the pool for large modules).
pub fn run(m: &mut Module) -> bool {
    crate::for_each_func(m, |f| run_function(f) | reassociate(f) | simplify_ext(f))
}

/// Width helper re-export for tests.
pub fn ty_bits(ty: Ty) -> u32 {
    ty.bytes() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::{CmpOp, Function};

    fn f_with(build: impl FnOnce(&mut Function) -> Val) -> Function {
        let mut f = Function::new("t");
        let v = build(&mut f);
        f.blocks[0].term = Term::Ret(Some(v));
        f
    }

    #[test]
    fn folds_constant_chains() {
        let mut f = f_with(|f| {
            let a = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Const(2), b: Val::Const(3) },
            );
            let b = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Mul, a: Val::Inst(a), b: Val::Const(4) },
            );
            Val::Inst(b)
        });
        while run_function(&mut f) {}
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Val::Const(20))));
    }

    #[test]
    fn folds_cmp_and_condbr() {
        let mut f = Function::new("t");
        let t = f.add_block();
        let e = f.add_block();
        let c = f.push_inst(
            f.entry,
            InstKind::Cmp { op: CmpOp::SLt, a: Val::Const(1), b: Val::Const(2) },
        );
        f.blocks[0].term = Term::CondBr { c: Val::Inst(c), t, f: e };
        f.blocks[t.index()].term = Term::Ret(Some(Val::Const(1)));
        f.blocks[e.index()].term = Term::Ret(Some(Val::Const(0)));
        while run_function(&mut f) {}
        assert_eq!(f.blocks[0].term, Term::Br(t));
    }

    #[test]
    fn folded_condbr_updates_phis_in_dropped_successor() {
        // entry --(const cond)--> t, with the dropped edge entry -> join;
        // join stays reachable through t and carries a phi naming entry.
        // Folding the CondBr must remove that incoming, or the verifier's
        // incomings == predecessors invariant breaks. (Found by the
        // differential oracle on a generated program.)
        let mut f = Function::new("t");
        let t = f.add_block();
        let join = f.add_block();
        f.blocks[0].term = Term::CondBr { c: Val::Const(1), t, f: join };
        f.blocks[t.index()].term = Term::Br(join);
        let phi = f.push_inst(
            join,
            InstKind::Phi {
                incomings: vec![(wyt_ir::BlockId(0), Val::Const(10)), (t, Val::Const(20))],
            },
        );
        f.blocks[join.index()].term = Term::Ret(Some(Val::Inst(phi)));
        assert!(run_function(&mut f));
        assert_eq!(f.blocks[0].term, Term::Br(t));
        match f.inst(phi) {
            InstKind::Phi { incomings } => {
                assert_eq!(incomings.len(), 1);
                assert_eq!(incomings[0].0, t);
            }
            // A later fold round may collapse the single-input phi entirely.
            InstKind::Copy { v } => assert_eq!(*v, Val::Const(20)),
            other => panic!("unexpected: {other:?}"),
        }
        let mut m = Module::new();
        m.add_func(f);
        wyt_ir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn keeps_division_traps() {
        let mut f = f_with(|f| {
            let d = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::DivS, a: Val::Const(1), b: Val::Const(0) },
            );
            Val::Inst(d)
        });
        run_function(&mut f);
        assert!(matches!(f.inst(wyt_ir::InstId(0)), InstKind::Bin { op: BinOp::DivS, .. }));
    }

    #[test]
    fn reassociates_add_chains() {
        let mut f = f_with(|f| {
            let a = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(4) },
            );
            let b = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Inst(a), b: Val::Const(8) },
            );
            Val::Inst(b)
        });
        f.num_params = 1;
        assert!(reassociate(&mut f));
        assert_eq!(
            *f.inst(wyt_ir::InstId(1)),
            InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(12) }
        );
    }

    #[test]
    fn identity_simplifications() {
        let mut f = f_with(|f| {
            let a = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Param(0), b: Val::Const(0) },
            );
            let b = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Xor, a: Val::Inst(a), b: Val::Inst(a) },
            );
            Val::Inst(b)
        });
        f.num_params = 1;
        while run_function(&mut f) {}
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Val::Const(0))));
    }

    #[test]
    fn zext_of_narrow_load_removed() {
        let mut f = f_with(|f| {
            let l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I8, addr: Val::Const(64) });
            let e = f
                .push_inst(f.entry, InstKind::Ext { signed: false, from: Ty::I8, v: Val::Inst(l) });
            Val::Inst(e)
        });
        assert!(simplify_ext(&mut f));
        assert!(matches!(f.inst(wyt_ir::InstId(1)), InstKind::Copy { .. }));
        assert_eq!(ty_bits(Ty::I16), 16);
    }
}
