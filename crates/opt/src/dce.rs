//! Dead code elimination: mark-and-sweep liveness over instruction results
//! (handles dead phi cycles), plus removal of orphaned instructions from
//! blocks.

use std::collections::VecDeque;
use wyt_ir::{Function, InstKind, Module, Val};

/// Remove dead instructions from one function. Returns `true` on change.
pub fn run_function(f: &mut Function) -> bool {
    let rpo = f.rpo();
    let mut live = vec![false; f.insts.len()];
    let mut work = VecDeque::new();

    let mark = |v: Val, live: &mut Vec<bool>, work: &mut VecDeque<wyt_ir::InstId>| {
        if let Val::Inst(i) = v {
            if !live[i.index()] {
                live[i.index()] = true;
                work.push_back(i);
            }
        }
    };

    // Roots: side-effecting instructions and terminator operands.
    for &b in &rpo {
        for &i in &f.blocks[b.index()].insts {
            if f.inst(i).has_side_effect() {
                live[i.index()] = true;
                work.push_back(i);
            }
        }
        f.blocks[b.index()].term.for_each_operand(|v| mark(v, &mut live, &mut work));
    }
    // Propagate through operands.
    while let Some(i) = work.pop_front() {
        f.inst(i).clone().for_each_operand(|v| mark(v, &mut live, &mut work));
    }

    let mut changed = false;
    for b in 0..f.blocks.len() {
        let before = f.blocks[b].insts.len();
        f.blocks[b].insts.retain(|i| live[i.index()]);
        changed |= f.blocks[b].insts.len() != before;
    }
    changed
}

/// DCE over every function (function-local; sharded across the pool
/// for large modules).
pub fn run(m: &mut Module) -> bool {
    crate::for_each_func(m, run_function)
}

/// Remove call results that are unused but keep the calls (used when a
/// call's value is dead but the call has effects) — calls are side effects
/// and already roots; this is a no-op marker for documentation.
pub fn retains_calls(kind: &InstKind) -> bool {
    kind.is_call()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::{BinOp, BlockId, Term, Ty};

    #[test]
    fn removes_unused_pure_insts_keeps_stores() {
        let mut f = Function::new("t");
        let dead = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) },
        );
        let live = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Const(3), b: Val::Const(4) },
        );
        let _st = f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Const(100), val: Val::Inst(live) },
        );
        f.blocks[0].term = Term::Ret(None);
        assert!(run_function(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert!(!f.blocks[0].insts.contains(&dead));
    }

    #[test]
    fn dead_phi_cycles_removed() {
        // Two phis referencing only each other across a loop.
        let mut f = Function::new("t");
        let header = f.add_block();
        let exit = f.add_block();
        f.blocks[0].term = Term::Br(header);
        let p1 = f.add_inst(InstKind::Phi { incomings: vec![] });
        let p2 = f.add_inst(InstKind::Phi { incomings: vec![] });
        *f.inst_mut(p1) =
            InstKind::Phi { incomings: vec![(BlockId(0), Val::Const(0)), (header, Val::Inst(p2))] };
        *f.inst_mut(p2) =
            InstKind::Phi { incomings: vec![(BlockId(0), Val::Const(1)), (header, Val::Inst(p1))] };
        f.blocks[header.index()].insts = vec![p1, p2];
        f.blocks[header.index()].term = Term::CondBr { c: Val::Param(0), t: header, f: exit };
        f.num_params = 1;
        f.blocks[exit.index()].term = Term::Ret(None);
        assert!(run_function(&mut f));
        assert!(f.blocks[header.index()].insts.is_empty());
    }

    #[test]
    fn dead_loads_removed_dead_calls_kept() {
        let mut m = Module::new();
        let mut callee = Function::new("c");
        callee.blocks[0].term = Term::Ret(Some(Val::Const(1)));
        let cid = m.add_func(callee);
        let mut f = Function::new("t");
        let _l = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Const(0x100) });
        let call = f.push_inst(f.entry, InstKind::Call { f: cid, args: vec![] });
        f.blocks[0].term = Term::Ret(None);
        let _ = call;
        m.add_func(f);
        assert!(run(&mut m));
        let f = &m.funcs[1];
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert!(retains_calls(f.inst(f.blocks[0].insts[0])));
    }
}
