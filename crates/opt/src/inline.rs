//! Function inlining for the re-optimization pipeline (applies to
//! symbolized IR, where calls have explicit arguments and return values).

use std::collections::HashMap;
use wyt_ir::{BlockId, FuncId, Function, InstId, InstKind, Module, Term, Val};
use wyt_isa::TrapCode;

/// Inlining limits.
#[derive(Debug, Clone, Copy)]
pub struct InlineLimits {
    /// Maximum callee instruction count.
    pub max_insts: usize,
    /// Maximum callee block count.
    pub max_blocks: usize,
    /// Maximum number of inlining rounds.
    pub rounds: usize,
}

impl Default for InlineLimits {
    fn default() -> InlineLimits {
        InlineLimits { max_insts: 48, max_blocks: 8, rounds: 3 }
    }
}

fn inlinable(m: &Module, callee: FuncId, caller: FuncId, limits: &InlineLimits) -> bool {
    if callee == caller {
        return false;
    }
    let f = &m.funcs[callee.index()];
    let rpo = f.rpo();
    if rpo.len() > limits.max_blocks {
        return false;
    }
    let inst_count: usize = rpo.iter().map(|b| f.blocks[b.index()].insts.len()).sum();
    if inst_count > limits.max_insts {
        return false;
    }
    // No self-recursion inside the callee, and no indirect calls (their
    // address-identity would change if their home function disappears).
    // Guard traps must also keep their home function: the guard-site
    // table attributes untraced-path traps per function, and inlining
    // would re-home them into the caller.
    for &b in &rpo {
        if let Term::Trap(c) = f.blocks[b.index()].term {
            if TrapCode::is_guard(c) {
                return false;
            }
        }
        for &i in &f.blocks[b.index()].insts {
            match f.inst(i) {
                InstKind::Call { f: target, .. } if *target == callee => return false,
                InstKind::CallInd { .. } | InstKind::CallExtRaw { .. } => return false,
                _ => {}
            }
        }
    }
    true
}

/// Inline one call site. `call_block`'s instruction at `call_pos` must be a
/// direct call.
fn inline_site(f: &mut Function, callee: &Function, call_block: BlockId, call_pos: usize) {
    let call_id = f.blocks[call_block.index()].insts[call_pos];
    let InstKind::Call { args, .. } = f.inst(call_id).clone() else {
        panic!("not a call");
    };

    // Split the caller block after the call.
    let cont = f.add_block();
    let after: Vec<InstId> = f.blocks[call_block.index()].insts.split_off(call_pos + 1);
    f.blocks[call_block.index()].insts.pop(); // remove the call itself
    let cont_term = std::mem::replace(&mut f.blocks[call_block.index()].term, Term::Unreachable);
    f.blocks[cont.index()].insts = after;
    f.blocks[cont.index()].term = cont_term;
    // Successor phis referencing call_block now come from cont.
    let succs: Vec<BlockId> = {
        let mut s = Vec::new();
        f.blocks[cont.index()].term.for_each_succ(|x| s.push(x));
        s
    };
    for s in succs {
        let insts = f.blocks[s.index()].insts.clone();
        for id in insts {
            if let InstKind::Phi { incomings } = f.inst_mut(id) {
                for (p, _) in incomings.iter_mut() {
                    if *p == call_block {
                        *p = cont;
                    }
                }
            }
        }
    }

    // Copy callee blocks/instructions with remapping.
    let callee_rpo = callee.rpo();
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for &b in &callee_rpo {
        block_map.insert(b, f.add_block());
    }
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    // First create placeholder instructions to get ids (phis may refer
    // forward).
    for &b in &callee_rpo {
        for &i in &callee.blocks[b.index()].insts {
            let id = f.add_inst(InstKind::Copy { v: Val::Const(0) });
            inst_map.insert(i, id);
        }
    }
    let map_val = |v: Val, inst_map: &HashMap<InstId, InstId>, args: &[Val]| match v {
        Val::Inst(i) => Val::Inst(inst_map[&i]),
        Val::Param(p) => args.get(p as usize).copied().unwrap_or(Val::Const(0)),
        c => c,
    };
    // Return collection.
    let mut ret_edges: Vec<(BlockId, Option<Val>)> = Vec::new();
    for &b in &callee_rpo {
        let nb = block_map[&b];
        for &i in &callee.blocks[b.index()].insts {
            let mut kind = callee.inst(i).clone();
            kind.for_each_operand_mut(|v| *v = map_val(*v, &inst_map, &args));
            if let InstKind::Phi { incomings } = &mut kind {
                for (p, _) in incomings.iter_mut() {
                    *p = block_map.get(p).copied().unwrap_or(*p);
                }
            }
            let id = inst_map[&i];
            *f.inst_mut(id) = kind;
            f.blocks[nb.index()].insts.push(id);
        }
        let mut term = callee.blocks[b.index()].term.clone();
        term.for_each_operand_mut(|v| *v = map_val(*v, &inst_map, &args));
        term.for_each_succ_mut(|s| *s = block_map[s]);
        match term {
            Term::Ret(v) => {
                ret_edges.push((nb, v));
                f.blocks[nb.index()].term = Term::Br(cont);
            }
            other => f.blocks[nb.index()].term = other,
        }
    }

    // Hoist inlined allocas into the caller entry so loops around the call
    // site cannot grow the frame unboundedly.
    let entry = f.entry;
    for &b in &callee_rpo {
        let nb = block_map[&b];
        if nb == entry {
            continue;
        }
        let mut hoisted = Vec::new();
        f.blocks[nb.index()].insts.retain(|&i| {
            if matches!(f.insts[i.index()], InstKind::Alloca { .. }) {
                hoisted.push(i);
                false
            } else {
                true
            }
        });
        if !hoisted.is_empty() {
            let mut rest = std::mem::take(&mut f.blocks[entry.index()].insts);
            let mut new = hoisted;
            new.append(&mut rest);
            f.blocks[entry.index()].insts = new;
        }
    }

    // Jump into the inlined entry.
    f.blocks[call_block.index()].term = Term::Br(block_map[&callee.entry]);

    // Replace the call's value with the return value (phi if several).
    let ret_val = match ret_edges.len() {
        0 => Val::Const(0),
        1 => ret_edges[0].1.unwrap_or(Val::Const(0)),
        _ => {
            let incomings: Vec<(BlockId, Val)> =
                ret_edges.iter().map(|(b, v)| (*b, v.unwrap_or(Val::Const(0)))).collect();
            let phi = f.add_inst(InstKind::Phi { incomings });
            f.blocks[cont.index()].insts.insert(0, phi);
            Val::Inst(phi)
        }
    };
    *f.inst_mut(call_id) = InstKind::Copy { v: ret_val };
    let pos = ret_edges.len().min(1); // after potential phi
    let _ = pos;
    // Re-home the (now Copy) call id at the head of cont, after phis.
    let phi_count = f.blocks[cont.index()]
        .insts
        .iter()
        .take_while(|i| matches!(f.insts[i.index()], InstKind::Phi { .. }))
        .count();
    f.blocks[cont.index()].insts.insert(phi_count, call_id);
}

/// Run inlining over a module.
pub fn run(m: &mut Module, limits: &InlineLimits) -> bool {
    let mut changed = false;
    for _ in 0..limits.rounds {
        let mut round_changed = false;
        for caller_idx in 0..m.funcs.len() {
            let caller_id = FuncId(caller_idx as u32);
            'again: loop {
                // Find one inlinable call site.
                let f = &m.funcs[caller_idx];
                let mut site = None;
                for b in f.rpo() {
                    for (pos, &i) in f.blocks[b.index()].insts.iter().enumerate() {
                        if let InstKind::Call { f: callee, .. } = f.inst(i) {
                            if inlinable(m, *callee, caller_id, limits) {
                                site = Some((b, pos, *callee));
                                break;
                            }
                        }
                    }
                    if site.is_some() {
                        break;
                    }
                }
                let Some((b, pos, callee)) = site else { break 'again };
                let callee_fn = m.funcs[callee.index()].clone();
                inline_site(&mut m.funcs[caller_idx], &callee_fn, b, pos);
                round_changed = true;
                changed = true;
            }
        }
        if !round_changed {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_ir::interp::{Interp, NoHooks};
    use wyt_ir::verify::verify_module;
    use wyt_ir::{BinOp, CmpOp, Ty};

    fn double_module() -> Module {
        let mut m = Module::new();
        let mut callee = Function::new("double");
        callee.num_params = 1;
        let r = callee.push_inst(
            callee.entry,
            InstKind::Bin { op: BinOp::Mul, a: Val::Param(0), b: Val::Const(2) },
        );
        callee.blocks[0].term = Term::Ret(Some(Val::Inst(r)));
        let cid = m.add_func(callee);
        let mut main = Function::new("main");
        let c1 = main.push_inst(main.entry, InstKind::Call { f: cid, args: vec![Val::Const(10)] });
        let c2 = main.push_inst(main.entry, InstKind::Call { f: cid, args: vec![Val::Inst(c1)] });
        main.blocks[0].term = Term::Ret(Some(Val::Inst(c2)));
        let mid = m.add_func(main);
        m.entry = Some(mid);
        m
    }

    #[test]
    fn inlines_and_preserves_semantics() {
        let mut m = double_module();
        assert!(run(&mut m, &InlineLimits::default()));
        verify_module(&m).unwrap();
        let main = &m.funcs[1];
        for b in main.rpo() {
            for &i in &main.blocks[b.index()].insts {
                assert!(!main.inst(i).is_call(), "all calls should be inlined");
            }
        }
        let out = Interp::new(&m, vec![], NoHooks).run();
        assert!(out.ok());
        assert_eq!(out.exit_code, 40);
    }

    #[test]
    fn inlines_branchy_callee_with_multiple_returns() {
        let mut m = Module::new();
        let mut abs = Function::new("abs");
        abs.num_params = 1;
        let neg_b = abs.add_block();
        let pos_b = abs.add_block();
        let c = abs.push_inst(
            abs.entry,
            InstKind::Cmp { op: CmpOp::SLt, a: Val::Param(0), b: Val::Const(0) },
        );
        abs.blocks[0].term = Term::CondBr { c: Val::Inst(c), t: neg_b, f: pos_b };
        let n = abs
            .push_inst(neg_b, InstKind::Bin { op: BinOp::Sub, a: Val::Const(0), b: Val::Param(0) });
        abs.blocks[neg_b.index()].term = Term::Ret(Some(Val::Inst(n)));
        abs.blocks[pos_b.index()].term = Term::Ret(Some(Val::Param(0)));
        let aid = m.add_func(abs);

        let mut main = Function::new("main");
        let c1 = main.push_inst(main.entry, InstKind::Call { f: aid, args: vec![Val::Const(-31)] });
        let c2 = main.push_inst(main.entry, InstKind::Call { f: aid, args: vec![Val::Const(11)] });
        let s = main.push_inst(
            main.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Inst(c1), b: Val::Inst(c2) },
        );
        main.blocks[0].term = Term::Ret(Some(Val::Inst(s)));
        let mid = m.add_func(main);
        m.entry = Some(mid);

        assert!(run(&mut m, &InlineLimits::default()));
        verify_module(&m).unwrap();
        let out = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn recursion_not_inlined() {
        let mut m = Module::new();
        let mut f = Function::new("rec");
        f.num_params = 1;
        let c = f.push_inst(f.entry, InstKind::Call { f: FuncId(0), args: vec![Val::Param(0)] });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        m.add_func(f);
        assert!(!run(&mut m, &InlineLimits::default()));
    }

    #[test]
    fn allocas_are_hoisted_to_entry() {
        let mut m = Module::new();
        let mut callee = Function::new("with_slot");
        callee.num_params = 1;
        let a = callee
            .push_inst(callee.entry, InstKind::Alloca { size: 4, align: 4, name: "t".into() });
        callee.push_inst(
            callee.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(a), val: Val::Param(0) },
        );
        let l = callee.push_inst(callee.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(a) });
        callee.blocks[0].term = Term::Ret(Some(Val::Inst(l)));
        let cid = m.add_func(callee);

        // Caller calls it inside a two-block structure.
        let mut main = Function::new("main");
        let next = main.add_block();
        main.blocks[0].term = Term::Br(next);
        let c = main.push_inst(next, InstKind::Call { f: cid, args: vec![Val::Const(9)] });
        main.blocks[next.index()].term = Term::Ret(Some(Val::Inst(c)));
        let mid = m.add_func(main);
        m.entry = Some(mid);

        assert!(run(&mut m, &InlineLimits::default()));
        verify_module(&m).unwrap();
        let main = &m.funcs[1];
        let first = main.blocks[main.entry.index()].insts.first().copied();
        assert!(
            matches!(first.map(|i| main.inst(i)), Some(InstKind::Alloca { .. })),
            "inlined alloca should be hoisted to the caller entry"
        );
        let out = Interp::new(&m, vec![], NoHooks).run();
        assert_eq!(out.exit_code, 9);
    }
}
