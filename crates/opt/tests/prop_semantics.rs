//! Property test: the optimizer pipeline preserves semantics on randomly
//! generated IR programs (straight-line and branching, with allocas and
//! memory traffic).

use wyt_ir::interp::{Interp, NoHooks};
use wyt_ir::verify::verify_module;
use wyt_ir::{BinOp, CmpOp, Function, InstKind, Module, Term, Ty, Val};
use wyt_opt::{optimize, OptLevel};
use wyt_testkit::prop::{check, shrink_vec, vec_of, Config};
use wyt_testkit::Rng;

#[derive(Debug, Clone)]
enum Op {
    Bin(BinOp, u8, u8),
    Cmp(CmpOp, u8, u8),
    Const(i32),
    StoreSlot(u8, u8),
    LoadSlot(u8),
}

const BINOPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::ShrA,
];

const CMPOPS: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Ne, CmpOp::SLt, CmpOp::SGe, CmpOp::ULt];

fn arb_op(rng: &mut Rng) -> Op {
    // Avoid div/rem ops so random programs never trap.
    match rng.range_u32(0, 5) {
        0 => Op::Bin(*rng.choose(&BINOPS), rng.next_u8(), rng.next_u8()),
        1 => Op::Cmp(*rng.choose(&CMPOPS), rng.next_u8(), rng.next_u8()),
        2 => Op::Const(rng.next_i32()),
        3 => Op::StoreSlot(rng.range_u32(0, 4) as u8, rng.next_u8()),
        _ => Op::LoadSlot(rng.range_u32(0, 4) as u8),
    }
}

/// Build a module from the op list: four alloca slots, a value stream, and
/// a final branch on the last value that returns one of two accumulations.
fn build(ops: &[Op], branchy: bool) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main");
    let slots: Vec<_> = (0..4)
        .map(|i| {
            f.push_inst(f.entry, InstKind::Alloca { size: 4, align: 4, name: format!("s{i}") })
        })
        .collect();
    for s in &slots {
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(*s), val: Val::Const(1) },
        );
    }
    let mut vals: Vec<Val> = vec![Val::Const(3), Val::Const(5)];
    let pick = |vals: &Vec<Val>, k: u8| vals[k as usize % vals.len()];
    for op in ops {
        match op {
            Op::Bin(o, a, b) => {
                let id = f.push_inst(
                    f.entry,
                    InstKind::Bin { op: *o, a: pick(&vals, *a), b: pick(&vals, *b) },
                );
                vals.push(Val::Inst(id));
            }
            Op::Cmp(o, a, b) => {
                let id = f.push_inst(
                    f.entry,
                    InstKind::Cmp { op: *o, a: pick(&vals, *a), b: pick(&vals, *b) },
                );
                vals.push(Val::Inst(id));
            }
            Op::Const(c) => vals.push(Val::Const(*c)),
            Op::StoreSlot(s, v) => {
                let slot = slots[*s as usize % slots.len()];
                f.push_inst(
                    f.entry,
                    InstKind::Store { ty: Ty::I32, addr: Val::Inst(slot), val: pick(&vals, *v) },
                );
            }
            Op::LoadSlot(s) => {
                let slot = slots[*s as usize % slots.len()];
                let id =
                    f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slot) });
                vals.push(Val::Inst(id));
            }
        }
    }
    let last = *vals.last().expect("values");
    if branchy {
        let t = f.add_block();
        let e = f.add_block();
        let c = f.push_inst(f.entry, InstKind::Cmp { op: CmpOp::SLt, a: last, b: Val::Const(0) });
        f.blocks[f.entry.index()].term = Term::CondBr { c: Val::Inst(c), t, f: e };
        let l0 = f.push_inst(t, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slots[0]) });
        let x = f.push_inst(t, InstKind::Bin { op: BinOp::Add, a: last, b: Val::Inst(l0) });
        f.blocks[t.index()].term = Term::Ret(Some(Val::Inst(x)));
        let l1 = f.push_inst(e, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slots[1]) });
        let y = f.push_inst(e, InstKind::Bin { op: BinOp::Xor, a: last, b: Val::Inst(l1) });
        f.blocks[e.index()].term = Term::Ret(Some(Val::Inst(y)));
    } else {
        f.blocks[f.entry.index()].term = Term::Ret(Some(last));
    }
    let id = m.add_func(f);
    m.entry = Some(id);
    m
}

#[test]
fn optimizer_preserves_semantics() {
    check(
        "optimizer_preserves_semantics",
        &Config::cases(64),
        |rng| (vec_of(rng, 1, 40, arb_op), rng.next_bool()),
        |(ops, branchy)| shrink_vec(ops).into_iter().map(|o| (o, *branchy)).collect(),
        |(ops, branchy)| {
            let m0 = build(ops, *branchy);
            verify_module(&m0).map_err(|e| format!("generated module must verify: {e}"))?;
            let before = Interp::new(&m0, vec![], NoHooks).run();
            if !before.ok() {
                return Err(format!("unoptimized run failed: {:?}", before.error));
            }
            for level in [OptLevel::Clean, OptLevel::Full] {
                let mut m = m0.clone();
                optimize(&mut m, level);
                verify_module(&m)
                    .map_err(|e| format!("optimized module must verify ({level:?}): {e}"))?;
                let after = Interp::new(&m, vec![], NoHooks).run();
                if !after.ok() {
                    return Err(format!("optimized run failed ({level:?}): {:?}", after.error));
                }
                if before.exit_code != after.exit_code {
                    return Err(format!(
                        "exit codes differ at {level:?}: {} vs {}",
                        before.exit_code, after.exit_code
                    ));
                }
                if after.steps > before.steps + 4 {
                    return Err(format!(
                        "optimizer pessimized at {level:?}: {} steps vs {}",
                        after.steps, before.steps
                    ));
                }
            }
            Ok(())
        },
    );
}
