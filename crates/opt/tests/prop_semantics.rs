//! Property test: the optimizer pipeline preserves semantics on randomly
//! generated IR programs (straight-line and branching, with allocas and
//! memory traffic).

use proptest::prelude::*;
use wyt_ir::interp::{Interp, NoHooks};
use wyt_ir::verify::verify_module;
use wyt_ir::{BinOp, CmpOp, Function, InstKind, Module, Term, Ty, Val};
use wyt_opt::{optimize, OptLevel};

#[derive(Debug, Clone)]
enum Op {
    Bin(BinOp, u8, u8),
    Cmp(CmpOp, u8, u8),
    Const(i32),
    StoreSlot(u8, u8),
    LoadSlot(u8),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::ShrA),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::SLt),
        Just(CmpOp::SGe),
        Just(CmpOp::ULt),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_binop(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Op::Bin(o, a, b)),
        (arb_cmpop(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Op::Cmp(o, a, b)),
        any::<i32>().prop_map(Op::Const),
        (0u8..4, any::<u8>()).prop_map(|(s, v)| Op::StoreSlot(s, v)),
        (0u8..4).prop_map(Op::LoadSlot),
    ]
}

/// Build a module from the op list: four alloca slots, a value stream, and
/// a final branch on the last value that returns one of two accumulations.
fn build(ops: &[Op], branchy: bool) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main");
    let slots: Vec<_> = (0..4)
        .map(|i| {
            f.push_inst(
                f.entry,
                InstKind::Alloca { size: 4, align: 4, name: format!("s{i}") },
            )
        })
        .collect();
    for s in &slots {
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(*s), val: Val::Const(1) },
        );
    }
    let mut vals: Vec<Val> = vec![Val::Const(3), Val::Const(5)];
    let pick = |vals: &Vec<Val>, k: u8| vals[k as usize % vals.len()];
    for op in ops {
        match op {
            Op::Bin(o, a, b) => {
                // Avoid div/rem traps in random programs.
                let id = f.push_inst(
                    f.entry,
                    InstKind::Bin { op: *o, a: pick(&vals, *a), b: pick(&vals, *b) },
                );
                vals.push(Val::Inst(id));
            }
            Op::Cmp(o, a, b) => {
                let id = f.push_inst(
                    f.entry,
                    InstKind::Cmp { op: *o, a: pick(&vals, *a), b: pick(&vals, *b) },
                );
                vals.push(Val::Inst(id));
            }
            Op::Const(c) => vals.push(Val::Const(*c)),
            Op::StoreSlot(s, v) => {
                let slot = slots[*s as usize % slots.len()];
                f.push_inst(
                    f.entry,
                    InstKind::Store {
                        ty: Ty::I32,
                        addr: Val::Inst(slot),
                        val: pick(&vals, *v),
                    },
                );
            }
            Op::LoadSlot(s) => {
                let slot = slots[*s as usize % slots.len()];
                let id = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slot) });
                vals.push(Val::Inst(id));
            }
        }
    }
    let last = *vals.last().expect("values");
    if branchy {
        let t = f.add_block();
        let e = f.add_block();
        let c = f.push_inst(
            f.entry,
            InstKind::Cmp { op: CmpOp::SLt, a: last, b: Val::Const(0) },
        );
        f.blocks[f.entry.index()].term = Term::CondBr { c: Val::Inst(c), t, f: e };
        let l0 = f.push_inst(t, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slots[0]) });
        let x = f.push_inst(t, InstKind::Bin { op: BinOp::Add, a: last, b: Val::Inst(l0) });
        f.blocks[t.index()].term = Term::Ret(Some(Val::Inst(x)));
        let l1 = f.push_inst(e, InstKind::Load { ty: Ty::I32, addr: Val::Inst(slots[1]) });
        let y = f.push_inst(e, InstKind::Bin { op: BinOp::Xor, a: last, b: Val::Inst(l1) });
        f.blocks[e.index()].term = Term::Ret(Some(Val::Inst(y)));
    } else {
        f.blocks[f.entry.index()].term = Term::Ret(Some(last));
    }
    let id = m.add_func(f);
    m.entry = Some(id);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_preserves_semantics(ops in proptest::collection::vec(arb_op(), 1..40), branchy in any::<bool>()) {
        let m0 = build(&ops, branchy);
        verify_module(&m0).expect("generated module must verify");
        let before = Interp::new(&m0, vec![], NoHooks).run();
        prop_assert!(before.ok());

        for level in [OptLevel::Clean, OptLevel::Full] {
            let mut m = m0.clone();
            optimize(&mut m, level);
            verify_module(&m).expect("optimized module must verify");
            let after = Interp::new(&m, vec![], NoHooks).run();
            prop_assert!(after.ok());
            prop_assert_eq!(before.exit_code, after.exit_code, "level {:?}", level);
            prop_assert!(after.steps <= before.steps + 4, "optimizer must not pessimize");
        }
    }
}
