//! # wyt-par — zero-dependency deterministic parallel execution
//!
//! A scoped-thread, work-stealing executor for the recompile pipeline,
//! the optimizer, the bench suite and the differential oracle. Std-only
//! and `--offline`-safe, like every other crate in the workspace.
//!
//! ## Determinism contract
//!
//! Parallel execution must be **observationally identical** to serial
//! execution — same recompiled image bytes, same reports, same bench
//! rows — regardless of `WYT_PAR`. The executor guarantees its half of
//! the contract structurally:
//!
//! - results are returned **in task-index order**, never in completion
//!   order ([`par_indexed`] reassembles before returning);
//! - each task's observability stream is captured in a thread-local
//!   sink scope ([`wyt_obs::with_local`]) and folded into the enclosing
//!   sink **in task-index order** after the join, so counters and span
//!   streams match a serial run exactly (timings aside);
//! - tasks spawned from inside a worker run **serially inline**
//!   ([`in_pool`]), so nested parallelism cannot reorder anything and
//!   cannot oversubscribe the machine.
//!
//! Callers own the other half: tasks must be independent (no shared
//! mutable state), and any cross-task merge must be done on the
//! returned, index-ordered results.
//!
//! ## Scheduling
//!
//! Each [`par_indexed`] call splits `0..n` into one contiguous range
//! per worker, packed into a single atomic word (`lo`,`hi`). Owners
//! claim from the front of their range; a worker that runs dry steals
//! the upper half of the fullest remaining range (classic lazy range
//! splitting). All transitions are CAS except an owner refilling its
//! own empty range, so every index is executed exactly once. Workers
//! are scoped threads (`std::thread::scope`), so tasks may freely
//! borrow from the caller's stack; nothing outlives the call.
//!
//! ## Profiling
//!
//! While any `wyt-obs` collector is on, each worker tallies tasks
//! executed, successful steals, and busy/idle nanoseconds into a
//! process-global per-slot accumulator ([`worker_profile`] /
//! [`worker_profile_delta`]); the pipeline brackets a recompile and
//! reports the delta as the `par.workers` utilization section of its
//! report. Workers also pin their slot id as their flight-recorder
//! track ([`wyt_obs::trace::track_guard`]) and every task runs inside a
//! `par.task` trace span — emitted identically on the serial-inline
//! paths, so the recorder's event stream is independent of the thread
//! count.
//!
//! ## Configuration
//!
//! `WYT_PAR=<n>` pins the worker count; `WYT_PAR=0` (or `1`) forces
//! serial execution; unset defaults to the machine's available
//! parallelism. [`set_threads`] overrides in-process (tests use it to
//! compare serial and parallel runs byte-for-byte).

pub mod supervise;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable selecting the worker count (`0`/`1` = serial).
pub const ENV: &str = "WYT_PAR";

/// Hard cap on workers; beyond this, coordination costs dominate.
const MAX_THREADS: usize = 64;

/// Resolved worker count; 0 = not yet resolved from the environment.
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while this thread is executing tasks for a pool, to force
    /// nested parallel calls to run serially inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn resolve_threads() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Unrecognized values warn once and fall back to the hardware
    // default, like an unset variable; `0` means serial.
    let n = match wyt_obs::env::env_usize(ENV, hw) {
        0 => 1,
        n => n,
    };
    n.clamp(1, MAX_THREADS)
}

/// The configured worker count (resolved from `WYT_PAR` once, then
/// cached; 1 means serial).
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let r = resolve_threads();
    THREADS.store(r, Ordering::Relaxed);
    r
}

/// Override the worker count in-process (tests compare `set_threads(1)`
/// vs `set_threads(4)` runs for byte equality). Clamped to `1..=64`.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Is this thread currently a pool worker? Parallel entry points check
/// this and run inline when nested.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Would a parallel entry point actually fan out right now?
pub fn parallel() -> bool {
    threads() > 1 && !in_pool()
}

/// One worker's claimable index range, packed `hi << 32 | lo`. Owners
/// claim `lo`; thieves CAS the upper half away. An empty range stays
/// empty for everyone but its owner, which makes the owner's refill
/// (after a successful steal) a plain store.
struct Range(AtomicU64);

const fn pack(lo: u32, hi: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v & 0xffff_ffff) as u32, (v >> 32) as u32)
}

impl Range {
    fn new(lo: usize, hi: usize) -> Range {
        Range(AtomicU64::new(pack(lo as u32, hi as u32)))
    }

    /// Take the next index from the front, if any.
    fn claim(&self) -> Option<usize> {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            if self
                .0
                .compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(lo as usize);
            }
        }
    }

    /// Atomically remove and return the upper half `[mid, hi)` (the
    /// whole range when only one index remains).
    fn steal(&self) -> Option<(usize, usize)> {
        loop {
            let cur = self.0.load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            if self
                .0
                .compare_exchange_weak(cur, pack(lo, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((mid as usize, hi as usize));
            }
        }
    }

    fn remaining(&self) -> usize {
        let (lo, hi) = unpack(self.0.load(Ordering::Acquire));
        hi.saturating_sub(lo) as usize
    }

    /// Owner-only refill of an empty range with freshly stolen work.
    fn refill(&self, lo: usize, hi: usize) {
        debug_assert_eq!(self.remaining(), 0, "refill requires an empty range");
        self.0.store(pack(lo as u32, hi as u32), Ordering::Release);
    }
}

/// Marks the current thread as a pool worker for the guard's lifetime
/// (the main thread participates as worker 0 and must be restored).
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> PoolGuard {
        PoolGuard { prev: IN_POOL.with(|c| c.replace(true)) }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|c| c.set(prev));
    }
}

/// One executed task, tagged for deterministic reassembly.
struct Done<R> {
    index: usize,
    result: R,
    obs: Option<wyt_obs::Snapshot>,
}

/// Per-worker-slot utilization accumulated across every pool run since
/// startup. Indexed by worker id; updated once per worker per
/// [`par_indexed`] call (never on the task hot path) and only while
/// some collector is on, so the lock is uncontended and profiling off
/// costs nothing.
static PROFILE: Mutex<Vec<wyt_obs::WorkerStat>> = Mutex::new(Vec::new());

/// Snapshot of the per-worker utilization accumulators (empty until a
/// pool runs with observability on).
pub fn worker_profile() -> Vec<wyt_obs::WorkerStat> {
    wyt_obs::lock_ok(&PROFILE).clone()
}

/// The per-worker utilization accumulated since `base` (a
/// [`worker_profile`] snapshot): callers bracket a region and get just
/// that region's tasks/steals/busy/idle per worker.
pub fn worker_profile_delta(base: &[wyt_obs::WorkerStat]) -> Vec<wyt_obs::WorkerStat> {
    worker_profile()
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let b = base.get(i).copied().unwrap_or_default();
            wyt_obs::WorkerStat {
                worker: w.worker,
                tasks: w.tasks - b.tasks,
                steals: w.steals - b.steals,
                busy_ns: w.busy_ns - b.busy_ns,
                idle_ns: w.idle_ns - b.idle_ns,
            }
        })
        .collect()
}

/// Run one task with the uniform trace wrapper: every execution path —
/// pooled, serial-inline, nested — emits the same `par.task` span into
/// the flight recorder, so serial and parallel event streams match.
#[inline]
fn run_task<R>(i: usize, f: impl FnOnce(usize) -> R) -> R {
    let _t = wyt_obs::trace::guard("par.task");
    f(i)
}

/// Run `f(i)` for every `i in 0..n` and return the results **in index
/// order**. Runs inline (serially, on the caller's thread, with no sink
/// scoping) when `n <= 1`, the configured worker count is 1, or the
/// caller is itself a pool worker.
pub fn par_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = threads().min(n);
    if t <= 1 || in_pool() {
        return (0..n).map(|i| run_task(i, &f)).collect();
    }

    let obs = wyt_obs::observing();
    let run_one = |i: usize| -> Done<R> {
        if obs {
            let (result, snap) = wyt_obs::with_local(|| run_task(i, &f));
            Done { index: i, result, obs: Some(snap) }
        } else {
            Done { index: i, result: run_task(i, &f), obs: None }
        }
    };

    // Deterministic initial split: worker w owns [w*n/t, (w+1)*n/t).
    let ranges: Vec<Range> = (0..t).map(|w| Range::new(w * n / t, (w + 1) * n / t)).collect();

    let mut done: Vec<Done<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..t)
            .map(|id| {
                let ranges = &ranges;
                let run_one = &run_one;
                std::thread::Builder::new()
                    .name(format!("wyt-par-{id}"))
                    .spawn_scoped(s, move || worker(id, ranges, run_one))
                    .expect("spawn pool worker")
            })
            .collect();
        // The caller participates as worker 0.
        let mut all = worker(0, &ranges, &run_one);
        for h in handles {
            match h.join() {
                Ok(v) => all.extend(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        all
    });

    done.sort_unstable_by_key(|d| d.index);
    debug_assert!(done.iter().enumerate().all(|(i, d)| i == d.index));
    assert_eq!(done.len(), n, "every index must be executed exactly once");
    done.into_iter()
        .map(|d| {
            // Fold each task's observations in index order: the merged
            // stream is identical to what a serial run records.
            if let Some(snap) = d.obs {
                wyt_obs::fold(snap);
            }
            d.result
        })
        .collect()
}

fn worker<R>(
    id: usize,
    ranges: &[Range],
    run_one: &(impl Fn(usize) -> Done<R> + Sync),
) -> Vec<Done<R>> {
    let _g = PoolGuard::enter();
    // The worker's slot id is its flight-recorder track, so the trace
    // export gets one Chrome track per worker.
    let _track = wyt_obs::trace::track_guard(id as u32);
    let prof = wyt_obs::observing();
    let t_start = prof.then(wyt_obs::mono_ns);
    let mut tasks = 0u64;
    let mut steals = 0u64;
    let mut busy = 0u64;
    let mut out = Vec::new();
    loop {
        while let Some(i) = ranges[id].claim() {
            if prof {
                let t0 = wyt_obs::mono_ns();
                out.push(run_one(i));
                busy += wyt_obs::mono_ns() - t0;
                tasks += 1;
            } else {
                out.push(run_one(i));
            }
        }
        // Dry: steal the upper half of the fullest victim. Exit only
        // when every range is empty (in-flight tasks are owned by the
        // workers executing them; the scope join waits for those).
        let victim = (0..ranges.len())
            .filter(|&v| v != id)
            .map(|v| (ranges[v].remaining(), v))
            .max()
            .filter(|&(len, _)| len > 0);
        let Some((_, v)) = victim else { break };
        if let Some((lo, hi)) = ranges[v].steal() {
            ranges[id].refill(lo, hi);
            steals += 1;
        }
        // A failed steal means the victim drained meanwhile; rescan.
    }
    if let Some(t0) = t_start {
        let idle = (wyt_obs::mono_ns() - t0).saturating_sub(busy);
        let mut profile = wyt_obs::lock_ok(&PROFILE);
        if profile.len() <= id {
            let next = profile.len()..=id;
            profile.extend(
                next.map(|w| wyt_obs::WorkerStat { worker: w as u32, ..Default::default() }),
            );
        }
        let slot = &mut profile[id];
        slot.tasks += tasks;
        slot.steals += steals;
        slot.busy_ns += busy;
        slot.idle_ns += idle;
    }
    out
}

/// [`par_indexed`] over a slice: `f(i, &items[i])`, results in order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_indexed(items.len(), |i| f(i, &items[i]))
}

/// [`par_indexed`] over owned items: each is moved into exactly one
/// task (the way `wyt-opt` shards `Module::funcs` across workers).
pub fn par_map_take<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if !parallel() || items.len() <= 1 {
        // Same uniform trace wrapper as the pooled path, so the event
        // stream is independent of the thread count.
        return items.into_iter().enumerate().map(|(i, x)| run_task(i, |i| f(i, x))).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    par_indexed(slots.len(), |i| {
        let item = wyt_obs::lock_ok(&slots[i]).take().expect("each slot is claimed exactly once");
        f(i, item)
    })
}

/// Run `produce` and `consume` as an overlapped producer/consumer pair.
///
/// With a parallel pool ([`parallel`] is true), `consume` runs on a
/// dedicated scoped thread — marked as a pool worker so nested parallel
/// calls inside it stay serial-inline, with its own flight-recorder
/// track above the worker ids — while `produce` runs on the caller's
/// thread (and may itself fan out on the pool). Serially (one worker,
/// or already inside a pool task), `produce` runs to completion first
/// and `consume` after it.
///
/// Deadlock contract for a bounded queue between the two sides:
/// `consume` must terminate once the producer side closes its end, and
/// `produce` must never block on the consumer when no consumer thread
/// exists (serial mode) — drain inline on overflow instead. Under that
/// contract the pair cannot deadlock at any worker count, including 1.
pub fn overlap<R: Send>(produce: impl FnOnce() -> R + Send, consume: impl FnOnce() + Send) -> R {
    if !parallel() {
        let r = produce();
        consume();
        return r;
    }
    std::thread::scope(|s| {
        let h = std::thread::Builder::new()
            .name("wyt-par-consumer".into())
            .spawn_scoped(s, || {
                let _g = PoolGuard::enter();
                let _track = wyt_obs::trace::track_guard(MAX_THREADS as u32);
                consume();
            })
            .expect("spawn overlap consumer");
        let r = produce();
        match h.join() {
            Ok(()) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Tests mutate the process-global thread count; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct ThreadCount;
    impl ThreadCount {
        fn set(n: usize) -> ThreadCount {
            set_threads(n);
            ThreadCount
        }
    }
    impl Drop for ThreadCount {
        fn drop(&mut self) {
            // Back to "unresolved" semantics: re-pin to the env default.
            THREADS.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn results_come_back_in_index_order() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        // Uneven task costs force heavy interleaving and stealing.
        let out = par_indexed(97, |i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            let mut acc = i as u64;
            for _ in 0..(i % 13) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            i * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(8);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_indexed(500, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        let out = par_indexed(8, |i| {
            assert!(in_pool(), "tasks must know they are on the pool");
            // The nested call must not deadlock, spawn, or reorder.
            let inner = par_indexed(5, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert!(!in_pool(), "the caller's flag is restored after the join");
        let expect: Vec<usize> = (0..8).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let _l = TEST_LOCK.lock().unwrap();
        let task = |i: usize| (i as u64).wrapping_mul(2654435761) % 1013;
        let serial = {
            let _t = ThreadCount::set(1);
            par_indexed(256, task)
        };
        let par = {
            let _t = ThreadCount::set(6);
            par_indexed(256, task)
        };
        assert_eq!(serial, par);
    }

    #[test]
    fn overlap_runs_consumer_alongside_parallel_producer() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        let r = overlap(
            || {
                par_indexed(32, |_| produced.fetch_add(1, Ordering::SeqCst));
                7
            },
            || {
                assert!(in_pool(), "the consumer thread is pool-marked");
                // Wait until the producer side is done, then observe it.
                while produced.load(Ordering::SeqCst) < 32 {
                    std::thread::yield_now();
                }
                consumed.store(produced.load(Ordering::SeqCst), Ordering::SeqCst);
            },
        );
        assert_eq!(r, 7);
        assert_eq!(consumed.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn overlap_serial_runs_producer_then_consumer() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(1);
        let order = Mutex::new(Vec::new());
        let r = overlap(
            || {
                order.lock().unwrap().push("produce");
                42
            },
            || order.lock().unwrap().push("consume"),
        );
        assert_eq!(r, 42);
        // Serially the consumer must not require concurrent progress
        // (it runs strictly after the producer returns): this call
        // returning at all is the single-worker no-deadlock property.
        assert_eq!(*order.lock().unwrap(), ["produce", "consume"]);
    }

    #[test]
    fn par_map_take_moves_each_item_once() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        let items: Vec<String> = (0..64).map(|i| format!("v{i}")).collect();
        let out = par_map_take(items, |i, s| format!("{i}:{s}"));
        assert_eq!(out.len(), 64);
        assert_eq!(out[63], "63:v63");
        assert_eq!(out[0], "0:v0");
    }

    #[test]
    fn obs_counters_fold_deterministically() {
        let _l = TEST_LOCK.lock().unwrap();
        let run = |threads: usize| {
            let _t = ThreadCount::set(threads);
            wyt_obs::set_enabled(true);
            wyt_obs::reset();
            par_indexed(40, |i| wyt_obs::counter("par.test", (i as u64) + 1));
            let snap = wyt_obs::snapshot();
            wyt_obs::set_enabled(false);
            wyt_obs::reset();
            snap
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.counters.get("par.test"), Some(&820));
        assert_eq!(serial.counters, par.counters);
    }

    #[test]
    fn env_parsing_semantics() {
        // Resolution is cached; test the resolver's contract indirectly
        // via set_threads clamping.
        let _l = TEST_LOCK.lock().unwrap();
        set_threads(0);
        assert_eq!(threads(), 1, "0 clamps to serial");
        set_threads(1_000_000);
        assert_eq!(threads(), MAX_THREADS);
        THREADS.store(0, Ordering::Relaxed);
        assert!(threads() >= 1);
    }

    #[test]
    fn worker_profile_accumulates_when_observing() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        wyt_obs::set_enabled(true);
        let base = worker_profile();
        par_indexed(64, |i| std::hint::black_box(i * 2));
        let delta = worker_profile_delta(&base);
        wyt_obs::set_enabled(false);
        wyt_obs::reset();
        assert_eq!(delta.iter().map(|w| w.tasks).sum::<u64>(), 64);
        assert!(!delta.is_empty());
        assert_eq!(delta[0].worker, 0);
        assert!(delta[0].busy_ns + delta[0].idle_ns > 0);
    }

    #[test]
    fn worker_profile_is_off_when_not_observing() {
        let _l = TEST_LOCK.lock().unwrap();
        let _t = ThreadCount::set(4);
        wyt_obs::set_enabled(false);
        let base = worker_profile();
        par_indexed(64, |i| std::hint::black_box(i));
        let delta = worker_profile_delta(&base);
        assert!(delta.iter().all(|w| w.tasks == 0), "profiling off records nothing");
    }

    #[test]
    fn task_trace_events_match_serial_vs_parallel() {
        let _l = TEST_LOCK.lock().unwrap();
        let run = |threads: usize| {
            let _t = ThreadCount::set(threads);
            wyt_obs::trace::set_enabled(true);
            wyt_obs::trace::reset();
            par_indexed(24, |i| std::hint::black_box(i));
            let evs = wyt_obs::trace::drain();
            wyt_obs::trace::set_enabled(false);
            wyt_obs::trace::reset();
            evs.iter().map(|e| (e.name, e.phase)).collect::<Vec<_>>()
        };
        let serial = run(1);
        let par = run(4);
        assert_eq!(serial.len(), 48, "begin+end per task");
        assert_eq!(serial, par, "folded event stream matches the serial stream");
    }

    #[test]
    fn range_steal_takes_upper_half() {
        let r = Range::new(0, 8);
        assert_eq!(r.claim(), Some(0));
        assert_eq!(r.steal(), Some((4, 8)), "upper half of [1,8)");
        assert_eq!(r.remaining(), 3);
        let single = Range::new(5, 6);
        assert_eq!(single.steal(), Some((5, 6)), "a lone index is stealable");
        assert_eq!(single.claim(), None);
    }
}
