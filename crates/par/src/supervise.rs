//! Deterministic job supervision: panic isolation + fuel watchdogs.
//!
//! `run_batch` must survive any single job crashing or running away.
//! Wall-clock deadlines would break the repo's core determinism
//! contract (serial and `WYT_PAR=4` runs are byte-identical), so the
//! watchdog is *fuel-derived* instead: a job gets a budget of retired
//! emulator steps and healing rounds, charged at safe preemption points
//! (after each emulator run, at each healing-round boundary). Exceeding
//! the budget raises a typed panic ([`BudgetExceeded`]) that the
//! supervisor catches and reports as [`Supervised::Timeout`]; any other
//! panic becomes [`Supervised::Crashed`] with its rendered payload.
//!
//! The budget lives in a thread-local installed by [`run_supervised`].
//! That is sound here because a batch job is exactly one pool task on
//! one thread: nested parallel entry points run inline on the worker
//! (`IN_POOL`), so every charge site the job reaches executes on the
//! thread that holds its budget. Code running outside any supervised
//! scope charges into the void — [`charge_steps`] is a no-op — so
//! ordinary single-recompile callers never pay or observe anything.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Environment override for the per-job step ceiling (decimal or
/// `0x`-hex; parsed warn-and-default via [`wyt_obs::env`]).
pub const BUDGET_ENV: &str = "WYT_JOB_BUDGET";

/// Default retired-step ceiling per job. The heaviest corpus programs
/// retire ~10^6 steps per validation input; 2^33 leaves two orders of
/// magnitude of headroom while still catching genuinely unbounded
/// loops.
pub const DEFAULT_STEPS: u64 = 1 << 33;

/// Default healing-round ceiling per job; the healing loop's own
/// internal cap is `2 * held_out + 4`, far below this.
pub const DEFAULT_ROUNDS: u64 = 512;

/// A per-job execution budget in deterministic fuel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Ceiling on retired emulator steps (validation replays, healing
    /// re-traces, native baselines).
    pub steps: u64,
    /// Ceiling on healing rounds.
    pub rounds: u64,
}

impl Budget {
    /// The default budget, honoring a `WYT_JOB_BUDGET` step override.
    pub fn from_env() -> Budget {
        Budget {
            steps: wyt_obs::env::env_u64(BUDGET_ENV, DEFAULT_STEPS).max(1),
            rounds: DEFAULT_ROUNDS,
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::from_env()
    }
}

/// Panic payload raised at a charge site when the budget runs out.
/// [`run_supervised`] downcasts it back into a typed outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Which ceiling tripped: `"steps"` or `"rounds"`.
    pub what: &'static str,
    /// Fuel charged so far, including the charge that tripped.
    pub spent: u64,
    /// The configured ceiling.
    pub limit: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job budget exhausted: {} {}/{}", self.what, self.spent, self.limit)
    }
}

#[derive(Clone, Copy)]
struct BudgetState {
    limit: Budget,
    steps_spent: u64,
    rounds_spent: u64,
}

thread_local! {
    static ACTIVE: Cell<Option<BudgetState>> = const { Cell::new(None) };
    /// Set while a supervised job runs so the process panic hook stays
    /// quiet: an isolated job's panic is a *reported outcome*, not a
    /// diagnostic the operator should see once per crashed job.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Charge `n` retired steps against the active budget, if any.
/// Panics with [`BudgetExceeded`] when the ceiling is crossed; this is
/// the safe preemption point the watchdog cancels at.
pub fn charge_steps(n: u64) {
    charge(n, 0);
}

/// Charge one healing round against the active budget, if any.
pub fn charge_round() {
    charge(0, 1);
}

fn charge(steps: u64, rounds: u64) {
    let Some(mut st) = ACTIVE.get() else { return };
    st.steps_spent = st.steps_spent.saturating_add(steps);
    st.rounds_spent = st.rounds_spent.saturating_add(rounds);
    ACTIVE.set(Some(st));
    let over = if st.steps_spent > st.limit.steps {
        BudgetExceeded { what: "steps", spent: st.steps_spent, limit: st.limit.steps }
    } else if st.rounds_spent > st.limit.rounds {
        BudgetExceeded { what: "rounds", spent: st.rounds_spent, limit: st.limit.rounds }
    } else {
        return;
    };
    panic::panic_any(over);
}

/// Is a supervised budget installed on this thread? (Test hook.)
pub fn budget_active() -> bool {
    ACTIVE.get().is_some()
}

/// The outcome of one supervised job.
#[derive(Debug)]
pub enum Supervised<R> {
    /// The job ran to completion (it may still have returned its own
    /// domain error).
    Ok(R),
    /// The job exceeded its deterministic fuel budget and was cancelled
    /// at a preemption point.
    Timeout(BudgetExceeded),
    /// The job panicked; the payload is rendered to a string.
    Crashed(String),
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.try_with(Cell::get).unwrap_or(false) {
                prev(info);
            }
        }));
    });
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `f` under `budget` with panic isolation: a completed call
/// returns `Ok`, a budget trip returns `Timeout`, any other panic
/// returns `Crashed`. Unwinding is contained to this call; locks the
/// job poisoned are recovered by `wyt_obs::lock_ok` at their lockers.
/// Nestable (the previous budget is restored on exit), though in
/// practice one batch job is one supervised scope.
pub fn run_supervised<R>(budget: Budget, f: impl FnOnce() -> R) -> Supervised<R> {
    install_quiet_hook();
    let prev = ACTIVE.replace(Some(BudgetState {
        limit: Budget { steps: budget.steps.max(1), rounds: budget.rounds.max(1) },
        steps_spent: 0,
        rounds_spent: 0,
    }));
    let prev_quiet = QUIET.replace(true);
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.set(prev_quiet);
    ACTIVE.set(prev);
    match r {
        Ok(v) => Supervised::Ok(v),
        Err(p) => match p.downcast::<BudgetExceeded>() {
            Ok(b) => Supervised::Timeout(*b),
            Err(p) => Supervised::Crashed(payload_str(p.as_ref())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_BUDGET: Budget = Budget { steps: 1000, rounds: 4 };

    #[test]
    fn completes_within_budget() {
        let r = run_supervised(TEST_BUDGET, || {
            charge_steps(999);
            42
        });
        assert!(matches!(r, Supervised::Ok(42)));
    }

    #[test]
    fn step_overrun_times_out() {
        let r = run_supervised(TEST_BUDGET, || {
            charge_steps(500);
            charge_steps(501);
            unreachable!("must be cancelled at the second charge");
        });
        match r {
            Supervised::Timeout(b) => {
                assert_eq!(b.what, "steps");
                assert_eq!(b.spent, 1001);
                assert_eq!(b.limit, 1000);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn round_overrun_times_out() {
        let r: Supervised<()> = run_supervised(TEST_BUDGET, || loop {
            charge_round();
        });
        assert!(matches!(r, Supervised::Timeout(BudgetExceeded { what: "rounds", .. })));
    }

    #[test]
    fn panic_is_isolated_with_payload() {
        let r: Supervised<()> = run_supervised(TEST_BUDGET, || panic!("boom {}", 7));
        match r {
            Supervised::Crashed(msg) => assert_eq!(msg, "boom 7"),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn charges_outside_supervision_are_noops() {
        assert!(!budget_active());
        charge_steps(u64::MAX);
        charge_round();
    }

    #[test]
    fn budget_does_not_leak_across_jobs() {
        let _ = run_supervised(TEST_BUDGET, || charge_steps(900));
        let r = run_supervised(TEST_BUDGET, || {
            charge_steps(900);
            1
        });
        assert!(matches!(r, Supervised::Ok(1)), "fresh job must get a fresh budget");
        assert!(!budget_active());
    }
}
