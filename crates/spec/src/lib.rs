//! # wyt-spec — SPECint-2006-shaped workloads
//!
//! Ten mini-C programs standing in for the paper's SPECint 2006 benchmarks
//! (minus `omnetpp`/`perlbench`, which the paper also excludes). Each is a
//! genuine scaled-down analogue of its namesake's computational core —
//! compression, expression compilation, network optimization, board
//! evaluation, sequence DP, game-tree search, quantum-register simulation,
//! motion estimation, pathfinding, tree transformation — with loop-heavy
//! inner kernels, mixed stack/global/heap data, recursion, and `printf`
//! checksums for functional validation.
//!
//! Every benchmark provides deterministic *train* inputs (used for
//! tracing, like the paper's incremental lifting inputs) and a larger
//! *ref* input (used for measurement, like the SPEC ref datasets).

use wyt_testkit::Rng;

mod sources;

/// One benchmark: source program plus input generators.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// SPEC-style short name (`"bzip2"`, `"gcc"`, ...).
    pub name: &'static str,
    /// mini-C source.
    pub source: &'static str,
    seed: u64,
    ref_len: usize,
    train_len: usize,
    train_count: usize,
    alphabet: Alphabet,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alphabet {
    /// Arbitrary bytes.
    Bytes,
    /// Runs of repeated printable characters (compresses interestingly).
    Runs,
    /// Arithmetic expressions (digits and operators).
    Expr,
    /// Lowercase letters.
    Letters,
    /// Decimal digits.
    Digits,
}

fn gen_input(alphabet: Alphabet, seed: u64, len: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(len);
    match alphabet {
        Alphabet::Bytes => {
            while out.len() < len {
                out.push(rng.next_u8());
            }
        }
        Alphabet::Runs => {
            while out.len() < len {
                let c = b'a' + rng.range_u32(0, 16) as u8;
                let run = rng.range_usize(1, 12);
                for _ in 0..run.min(len - out.len()) {
                    out.push(c);
                }
            }
        }
        Alphabet::Expr => {
            while out.len() + 16 < len {
                let mut depth = 0;
                let terms = rng.range_u32(2, 6);
                for t in 0..terms {
                    if t > 0 {
                        out.push(*rng.choose(&[b'+', b'-', b'*']));
                    }
                    if rng.chance(0.3) && t + 1 < terms {
                        out.push(b'(');
                        depth += 1;
                    }
                    let n = rng.range_u32(0, 999);
                    out.extend_from_slice(n.to_string().as_bytes());
                    if depth > 0 && rng.chance(0.5) {
                        out.push(b')');
                        depth -= 1;
                    }
                }
                for _ in 0..depth {
                    out.push(b')');
                }
                out.push(b'\n');
            }
        }
        Alphabet::Letters => {
            while out.len() < len {
                out.push(b'a' + rng.range_u32(0, 26) as u8);
            }
        }
        Alphabet::Digits => {
            while out.len() < len {
                out.push(b'0' + rng.range_u32(0, 10) as u8);
            }
        }
    }
    out.truncate(len);
    out
}

impl Benchmark {
    /// Train inputs: small, varied, used for tracing.
    pub fn train_inputs(&self) -> Vec<Vec<u8>> {
        (0..self.train_count)
            .map(|i| {
                gen_input(self.alphabet, self.seed.wrapping_add(i as u64 * 977), self.train_len)
            })
            .collect()
    }

    /// The ref input: larger, used for performance measurement.
    pub fn ref_input(&self) -> Vec<u8> {
        gen_input(self.alphabet, self.seed.wrapping_mul(31).wrapping_add(7), self.ref_len)
    }

    /// Train inputs plus the ref input (the paper traces the ref datasets;
    /// including them guarantees coverage of the measured run).
    pub fn trace_inputs(&self) -> Vec<Vec<u8>> {
        let mut v = self.train_inputs();
        v.push(self.ref_input());
        v
    }
}

/// The full suite, in the paper's Table 1 order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bzip2",
            source: sources::BZIP2,
            seed: 0xb21,
            ref_len: 6000,
            train_len: 600,
            train_count: 2,
            alphabet: Alphabet::Runs,
        },
        Benchmark {
            name: "gcc",
            source: sources::GCC,
            seed: 0x6cc,
            ref_len: 4000,
            train_len: 500,
            train_count: 2,
            alphabet: Alphabet::Expr,
        },
        Benchmark {
            name: "mcf",
            source: sources::MCF,
            seed: 0x3cf,
            ref_len: 600,
            train_len: 120,
            train_count: 2,
            alphabet: Alphabet::Bytes,
        },
        Benchmark {
            name: "gobmk",
            source: sources::GOBMK,
            seed: 0x60b,
            ref_len: 800,
            train_len: 150,
            train_count: 2,
            alphabet: Alphabet::Bytes,
        },
        Benchmark {
            name: "hmmer",
            source: sources::HMMER,
            seed: 0x4e4,
            ref_len: 900,
            train_len: 150,
            train_count: 2,
            alphabet: Alphabet::Letters,
        },
        Benchmark {
            name: "sjeng",
            source: sources::SJENG,
            seed: 0x51e,
            ref_len: 64,
            train_len: 16,
            train_count: 2,
            alphabet: Alphabet::Digits,
        },
        Benchmark {
            name: "libquantum",
            source: sources::LIBQUANTUM,
            seed: 0x9a7,
            ref_len: 96,
            train_len: 24,
            train_count: 2,
            alphabet: Alphabet::Digits,
        },
        Benchmark {
            name: "h264ref",
            source: sources::H264REF,
            seed: 0x264,
            ref_len: 5000,
            train_len: 600,
            train_count: 2,
            alphabet: Alphabet::Bytes,
        },
        Benchmark {
            name: "astar",
            source: sources::ASTAR,
            seed: 0xa57,
            ref_len: 700,
            train_len: 150,
            train_count: 2,
            alphabet: Alphabet::Bytes,
        },
        Benchmark {
            name: "xalancbmk",
            source: sources::XALANCBMK,
            seed: 0x7a1,
            ref_len: 1500,
            train_len: 250,
            train_count: 2,
            alphabet: Alphabet::Letters,
        },
    ]
}

/// Look up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_emu::run_image;
    use wyt_minicc::{compile, Profile};

    #[test]
    fn inputs_are_deterministic() {
        let b = by_name("bzip2").unwrap();
        assert_eq!(b.ref_input(), b.ref_input());
        assert_eq!(b.train_inputs(), b.train_inputs());
        assert_ne!(b.train_inputs()[0], b.train_inputs()[1]);
        assert_eq!(b.trace_inputs().len(), b.train_inputs().len() + 1);
    }

    #[test]
    fn all_benchmarks_compile_and_agree_across_profiles() {
        for b in suite() {
            let input = b.train_inputs().remove(0);
            let mut reference: Option<(i32, Vec<u8>)> = None;
            for p in [
                Profile::gcc12_o3(),
                Profile::gcc12_o0(),
                Profile::clang16_o3(),
                Profile::gcc44_o3(),
                Profile::gcc44_o3_nopic(),
            ] {
                let img = compile(b.source, &p)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", b.name, p.name));
                let r = run_image(&img, input.clone());
                assert!(r.ok(), "{} under {}: {:?}", b.name, p.name, r.trap);
                assert!(!r.output.is_empty(), "{} must print a checksum", b.name);
                match &reference {
                    None => reference = Some((r.exit_code, r.output)),
                    Some((code, out)) => {
                        assert_eq!(r.exit_code, *code, "{} exit differs under {}", b.name, p.name);
                        assert_eq!(&r.output, out, "{} output differs under {}", b.name, p.name);
                    }
                }
            }
        }
    }

    #[test]
    fn ref_inputs_run_within_budget() {
        for b in suite() {
            let img = compile(b.source, &Profile::gcc12_o3()).unwrap();
            let mut m = wyt_emu::Machine::new(&img, b.ref_input());
            m.set_fuel(120_000_000);
            let r = m.run();
            assert!(r.ok(), "{} ref run: {:?}", b.name, r.trap);
            assert!(
                r.inst_count > 50_000,
                "{} ref run too small to measure: {} insts",
                b.name,
                r.inst_count
            );
        }
    }
}
