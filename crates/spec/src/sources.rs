//! The mini-C sources of the ten SPECint-shaped benchmarks.

/// 401.bzip2 analogue: run-length encoding, move-to-front transform and an
/// order-0 entropy proxy over the input block, three passes.
pub const BZIP2: &str = r#"
int buf[8192];
int rle[8192];
int mtf[8192];
int freq[256];

static int read_block(int cap) {
    int n = 0;
    int c;
    while (n < cap) {
        c = getchar();
        if (c < 0) break;
        buf[n] = c & 255;
        n++;
    }
    return n;
}

static int run_length_encode(int n) {
    int out = 0;
    int i = 0;
    while (i < n) {
        int c = buf[i];
        int run = 1;
        while (i + run < n && buf[i + run] == c && run < 255) run++;
        if (run >= 4) {
            rle[out] = c; rle[out + 1] = c; rle[out + 2] = c; rle[out + 3] = c;
            rle[out + 4] = run - 4;
            out += 5;
        } else {
            int k;
            for (k = 0; k < run; k++) rle[out + k] = c;
            out += run;
        }
        i += run;
    }
    return out;
}

static int move_to_front(int n) {
    char order[256];
    int i;
    int sum = 0;
    for (i = 0; i < 256; i++) order[i] = i;
    for (i = 0; i < n; i++) {
        int c = rle[i];
        int j = 0;
        while ((order[j] & 255) != c) j++;
        mtf[i] = j;
        while (j > 0) {
            order[j] = order[j - 1];
            j--;
        }
        order[0] = c;
        sum += mtf[i];
    }
    return sum;
}

static int entropy_proxy(int n) {
    int i;
    int bits = 0;
    for (i = 0; i < 256; i++) freq[i] = 0;
    for (i = 0; i < n; i++) freq[mtf[i] & 255]++;
    for (i = 0; i < 256; i++) {
        int f = freq[i];
        int cost = 8;
        while (f > 0) { cost--; f >>= 1; }
        if (cost < 1) cost = 1;
        bits += freq[i] * cost;
    }
    return bits;
}

int main() {
    int pass;
    int check = 0;
    int n = read_block(8192);
    for (pass = 0; pass < 3; pass++) {
        int m = run_length_encode(n);
        int msum = move_to_front(m);
        int bits = entropy_proxy(m);
        check = check * 31 + m + msum + bits;
        buf[pass] = (check >> 3) & 255;
    }
    printf("bzip2 n=%d check=%x\n", n, check);
    return check & 127;
}
"#;

/// 403.gcc analogue: a tiny expression compiler — tokenizer, recursive
/// descent parser with precedence, constant folder and a stack-machine
/// code generator whose "emitted" opcodes are checksummed.
pub const GCC: &str = r#"
char src[8192];
int srclen = 0;
int pos = 0;
int code[4096];
int ncode = 0;

static int peekc() {
    if (pos >= srclen) return -1;
    return src[pos] & 255;
}

static void emit(int op, int val) {
    if (ncode < 4094) {
        code[ncode] = op;
        code[ncode + 1] = val;
        ncode += 2;
    }
}

/* forward reference to parse_expr resolves via the two-pass signature
   collection (no prototypes in this dialect) */
static int parse_primary() {
    int c = peekc();
    if (c == '(') {
        int v;
        pos++;
        v = parse_expr();
        if (peekc() == ')') pos++;
        return v;
    }
    {
        int v = 0;
        while (c >= '0' && c <= '9') {
            v = v * 10 + (c - '0');
            pos++;
            c = peekc();
        }
        emit(1, v);
        return v;
    }
}

static int parse_term() {
    int v = parse_primary();
    while (peekc() == '*') {
        int r;
        pos++;
        r = parse_primary();
        emit(3, 0);
        v = v * r;
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    int c = peekc();
    while (c == '+' || c == '-') {
        int r;
        pos++;
        r = parse_term();
        if (c == '+') { emit(2, 0); v = v + r; }
        else { emit(4, 0); v = v - r; }
        c = peekc();
    }
    return v;
}

static int run_vm() {
    int stack[128];
    int sp = 0;
    int i;
    for (i = 0; i < ncode; i += 2) {
        int op = code[i];
        switch (op) {
            case 1:
                if (sp < 127) { stack[sp] = code[i + 1]; sp++; }
                break;
            case 2:
                if (sp >= 2) { stack[sp - 2] += stack[sp - 1]; sp--; }
                break;
            case 3:
                if (sp >= 2) { stack[sp - 2] *= stack[sp - 1]; sp--; }
                break;
            case 4:
                if (sp >= 2) { stack[sp - 2] -= stack[sp - 1]; sp--; }
                break;
            default:
                break;
        }
    }
    if (sp > 0) return stack[sp - 1];
    return 0;
}

int main() {
    int check = 0;
    int lines = 0;
    srclen = read_bytes(src, 8192);
    while (pos < srclen) {
        int folded;
        int executed;
        ncode = 0;
        folded = parse_expr();
        executed = run_vm();
        if (folded != executed) check += 999999;
        check = check * 33 + folded + ncode;
        lines++;
        while (peekc() == 10) pos++;
        if (peekc() < 0) break;
    }
    printf("gcc lines=%d check=%x\n", lines, check);
    return check & 127;
}
"#;

/// 429.mcf analogue: repeated Bellman-Ford relaxations (the label-
/// correcting core of network simplex) over a grid-shaped flow network
/// with per-arc costs derived from the input.
pub const MCF: &str = r#"
struct node { int dist; int pot; int flow; };
struct node nodes[400];
int cost[1600];

int main() {
    char raw[640];
    int n = read_bytes(raw, 640);
    int w = 20;
    int total = 400;
    int i;
    int round;
    int check = 0;
    for (i = 0; i < 1600; i++) cost[i] = ((raw[i % n] & 255) % 19) + 1;
    for (round = 0; round < 12; round++) {
        int changed = 1;
        int sweeps = 0;
        for (i = 0; i < total; i++) {
            nodes[i].dist = 1000000;
            nodes[i].pot = (i * 7 + round) % 13;
            nodes[i].flow = 0;
        }
        nodes[round % total].dist = 0;
        while (changed && sweeps < 40) {
            changed = 0;
            for (i = 0; i < total; i++) {
                int d = nodes[i].dist;
                int right = i + 1;
                int down = i + w;
                if (d >= 1000000) continue;
                if (i % w != w - 1) {
                    int nd = d + cost[(i * 2) % 1600] + nodes[right].pot;
                    if (nd < nodes[right].dist) {
                        nodes[right].dist = nd;
                        changed = 1;
                    }
                }
                if (down < total) {
                    int nd = d + cost[(i * 2 + 1) % 1600] + nodes[down].pot;
                    if (nd < nodes[down].dist) {
                        nodes[down].dist = nd;
                        changed = 1;
                    }
                }
            }
            sweeps++;
        }
        for (i = 0; i < total; i++) {
            if (nodes[i].dist < 1000000) {
                nodes[i].flow = nodes[i].dist % 7;
                check += nodes[i].dist + nodes[i].flow;
            }
        }
        check = check * 17 + sweeps;
    }
    printf("mcf check=%x\n", check);
    return check & 127;
}
"#;

/// 445.gobmk analogue: liberty counting on a Go board via recursive
/// flood fill over chains, for a series of positions derived from input.
pub const GOBMK: &str = r#"
char board[361];
char seen[361];

static int flood(int p, int color) {
    int libs = 0;
    int x = p % 19;
    int y = p / 19;
    int d;
    if (seen[p]) return 0;
    seen[p] = 1;
    for (d = 0; d < 4; d++) {
        int nx = x;
        int ny = y;
        int q;
        if (d == 0) nx = x - 1;
        if (d == 1) nx = x + 1;
        if (d == 2) ny = y - 1;
        if (d == 3) ny = y + 1;
        if (nx < 0 || nx >= 19 || ny < 0 || ny >= 19) continue;
        q = ny * 19 + nx;
        if (board[q] == 0) {
            if (!seen[q]) {
                seen[q] = 1;
                libs++;
            }
        } else if (board[q] == color) {
            libs += flood(q, color);
        }
    }
    return libs;
}

static int eval_position() {
    int p;
    int score = 0;
    for (p = 0; p < 361; p++) seen[p] = 0;
    for (p = 0; p < 361; p++) {
        if (board[p] != 0 && !seen[p]) {
            int libs = flood(p, board[p]);
            if (board[p] == 1) score += libs;
            else score -= libs;
        }
    }
    return score;
}

int main() {
    char raw[1024];
    int n = read_bytes(raw, 1024);
    int pos;
    int check = 0;
    int game;
    for (game = 0; game < 6; game++) {
        int stones = 80 + game * 20;
        int s;
        for (pos = 0; pos < 361; pos++) board[pos] = 0;
        for (s = 0; s < stones; s++) {
            int r = (raw[(game * 131 + s * 7) % n] & 255) * 361 + s * 97;
            int cell = ((r % 361) + 361) % 361;
            board[cell] = 1 + (s & 1);
        }
        check = check * 31 + eval_position();
    }
    printf("gobmk check=%x\n", check);
    return check & 127;
}
"#;

/// 456.hmmer analogue: Viterbi-style dynamic programming over a profile
/// HMM with match/insert/delete states; the per-cell state struct is
/// copied wholesale each step (the vectorizable kernel).
pub const HMMER: &str = r#"
struct cell { int m; int ins; int del; int pad; };
struct cell prev[64];
struct cell curr[64];
int emit_score[1664];
char seq[1024];

static int max2(int a, int b) { return a > b ? a : b; }
static int max3(int a, int b, int c) { return max2(max2(a, b), c); }

int main() {
    int n = read_bytes(seq, 1024);
    int model = 64;
    int i;
    int j;
    int best = -1000000;
    int check = 0;
    for (i = 0; i < 1664; i++) emit_score[i] = ((i * 37) % 23) - 11;
    for (j = 0; j < model; j++) {
        prev[j].m = -10000;
        prev[j].ins = -10000;
        prev[j].del = -10000;
        prev[j].pad = 0;
    }
    prev[0].m = 0;
    for (i = 0; i < n; i++) {
        int sym = (seq[i] & 255) % 26;
        for (j = 1; j < model; j++) {
            int e = emit_score[(sym * model + j) % 1664];
            int from_m = prev[j - 1].m - 1;
            int from_i = prev[j - 1].ins - 3;
            int from_d = prev[j - 1].del - 2;
            curr[j].m = max3(from_m, from_i, from_d) + e;
            curr[j].ins = max2(prev[j].m - 4, prev[j].ins - 1) + (e >> 1);
            curr[j].del = max2(curr[j - 1].m - 5, curr[j - 1].del - 1);
            curr[j].pad = 0;
        }
        curr[0] = prev[0];
        for (j = 0; j < model; j++) prev[j] = curr[j];
        if (curr[model - 1].m > best) best = curr[model - 1].m;
        check += curr[(i * 7) % model].m & 1023;
    }
    printf("hmmer best=%d check=%x\n", best, check);
    return (best + check) & 127;
}
"#;

/// 458.sjeng analogue: fixed-depth alpha-beta search over a deterministic
/// toy game whose move values derive from a seed; per-node move list on
/// the stack, deep recursion.
pub const SJENG: &str = r#"
int nodes = 0;

static int gen_move_score(int state, int mv) {
    int h = state * 2654435761 + mv * 40503;
    h ^= h >> 13;
    return (h % 200) - 100;
}

static int search(int state, int depth, int alpha, int beta) {
    int moves[8];
    int i;
    int best = -30000;
    nodes++;
    if (depth == 0) {
        int h = state * 2246822519;
        h ^= h >> 11;
        return (h % 600) - 300;
    }
    for (i = 0; i < 8; i++) moves[i] = gen_move_score(state, i);
    for (i = 0; i < 8; i++) {
        int child = state * 31 + moves[i] + i;
        int v = -search(child, depth - 1, -beta, -alpha);
        if (v > best) best = v;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int main() {
    int check = 0;
    int c;
    int game = 1;
    while ((c = getchar()) >= 0) {
        int root = game * 7919 + (c & 255);
        int score = search(root, 5, -30000, 30000);
        check = check * 29 + score;
        game++;
    }
    printf("sjeng games=%d nodes=%d check=%x\n", game - 1, nodes, check);
    return check & 127;
}
"#;

/// 462.libquantum analogue: gate simulation over a quantum register held
/// as amplitude/phase arrays inside a struct that is snapshotted (block
/// copied) between gates.
pub const LIBQUANTUM: &str = r#"
struct qreg { int amp[64]; int phase[64]; };
struct qreg reg;
struct qreg snap;

static void hadamard(int target) {
    int i;
    for (i = 0; i < 64; i++) {
        if (i & (1 << target)) {
            int j = i ^ (1 << target);
            int a = reg.amp[j];
            int b = reg.amp[i];
            reg.amp[j] = a + b;
            reg.amp[i] = a - b;
        }
    }
}

static void cnot(int control, int target) {
    int i;
    for (i = 0; i < 64; i++) {
        if ((i & (1 << control)) && !(i & (1 << target))) {
            int j = i | (1 << target);
            int t = reg.amp[i];
            reg.amp[i] = reg.amp[j];
            reg.amp[j] = t;
        }
    }
}

static void phase_shift(int target, int k) {
    int i;
    for (i = 0; i < 64; i++) {
        if (i & (1 << target)) reg.phase[i] = (reg.phase[i] + k) % 256;
    }
}

int main() {
    int c;
    int step = 0;
    int check = 0;
    int i;
    for (i = 0; i < 64; i++) { reg.amp[i] = (i == 0) ? 1024 : 0; reg.phase[i] = 0; }
    while ((c = getchar()) >= 0) {
        int g = (c - '0') % 10;
        int t = step % 6;
        if (g < 4) hadamard(t);
        else if (g < 7) cnot(t, (t + 1) % 6);
        else phase_shift(t, g * 3 + 1);
        snap = reg;           /* checkpoint: block copy of the register */
        check = check * 13 + snap.amp[(step * 11) % 64] + snap.phase[(step * 17) % 64];
        step++;
        if (step % 8 == 0) {
            reg = snap;       /* rollback path exercises the copy too */
        }
    }
    printf("libquantum steps=%d check=%x\n", step, check);
    return check & 127;
}
"#;

/// 464.h264ref analogue: exhaustive-then-refined SAD motion search of
/// 8x8 macroblocks inside a reconstructed reference frame.
pub const H264REF: &str = r#"
char frame[4096];   /* 64x64 reference */
char block[64];     /* 8x8 current macroblock */

static int sad(int bx, int by) {
    int acc = 0;
    int y;
    for (y = 0; y < 8; y++) {
        int x;
        int row = (by + y) * 64 + bx;
        for (x = 0; x < 8; x++) {
            int d = (frame[row + x] & 255) - (block[y * 8 + x] & 255);
            if (d < 0) d = -d;
            acc += d;
        }
    }
    return acc;
}

int main() {
    char raw[6000];
    int n = read_bytes(raw, 6000);
    int i;
    int mb;
    int check = 0;
    for (i = 0; i < 4096; i++) frame[i] = raw[i % n];
    for (mb = 0; mb < 24; mb++) {
        int best = 1000000;
        int bestx = 0;
        int besty = 0;
        int sx;
        int sy;
        for (i = 0; i < 64; i++) block[i] = raw[(mb * 97 + i * 3) % n];
        /* coarse full search on a 4-pel grid */
        for (sy = 0; sy <= 56; sy += 4) {
            for (sx = 0; sx <= 56; sx += 4) {
                int s = sad(sx, sy);
                if (s < best) { best = s; bestx = sx; besty = sy; }
            }
        }
        /* refinement around the winner */
        for (sy = besty - 3; sy <= besty + 3; sy++) {
            for (sx = bestx - 3; sx <= bestx + 3; sx++) {
                if (sx >= 0 && sy >= 0 && sx <= 56 && sy <= 56) {
                    int s = sad(sx, sy);
                    if (s < best) { best = s; bestx = sx; besty = sy; }
                }
            }
        }
        check = check * 37 + best + bestx * 64 + besty;
    }
    printf("h264ref check=%x\n", check);
    return check & 127;
}
"#;

/// 473.astar analogue: A* over a weighted grid with an array-heap open
/// list and structs for node records.
pub const ASTAR: &str = r#"
struct rec { int idx; int g; int f; int pad; };
struct rec heap[1024];
int heapn = 0;
int gcost[1024];
char closed[1024];
char terrain[1024];

static void heap_push(int idx, int g, int f) {
    int i = heapn;
    if (heapn >= 1023) return;
    heap[i].idx = idx;
    heap[i].g = g;
    heap[i].f = f;
    heap[i].pad = 0;
    heapn++;
    while (i > 0) {
        int p = (i - 1) / 2;
        if (heap[p].f <= heap[i].f) break;
        {
            struct rec t;
            t = heap[p];
            heap[p] = heap[i];
            heap[i] = t;
        }
        i = p;
    }
}

static int heap_pop() {
    int i = 0;
    int top = heap[0].idx;
    gcost[1023] = heap[0].g;  /* scratch slot carries g out */
    heapn--;
    heap[0] = heap[heapn];
    while (1) {
        int l = i * 2 + 1;
        int r = l + 1;
        int m = i;
        if (l < heapn && heap[l].f < heap[m].f) m = l;
        if (r < heapn && heap[r].f < heap[m].f) m = r;
        if (m == i) break;
        {
            struct rec t;
            t = heap[m];
            heap[m] = heap[i];
            heap[i] = t;
        }
        i = m;
    }
    return top;
}

static int hdist(int a, int b) {
    int ax = a % 32;
    int ay = a / 32;
    int bx = b % 32;
    int by = b / 32;
    int dx = ax - bx;
    int dy = ay - by;
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    return dx + dy;
}

static int astar(int start, int goal) {
    int i;
    int expansions = 0;
    for (i = 0; i < 1024; i++) { gcost[i] = 1000000; closed[i] = 0; }
    heapn = 0;
    gcost[start] = 0;
    heap_push(start, 0, hdist(start, goal));
    while (heapn > 0) {
        int cur = heap_pop();
        int d;
        if (closed[cur]) continue;
        closed[cur] = 1;
        expansions++;
        if (cur == goal) return expansions;
        for (d = 0; d < 4; d++) {
            int x = cur % 32;
            int y = cur / 32;
            int nxt;
            int step;
            if (d == 0) x--;
            if (d == 1) x++;
            if (d == 2) y--;
            if (d == 3) y++;
            if (x < 0 || x >= 32 || y < 0 || y >= 32) continue;
            nxt = y * 32 + x;
            step = 1 + (terrain[nxt] & 7);
            if (gcost[cur] + step < gcost[nxt]) {
                gcost[nxt] = gcost[cur] + step;
                heap_push(nxt, gcost[nxt], gcost[nxt] + hdist(nxt, goal));
            }
        }
    }
    return -expansions;
}

int main() {
    char raw[1024];
    int n = read_bytes(raw, 1024);
    int q;
    int check = 0;
    int i;
    for (i = 0; i < 1024; i++) terrain[i] = raw[i % n];
    for (q = 0; q < 10; q++) {
        int start = ((raw[q * 3 % n] & 255) * 4) % 1024;
        int goal = 1023 - ((raw[(q * 5 + 1) % n] & 255) * 3) % 1024;
        if (goal < 0) goal = -goal;
        check = check * 41 + astar(start, goal % 1024);
    }
    printf("astar check=%x\n", check);
    return check & 127;
}
"#;

/// 483.xalancbmk analogue: build a binary search tree from the input
/// stream (heap-allocated nodes), apply a recursive "stylesheet"
/// transformation that restructures subtrees, then hash a traversal.
pub const XALANCBMK: &str = r#"
struct tnode { int key; int count; struct tnode *left; struct tnode *right; };

struct tnode *root = 0;
int transforms = 0;

static struct tnode *insert(struct tnode *t, int key) {
    if ((int)t == 0) {
        struct tnode *n = (struct tnode*)malloc(sizeof(struct tnode));
        n->key = key;
        n->count = 1;
        n->left = (struct tnode*)0;
        n->right = (struct tnode*)0;
        return n;
    }
    if (key < t->key) t->left = insert(t->left, key);
    else if (key > t->key) t->right = insert(t->right, key);
    else t->count++;
    return t;
}

static struct tnode *transform(struct tnode *t, int depth) {
    if ((int)t == 0) return t;
    transforms++;
    t->left = transform(t->left, depth + 1);
    t->right = transform(t->right, depth + 1);
    /* template rule: odd-count nodes at even depth swap children */
    if ((t->count & 1) && (depth & 1) == 0) {
        struct tnode *tmp = t->left;
        t->left = t->right;
        t->right = tmp;
    }
    return t;
}

static int hash_tree(struct tnode *t, int depth) {
    int h;
    if ((int)t == 0) return 7;
    h = t->key * 31 + t->count * 7 + depth;
    h = h * 131 + hash_tree(t->left, depth + 1);
    h = h * 137 + hash_tree(t->right, depth + 1);
    return h;
}

int main() {
    int c;
    int inserted = 0;
    int check = 0;
    int round;
    while ((c = getchar()) >= 0) {
        int key = (c & 255) * 101 + inserted * 17;
        root = insert(root, key % 509);
        inserted++;
    }
    for (round = 0; round < 4; round++) {
        root = transform(root, 0);
        check = check * 43 + hash_tree(root, 0);
    }
    printf("xalancbmk nodes=%d transforms=%d check=%x\n", inserted, transforms, check);
    return check & 127;
}
"#;
