//! Differential execution tests: every compiler profile must produce a
//! binary with identical observable behaviour (exit code and output) when
//! run on the machine emulator. This is the property the whole evaluation
//! stands on — profile differences must be *performance* differences only.

use wyt_emu::run_image;
use wyt_minicc::{compile, Profile};

fn profiles() -> Vec<Profile> {
    vec![
        Profile::gcc12_o3(),
        Profile::gcc12_o0(),
        Profile::clang16_o3(),
        Profile::gcc44_o3(),
        Profile::gcc44_o3_nopic(),
    ]
}

/// Compile and run under every profile; assert identical results and
/// return `(exit_code, output)`.
fn run_all(src: &str, input: &[u8]) -> (i32, Vec<u8>) {
    let mut results = Vec::new();
    for p in profiles() {
        let img = compile(src, &p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let r = run_image(&img, input.to_vec());
        assert!(r.ok(), "{}: trap {:?}", p.name, r.trap);
        results.push((p.name, r.exit_code, r.output, r.cycles));
    }
    let (name0, code0, out0, _) = results[0].clone();
    for (name, code, out, _) in &results[1..] {
        assert_eq!(*code, code0, "{name} vs {name0}: exit code differs");
        assert_eq!(out, &out0, "{name} vs {name0}: output differs");
    }
    (code0, out0)
}

#[test]
fn arithmetic_and_control_flow() {
    let (code, _) = run_all(
        r#"
        int main() {
            int acc = 0;
            int i;
            for (i = 1; i <= 10; i++) {
                if (i % 2 == 0) acc += i * i;
                else acc -= i;
            }
            while (acc > 100) acc -= 7;
            return acc;
        }
        "#,
        b"",
    );
    // sum of even squares 4+16+36+64+100=220 minus odds 1+3+5+7+9=25 -> 195; then -7 until <=100 -> 97
    assert_eq!(code, 97);
}

#[test]
fn recursion_fib() {
    let (code, _) = run_all(
        r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(15); }
        "#,
        b"",
    );
    assert_eq!(code, 610);
}

#[test]
fn arrays_pointers_and_struct_members() {
    let (code, _) = run_all(
        r#"
        struct point { int x; int y; };
        int main() {
            struct point pts[4];
            int i;
            int *ip;
            int acc;
            for (i = 0; i < 4; i++) {
                pts[i].x = i * 10;
                pts[i].y = i + 1;
            }
            ip = &pts[2].x;
            *ip += 5;
            acc = 0;
            for (i = 0; i < 4; i++) acc += pts[i].x + pts[i].y;
            return acc;
        }
        "#,
        b"",
    );
    // x: 0,10,25,30 = 65; y: 1,2,3,4 = 10 -> 75
    assert_eq!(code, 75);
}

#[test]
fn struct_copies_including_vmov_path() {
    let (code, _) = run_all(
        r#"
        struct big { int a; int b; int c; int d; int e; int f; };
        int main() {
            struct big x;
            struct big y;
            x.a = 1; x.b = 2; x.c = 3; x.d = 4; x.e = 5; x.f = 6;
            y = x;
            y.f += 10;
            return y.a + y.b + y.c + y.d + y.e + y.f;
        }
        "#,
        b"",
    );
    assert_eq!(code, 31);
}

#[test]
fn char_short_semantics() {
    let (code, _) = run_all(
        r#"
        int main() {
            char c = 200;     /* wraps to -56 */
            short s = 40000;  /* wraps to -25536 */
            char buf[4];
            buf[0] = 250;
            return (c + s + buf[0] == -56 - 25536 - 6) ? 42 : 0;
        }
        "#,
        b"",
    );
    assert_eq!(code, 42);
}

#[test]
fn switch_dense_and_sparse() {
    let src = r#"
        int classify(int c) {
            switch (c) {
                case 3: return 30;
                case 4: return 40;
                case 5: return 50;
                case 6: return 60;
                case 7: return 70;
                default: return -1;
            }
        }
        int sparse(int c) {
            switch (c) {
                case 1: return 5;
                case 100: return 6;
                default: return 7;
            }
        }
        int main() {
            return classify(5) + classify(99) + sparse(100);
        }
    "#;
    let (code, _) = run_all(src, b"");
    assert_eq!(code, 50 - 1 + 6);
}

#[test]
fn globals_strings_and_printf() {
    let (code, out) = run_all(
        r#"
        int counter = 5;
        int table[4] = { 10, 20, 30, 40 };
        char greeting[8] = "hi";
        int main() {
            counter += table[2];
            printf("%s %d %04x|", greeting, counter, 255);
            printf("neg=%d c=%c u=%u\n", -7, 'A', 3);
            return counter;
        }
        "#,
        b"",
    );
    assert_eq!(code, 35);
    assert_eq!(out, b"hi 35 00ff|neg=-7 c=A u=3\n");
}

#[test]
fn reads_input_via_getchar() {
    let (code, out) = run_all(
        r#"
        int main() {
            int c;
            int sum = 0;
            while ((c = getchar()) >= 0) {
                sum += c - '0';
                putchar(c);
            }
            return sum;
        }
        "#,
        b"123",
    );
    assert_eq!(code, 6);
    assert_eq!(out, b"123");
}

#[test]
fn malloc_memcpy_strlen() {
    let (code, _) = run_all(
        r#"
        int main() {
            char *p = (char*)malloc(16);
            int n;
            strcpy(p, "hello");
            n = strlen(p);
            memcpy(p + 8, p, 5);
            p[13] = 0;
            return n + strlen(p + 8) + (strcmp(p, p + 8) == 0 ? 100 : 0);
        }
        "#,
        b"",
    );
    assert_eq!(code, 5 + 5 + 100);
}

#[test]
fn indirect_calls_through_function_table() {
    let (code, _) = run_all(
        r#"
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        int ops[3];
        int main() {
            int i;
            int acc = 0;
            ops[0] = (int)&add;
            ops[1] = (int)&sub;
            ops[2] = (int)&mul;
            for (i = 0; i < 3; i++) acc += __icall(ops[i], 10, 3);
            return acc;
        }
        "#,
        b"",
    );
    assert_eq!(code, 13 + 7 + 30);
}

#[test]
fn static_functions_and_regparm() {
    let (code, _) = run_all(
        r#"
        static int clamp(int v, int hi) {
            return v > hi ? hi : v;
        }
        static int mix(int a, int b, int c) {
            return a * 100 + b * 10 + c;
        }
        int main() {
            return clamp(50, 9) + mix(1, 2, 3);
        }
        "#,
        b"",
    );
    assert_eq!(code, 9 + 123);
}

#[test]
fn tail_call_shaped_recursion() {
    let (code, _) = run_all(
        r#"
        int gcd(int a, int b) {
            if (b == 0) return a;
            return gcd(b, a % b);
        }
        int count(int n, int acc) {
            if (n == 0) return acc;
            return count(n - 1, acc + n);
        }
        int main() { return gcd(1071, 462) + count(100, 0); }
        "#,
        b"",
    );
    assert_eq!(code, 21 + 5050);
}

#[test]
fn pointer_loop_rewrite_preserves_semantics() {
    let (code, _) = run_all(
        r#"
        int main() {
            int arr[16];
            int i;
            int acc = 0;
            for (i = 0; i < 16; i++) arr[i] = 3;
            for (i = 0; i < 16; i++) acc += arr[i];
            return acc;
        }
        "#,
        b"",
    );
    assert_eq!(code, 48);
}

#[test]
fn do_while_break_continue() {
    let (code, _) = run_all(
        r#"
        int main() {
            int i = 0;
            int acc = 0;
            do {
                i++;
                if (i == 3) continue;
                if (i > 8) break;
                acc += i;
            } while (i < 100);
            return acc;
        }
        "#,
        b"",
    );
    assert_eq!(code, 1 + 2 + 4 + 5 + 6 + 7 + 8);
}

#[test]
fn division_shifts_and_bitops() {
    let (code, _) = run_all(
        r#"
        int main() {
            int a = -17;
            int b = 5;
            int x = 0x0ff0;
            return (a / b) * 1000 + (a % b) * -100 + ((x >> 4) & 0xff) + ((1 << 6) | 1);
        }
        "#,
        b"",
    );
    assert_eq!(code, -3000 + 200 + 0xff + 65);
}

#[test]
fn ternary_and_logical_shortcircuit() {
    let (code, _) = run_all(
        r#"
        int calls = 0;
        int bump() { calls++; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            int c = (a == 0 && b == 1) ? 10 : 20;
            return c + calls * 100;
        }
        "#,
        b"",
    );
    assert_eq!(code, 10, "short-circuit must skip bump()");
}

#[test]
fn optimized_binaries_are_faster() {
    // Sanity on the cost model: O3 should beat O0, and modern O3 should
    // beat GCC 4.4 O3 on a loop-heavy workload.
    let src = r#"
        int work(int n) {
            int acc = 0;
            int i;
            int j;
            for (i = 0; i < n; i++) {
                for (j = 0; j < 50; j++) {
                    acc += i * j + (acc >> 3);
                }
            }
            return acc;
        }
        int main() { return work(200) & 0xff; }
    "#;
    let cycles = |p: &Profile| {
        let img = compile(src, p).unwrap();
        let r = run_image(&img, vec![]);
        assert!(r.ok());
        r.cycles
    };
    let o0 = cycles(&Profile::gcc12_o0());
    let legacy = cycles(&Profile::gcc44_o3());
    let modern = cycles(&Profile::gcc12_o3());
    assert!(modern < legacy, "modern O3 ({modern}) should beat GCC 4.4 ({legacy})");
    assert!(legacy < o0, "legacy O3 ({legacy}) should beat O0 ({o0})");
}

#[test]
fn ground_truth_layouts_are_recorded() {
    let img = compile(
        r#"
        int leaf(int a) {
            int x;
            int buf[6];
            int *p = &x;
            *p = a;
            buf[0] = x;
            buf[5] = 2;
            return buf[0] + buf[5];
        }
        int main() { return leaf(40); }
        "#,
        &Profile::gcc12_o3(),
    )
    .unwrap();
    let leaf_addr = img.symbol("leaf").unwrap();
    let fl = img.frame_layout_at(leaf_addr).unwrap();
    // x and buf live in memory (addresses taken); offsets are negative
    // (below sp0) and buf spans 24 bytes.
    let buf = fl.vars.iter().find(|v| v.name == "buf").unwrap();
    assert_eq!(buf.size, 24);
    assert!(buf.sp0_offset < 0);
    let x = fl.vars.iter().find(|v| v.name == "x").unwrap();
    assert_eq!(x.size, 4);
    // Non-overlapping.
    assert!(x.sp0_offset + 4 <= buf.sp0_offset || buf.sp0_offset + 24 <= x.sp0_offset);
    // Behaviour check.
    let r = run_image(&img, vec![]);
    assert_eq!(r.exit_code, 42);
}

#[test]
fn stripped_images_still_run() {
    let img = compile("int main() { return 7; }", &Profile::gcc44_o3()).unwrap().stripped();
    assert!(img.symbols.is_empty());
    assert_eq!(run_image(&img, vec![]).exit_code, 7);
}

#[test]
fn deep_call_chains_with_many_args() {
    let (code, _) = run_all(
        r#"
        int f6(int a, int b, int c, int d, int e, int f) {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        int f3(int a, int b, int c) {
            return f6(a, b, c, a + 1, b + 1, c + 1);
        }
        int main() { return f3(1, 2, 3); }
        "#,
        b"",
    );
    assert_eq!(code, 1 + 4 + 9 + 8 + 15 + 24);
}

#[test]
fn nested_struct_array_mix() {
    let (code, _) = run_all(
        r#"
        struct inner { int vals[3]; int tag; };
        struct outer { struct inner a; struct inner b; };
        int main() {
            struct outer o;
            int i;
            for (i = 0; i < 3; i++) {
                o.a.vals[i] = i + 1;
                o.b.vals[i] = (i + 1) * 10;
            }
            o.a.tag = 100;
            o.b.tag = 200;
            return o.a.vals[0] + o.a.vals[2] + o.b.vals[1] + o.a.tag + o.b.tag;
        }
        "#,
        b"",
    );
    assert_eq!(code, 1 + 3 + 20 + 300);
}
