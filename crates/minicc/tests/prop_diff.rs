//! Property test: randomly generated mini-C programs behave identically
//! under every compiler profile. This is the cross-vintage equivalence the
//! whole evaluation rests on — optimization levels may change *cycles*,
//! never *results*.
//!
//! The programs come from `wyt-testkit`'s structured generator (loops,
//! helpers, arrays, ternaries, division/remainder by constants, I/O), and
//! counterexamples shrink structurally before being reported with their
//! seed.

use wyt_emu::run_image;
use wyt_minicc::{compile, Profile};
use wyt_testkit::progen::{gen_prog, render, shrink_prog};
use wyt_testkit::prop::{check, Config};

#[test]
fn profiles_agree_on_random_programs() {
    check("profiles_agree_on_random_programs", &Config::cases(32), gen_prog, shrink_prog, |p| {
        let src = render(p);
        let mut reference: Option<(i32, Vec<u8>)> = None;
        for profile in [
            Profile::gcc12_o3(),
            Profile::gcc12_o0(),
            Profile::clang16_o3(),
            Profile::gcc44_o3(),
            Profile::gcc44_o3_nopic(),
        ] {
            let img = compile(&src, &profile)
                .map_err(|e| format!("{} failed to compile:\n{src}\n{e}", profile.name))?;
            let r = run_image(&img, p.input.clone());
            if !r.ok() {
                return Err(format!("{}: trap {:?}\n{src}", profile.name, r.trap));
            }
            match &reference {
                None => reference = Some((r.exit_code, r.output)),
                Some((code, out)) => {
                    if r.exit_code != *code || &r.output != out {
                        return Err(format!(
                            "{} disagrees: exit {} vs {}, output {:?} vs {:?}\n{src}",
                            profile.name,
                            r.exit_code,
                            code,
                            String::from_utf8_lossy(&r.output),
                            String::from_utf8_lossy(out),
                        ));
                    }
                }
            }
        }
        Ok(())
    });
}
