//! Property test: randomly generated mini-C programs behave identically
//! under every compiler profile. This is the cross-vintage equivalence the
//! whole evaluation rests on — optimization levels may change *cycles*,
//! never *results*.

use proptest::prelude::*;
use wyt_emu::run_image;
use wyt_minicc::{compile, Profile};

#[derive(Debug, Clone)]
enum E {
    Num(i32),
    Var(u8),
    Bin(&'static str, Box<E>, Box<E>),
    Cmp(&'static str, Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
    DivConst(Box<E>, i32),
}

fn render(e: &E, nvars: usize) -> String {
    match e {
        E::Num(n) => format!("{n}"),
        E::Var(v) => format!("v{}", *v as usize % nvars),
        E::Bin(op, a, b) => {
            let (a, b) = (render(a, nvars), render(b, nvars));
            match *op {
                "<<" | ">>" => format!("(({a}) {op} (({b}) & 7))"),
                _ => format!("(({a}) {op} ({b}))"),
            }
        }
        E::Cmp(op, a, b) => format!("(({}) {op} ({}))", render(a, nvars), render(b, nvars)),
        E::Ternary(c, a, b) => {
            format!("(({}) ? ({}) : ({}))", render(c, nvars), render(a, nvars), render(b, nvars))
        }
        E::DivConst(a, c) => format!("(({}) / {})", render(a, nvars), (*c).max(1)),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-100i32..100).prop_map(E::Num), any::<u8>().prop_map(E::Var)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>")
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            (
                prop_oneof![Just("<"), Just("<="), Just("=="), Just("!="), Just(">")],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| E::Cmp(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| E::Ternary(Box::new(c), Box::new(a), Box::new(b))),
            (inner, 1i32..16).prop_map(|(a, c)| E::DivConst(Box::new(a), c)),
        ]
    })
}

#[derive(Debug, Clone)]
struct Prog {
    nvars: usize,
    inits: Vec<E>,
    updates: Vec<(u8, E)>,
    loop_n: u8,
    loop_update: (u8, E),
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    (
        2usize..5,
        proptest::collection::vec(arb_expr(), 2..5),
        proptest::collection::vec((any::<u8>(), arb_expr()), 1..6),
        1u8..20,
        (any::<u8>(), arb_expr()),
    )
        .prop_map(|(nvars, inits, updates, loop_n, loop_update)| Prog {
            nvars,
            inits,
            updates,
            loop_n,
            loop_update,
        })
}

fn render_prog(p: &Prog) -> String {
    let mut s = String::from("int main() {\n");
    for v in 0..p.nvars {
        let init = p.inits.get(v).map(|e| render(e, p.nvars)).unwrap_or_else(|| "0".into());
        // Initializers may reference uninitialized variables in C; keep it
        // defined by initializing in order with previously defined vars
        // only (render maps all vars, so just zero-init first).
        let _ = init;
        s += &format!("    int v{v} = {};\n", v as i32 + 1);
    }
    for (i, e) in p.inits.iter().enumerate() {
        let v = i % p.nvars;
        s += &format!("    v{v} = {};\n", render(e, p.nvars));
    }
    for (v, e) in &p.updates {
        s += &format!("    v{} = {};\n", *v as usize % p.nvars, render(e, p.nvars));
    }
    s += &format!("    {{\n        int i;\n        for (i = 0; i < {}; i++) {{\n", p.loop_n);
    s += &format!(
        "            v{} += {} + i;\n        }}\n    }}\n",
        p.loop_update.0 as usize % p.nvars,
        render(&p.loop_update.1, p.nvars)
    );
    s += "    {\n        int acc = 0;\n";
    for v in 0..p.nvars {
        s += &format!("        acc = acc * 31 + v{v};\n");
    }
    s += "        return acc & 0x7f;\n    }\n}\n";
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn profiles_agree_on_random_programs(p in arb_prog()) {
        let src = render_prog(&p);
        let mut reference: Option<i32> = None;
        for profile in [
            Profile::gcc12_o3(),
            Profile::gcc12_o0(),
            Profile::clang16_o3(),
            Profile::gcc44_o3(),
        ] {
            let img = compile(&src, &profile)
                .unwrap_or_else(|e| panic!("{}:\n{src}\n{e}", profile.name));
            let r = run_image(&img, vec![]);
            prop_assert!(r.ok(), "{}: trap {:?}\n{src}", profile.name, r.trap);
            match reference {
                None => reference = Some(r.exit_code),
                Some(code) => prop_assert_eq!(
                    r.exit_code, code,
                    "{} disagrees\n{}", profile.name, src
                ),
            }
        }
    }
}
