//! Semantic analysis: name resolution, struct layout, typing, and
//! desugaring into a typed HIR that the code generator consumes.
//!
//! The HIR makes every memory access explicit (`Load`, `Target::Mem`),
//! scales pointer arithmetic, decays arrays, and resolves calls to user
//! functions, externals, or indirect targets.

use crate::ast::{self, Expr, Init, Stmt, TypeName, Unit};
use std::collections::HashMap;
use std::fmt;

/// A semantic error.
#[derive(Debug, Clone)]
pub struct SemaError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SemaError {}

type SResult<T> = Result<T, SemaError>;

fn err<T>(msg: impl Into<String>) -> SResult<T> {
    Err(SemaError { msg: msg.into() })
}

/// A resolved type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit signed integer.
    Int,
    /// 8-bit signed integer.
    Char,
    /// 16-bit signed integer.
    Short,
    /// No value.
    Void,
    /// Pointer.
    Ptr(Box<Ty>),
    /// Fixed-size array.
    Array(Box<Ty>, u32),
    /// Struct by index into [`Program::structs`].
    Struct(usize),
}

impl Ty {
    /// Size in bytes (structs resolved through `structs`).
    pub fn size(&self, structs: &[StructTy]) -> u32 {
        match self {
            Ty::Int | Ty::Ptr(_) => 4,
            Ty::Char => 1,
            Ty::Short => 2,
            Ty::Void => 0,
            Ty::Array(t, n) => t.size(structs) * n,
            Ty::Struct(i) => structs[*i].size,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, structs: &[StructTy]) -> u32 {
        match self {
            Ty::Int | Ty::Ptr(_) => 4,
            Ty::Char => 1,
            Ty::Short => 2,
            Ty::Void => 1,
            Ty::Array(t, _) => t.align(structs),
            Ty::Struct(i) => structs[*i].align,
        }
    }

    /// `true` for pointer or array types.
    pub fn is_ptr_like(&self) -> bool {
        matches!(self, Ty::Ptr(_) | Ty::Array(..))
    }

    /// Element type of a pointer or array.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            Ty::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay (identity for other types).
    pub fn decayed(&self) -> Ty {
        match self {
            Ty::Array(t, _) => Ty::Ptr(t.clone()),
            other => other.clone(),
        }
    }

    /// `true` for scalar value types (fits a register).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Char | Ty::Short | Ty::Ptr(_))
    }
}

/// A laid-out struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset within the struct.
    pub offset: u32,
}

/// A laid-out struct type.
#[derive(Debug, Clone)]
pub struct StructTy {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size (padded to alignment).
    pub size: u32,
    /// Alignment.
    pub align: u32,
}

/// A global variable, laid out in the data segment.
#[derive(Debug, Clone)]
pub struct GlobalVar {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Byte offset within [`Program::global_data`].
    pub data_off: u32,
}

/// A local variable or parameter.
#[derive(Debug, Clone)]
pub struct Local {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Whether the variable's address escapes into a pointer (`&x`, arrays,
    /// structs). Address-taken locals must live in memory.
    pub addr_taken: bool,
}

/// Binary operator in the HIR (all 32-bit, signed where it matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BK {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
}

/// Comparison operator (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CK {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Assignment / read target.
#[derive(Debug, Clone)]
pub enum Target {
    /// A local by index.
    Local(usize),
    /// A parameter by index.
    Param(usize),
    /// Memory at a computed address with the given access type.
    Mem(Box<TExpr>, Ty),
}

/// Call target.
#[derive(Debug, Clone)]
pub enum Callee {
    /// User function by index.
    Func(usize),
    /// External (emulated libc) function by name.
    Ext(String),
    /// Indirect call through a code-address value.
    Ind(Box<TExpr>),
}

/// A typed expression.
#[derive(Debug, Clone)]
pub struct TExpr {
    /// Result type. Array- and struct-typed expressions evaluate to their
    /// *address* (aggregates are address-valued by convention).
    pub ty: Ty,
    /// Node kind.
    pub kind: TK,
}

/// Typed expression kinds.
#[derive(Debug, Clone)]
pub enum TK {
    /// Integer constant.
    Const(i32),
    /// Address of a byte offset in the data segment (string literals).
    DataAddr(u32),
    /// Address of a global.
    GlobalAddr(usize),
    /// Address of a local slot.
    LocalAddr(usize),
    /// Address of a parameter slot.
    ParamAddr(usize),
    /// Code address of a user function.
    FuncAddr(usize),
    /// Read a scalar local.
    ReadLocal(usize),
    /// Read a scalar parameter.
    ReadParam(usize),
    /// Binary arithmetic (pointer scaling already applied).
    Bin(BK, Box<TExpr>, Box<TExpr>),
    /// Comparison producing 0/1.
    Cmp(CK, Box<TExpr>, Box<TExpr>),
    /// Short-circuit `&&`.
    LogAnd(Box<TExpr>, Box<TExpr>),
    /// Short-circuit `||`.
    LogOr(Box<TExpr>, Box<TExpr>),
    /// `!e`.
    LogNot(Box<TExpr>),
    /// `-e`.
    Neg(Box<TExpr>),
    /// `~e`.
    BitNot(Box<TExpr>),
    /// `c ? a : b`.
    Cond(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// Load a scalar of the given access type from an address.
    Load(Box<TExpr>, Ty),
    /// Assignment; evaluates to the stored value. `op` marks compound
    /// assignment.
    Assign {
        /// Where to store.
        target: Target,
        /// Compound operator, if any.
        op: Option<BK>,
        /// Right-hand side.
        rhs: Box<TExpr>,
    },
    /// `++`/`--` on a target; `delta` is 1 or the pointee size.
    IncDec {
        /// Where to bump.
        target: Target,
        /// Increment (vs decrement).
        inc: bool,
        /// Prefix form (result is new value).
        pre: bool,
        /// Step magnitude.
        delta: i32,
    },
    /// Function call.
    Call {
        /// Callee.
        callee: Callee,
        /// Arguments (scalars; aggregates are passed by pointer in this
        /// language).
        args: Vec<TExpr>,
    },
    /// Copy `size` bytes from `src` to `dst` (struct assignment).
    StructCopy {
        /// Destination address.
        dst: Box<TExpr>,
        /// Source address.
        src: Box<TExpr>,
        /// Byte count.
        size: u32,
    },
    /// Evaluate `effects` left to right for their side effects, then yield
    /// the last expression (introduced by the inliner; like C's comma).
    Seq(Vec<TExpr>, Box<TExpr>),
    /// Narrowing conversion (sign-extend the low bytes of the operand).
    Conv {
        /// Target scalar type.
        to: Ty,
        /// Operand.
        e: Box<TExpr>,
    },
}

/// A typed statement.
#[derive(Debug, Clone)]
pub enum TStmt {
    /// Evaluate for side effects.
    Expr(TExpr),
    /// `if`.
    If(TExpr, Vec<TStmt>, Vec<TStmt>),
    /// `while`.
    While(TExpr, Vec<TStmt>),
    /// `do..while`.
    DoWhile(Vec<TStmt>, TExpr),
    /// `for`.
    For(Option<Box<TStmt>>, Option<TExpr>, Option<TExpr>, Vec<TStmt>),
    /// `switch`.
    Switch(TExpr, Vec<(Option<i32>, Vec<TStmt>)>),
    /// `return`.
    Return(Option<TExpr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Nested scope (already flattened for locals).
    Block(Vec<TStmt>),
    /// Nothing.
    Nop,
}

/// A typed function.
#[derive(Debug, Clone)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Internal linkage.
    pub is_static: bool,
    /// Return type.
    pub ret: Ty,
    /// Parameters.
    pub params: Vec<Local>,
    /// Locals (flattened across scopes; unique per declaration).
    pub locals: Vec<Local>,
    /// Body.
    pub body: Vec<TStmt>,
}

/// A fully analyzed program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Struct types.
    pub structs: Vec<StructTy>,
    /// Globals.
    pub globals: Vec<GlobalVar>,
    /// Initial data segment contents (globals + string literals).
    pub global_data: Vec<u8>,
    /// Functions.
    pub funcs: Vec<Func>,
}

impl Program {
    /// Size of `ty` in this program.
    pub fn size_of(&self, ty: &Ty) -> u32 {
        ty.size(&self.structs)
    }

    /// Function index by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

struct FuncSig {
    ret: Ty,
    params: Vec<Ty>,
}

struct Checker {
    structs: Vec<StructTy>,
    struct_idx: HashMap<String, usize>,
    globals: Vec<GlobalVar>,
    global_idx: HashMap<String, usize>,
    data: Vec<u8>,
    sigs: HashMap<String, (usize, FuncSig)>,
    // Current function state.
    locals: Vec<Local>,
    params: Vec<Local>,
    scopes: Vec<HashMap<String, ScopeEntry>>,
}

#[derive(Clone, Copy)]
enum ScopeEntry {
    Local(usize),
    Param(usize),
}

const EXTERNALS: &[&str] = &[
    "printf",
    "putchar",
    "puts",
    "getchar",
    "read_bytes",
    "malloc",
    "calloc",
    "free",
    "realloc",
    "memcpy",
    "memset",
    "memmove",
    "strlen",
    "strcpy",
    "strcmp",
    "strchr",
    "exit",
    "abort",
];

impl Checker {
    fn resolve_type(&mut self, t: &TypeName) -> SResult<Ty> {
        Ok(match t {
            TypeName::Int => Ty::Int,
            TypeName::Char => Ty::Char,
            TypeName::Short => Ty::Short,
            TypeName::Void => Ty::Void,
            TypeName::Struct(name) => match self.struct_idx.get(name) {
                Some(&i) => Ty::Struct(i),
                None => return err(format!("unknown struct `{name}`")),
            },
            TypeName::Ptr(inner) => {
                // Allow pointers to not-yet-complete structs.
                if let TypeName::Struct(name) = &**inner {
                    if !self.struct_idx.contains_key(name) {
                        let idx = self.structs.len();
                        self.struct_idx.insert(name.clone(), idx);
                        self.structs.push(StructTy {
                            name: name.clone(),
                            fields: Vec::new(),
                            size: 0,
                            align: 1,
                        });
                    }
                }
                Ty::Ptr(Box::new(self.resolve_type(inner)?))
            }
        })
    }

    fn layout_struct(&mut self, def: &ast::StructDef) -> SResult<()> {
        let idx = match self.struct_idx.get(&def.name) {
            Some(&i) => i,
            None => {
                let i = self.structs.len();
                self.struct_idx.insert(def.name.clone(), i);
                self.structs.push(StructTy {
                    name: def.name.clone(),
                    fields: Vec::new(),
                    size: 0,
                    align: 1,
                });
                i
            }
        };
        let mut fields = Vec::new();
        let mut off = 0u32;
        let mut align = 1u32;
        for (tname, fname, arr) in &def.fields {
            let mut ty = self.resolve_type(tname)?;
            if let Some(n) = arr {
                ty = Ty::Array(Box::new(ty), *n);
            }
            let fa = ty.align(&self.structs);
            let fs = ty.size(&self.structs);
            off = (off + fa - 1) & !(fa - 1);
            fields.push(Field { name: fname.clone(), ty, offset: off });
            off += fs;
            align = align.max(fa);
        }
        let size = (off + align - 1) & !(align - 1);
        let s = &mut self.structs[idx];
        if !s.fields.is_empty() {
            return err(format!("struct `{}` defined twice", def.name));
        }
        s.fields = fields;
        s.size = size.max(1);
        s.align = align;
        Ok(())
    }

    fn add_string(&mut self, s: &[u8]) -> u32 {
        let off = self.data.len() as u32;
        self.data.extend_from_slice(s);
        self.data.push(0);
        off
    }

    fn layout_global(&mut self, g: &ast::GlobalDef) -> SResult<()> {
        let mut ty = self.resolve_type(&g.ty)?;
        if let Some(n) = g.array {
            ty = Ty::Array(Box::new(ty), n);
        }
        let align = ty.align(&self.structs).max(4);
        while self.data.len() as u32 % align != 0 {
            self.data.push(0);
        }
        let data_off = self.data.len() as u32;
        let size = ty.size(&self.structs);
        let mut bytes = vec![0u8; size as usize];
        match &g.init {
            None => {}
            Some(Init::Num(n)) => {
                let elem = ty.clone();
                write_scalar(&mut bytes, 0, *n, &elem, &self.structs)?;
            }
            Some(Init::List(list)) => {
                let elem = match &ty {
                    Ty::Array(e, n) => {
                        if list.len() as u32 > *n {
                            return err(format!("too many initializers for `{}`", g.name));
                        }
                        (**e).clone()
                    }
                    _ => return err(format!("list initializer for non-array `{}`", g.name)),
                };
                let es = elem.size(&self.structs);
                for (i, v) in list.iter().enumerate() {
                    write_scalar(&mut bytes, i as u32 * es, *v, &elem, &self.structs)?;
                }
            }
            Some(Init::Str(s)) => match &ty {
                Ty::Array(e, n) if **e == Ty::Char => {
                    if s.len() as u32 + 1 > *n {
                        return err(format!("string too long for `{}`", g.name));
                    }
                    bytes[..s.len()].copy_from_slice(s);
                }
                Ty::Ptr(e) if **e == Ty::Char => {
                    // Pointer to a string literal: emit the literal first,
                    // then point at it. The literal lands *before* this
                    // global's slot, so pre-reserve.
                    let lit = self.add_string(s);
                    // data grew; recompute our slot at the (new) end.
                    let align2 = 4;
                    while self.data.len() as u32 % align2 != 0 {
                        self.data.push(0);
                    }
                    let slot = self.data.len() as u32;
                    let addr = wyt_isa::image::DATA_BASE + lit;
                    self.data.extend_from_slice(&addr.to_le_bytes());
                    self.globals.push(GlobalVar { name: g.name.clone(), ty, data_off: slot });
                    self.global_idx.insert(g.name.clone(), self.globals.len() - 1);
                    return Ok(());
                }
                _ => return err(format!("string initializer for non-char `{}`", g.name)),
            },
        }
        self.data.extend_from_slice(&bytes);
        self.globals.push(GlobalVar { name: g.name.clone(), ty, data_off });
        self.global_idx.insert(g.name.clone(), self.globals.len() - 1);
        Ok(())
    }

    // ---- function bodies ----

    fn lookup(&self, name: &str) -> Option<ScopeEntry> {
        for scope in self.scopes.iter().rev() {
            if let Some(e) = scope.get(name) {
                return Some(*e);
            }
        }
        None
    }

    fn declare_local(&mut self, name: &str, ty: Ty) -> usize {
        let idx = self.locals.len();
        let aggregate = !ty.is_scalar();
        self.locals.push(Local { name: name.to_string(), ty, addr_taken: aggregate });
        self.scopes.last_mut().expect("scope").insert(name.to_string(), ScopeEntry::Local(idx));
        idx
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> SResult<Vec<TStmt>> {
        stmts.iter().map(|s| self.check_stmt(s)).collect()
    }

    fn check_stmt(&mut self, s: &Stmt) -> SResult<TStmt> {
        Ok(match s {
            Stmt::Empty => TStmt::Nop,
            Stmt::Expr(e) => TStmt::Expr(self.check_expr(e)?),
            Stmt::Decl { ty, name, array, init } => {
                let mut t = self.resolve_type(ty)?;
                if let Some(n) = array {
                    t = Ty::Array(Box::new(t), *n);
                }
                let idx = self.declare_local(name, t.clone());
                match init {
                    None => TStmt::Nop,
                    Some(e) => {
                        let rhs = self.check_expr(e)?;
                        if t.is_scalar() {
                            let rhs = self.coerce_store(rhs, &t);
                            TStmt::Expr(TExpr {
                                ty: t,
                                kind: TK::Assign {
                                    target: Target::Local(idx),
                                    op: None,
                                    rhs: Box::new(rhs),
                                },
                            })
                        } else {
                            return err(format!(
                                "aggregate initializer for local `{name}` unsupported"
                            ));
                        }
                    }
                }
            }
            Stmt::If(c, t, e) => {
                let c = self.check_expr(c)?;
                self.scopes.push(HashMap::new());
                let t = vec![self.check_stmt(t)?];
                self.scopes.pop();
                let e = match e {
                    Some(e) => {
                        self.scopes.push(HashMap::new());
                        let r = vec![self.check_stmt(e)?];
                        self.scopes.pop();
                        r
                    }
                    None => Vec::new(),
                };
                TStmt::If(c, t, e)
            }
            Stmt::While(c, body) => {
                let c = self.check_expr(c)?;
                self.scopes.push(HashMap::new());
                let body = vec![self.check_stmt(body)?];
                self.scopes.pop();
                TStmt::While(c, body)
            }
            Stmt::DoWhile(body, c) => {
                self.scopes.push(HashMap::new());
                let body = vec![self.check_stmt(body)?];
                self.scopes.pop();
                TStmt::DoWhile(body, self.check_expr(c)?)
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                let init = match init {
                    Some(s) => Some(Box::new(self.check_stmt(s)?)),
                    None => None,
                };
                let cond = cond.as_ref().map(|c| self.check_expr(c)).transpose()?;
                let step = step.as_ref().map(|c| self.check_expr(c)).transpose()?;
                let body = vec![self.check_stmt(body)?];
                self.scopes.pop();
                TStmt::For(init, cond, step, body)
            }
            Stmt::Switch(scrut, arms) => {
                let scrut = self.check_expr(scrut)?;
                let mut tarms = Vec::new();
                for (label, body) in arms {
                    self.scopes.push(HashMap::new());
                    let b = self.check_stmts(body)?;
                    self.scopes.pop();
                    tarms.push((*label, b));
                }
                TStmt::Switch(scrut, tarms)
            }
            Stmt::Return(v) => TStmt::Return(v.as_ref().map(|e| self.check_expr(e)).transpose()?),
            Stmt::Break => TStmt::Break,
            Stmt::Continue => TStmt::Continue,
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                let b = self.check_stmts(body)?;
                self.scopes.pop();
                TStmt::Block(b)
            }
        })
    }

    /// Apply C assignment semantics for narrow types: storing to char/short
    /// truncates; reading back sign-extends. For register-allocated locals
    /// the code generator relies on the `Conv` node emitted here.
    fn coerce_store(&self, rhs: TExpr, to: &Ty) -> TExpr {
        match to {
            Ty::Char | Ty::Short => {
                TExpr { ty: to.clone(), kind: TK::Conv { to: to.clone(), e: Box::new(rhs) } }
            }
            _ => rhs,
        }
    }

    /// Compute the lvalue target of an expression.
    fn check_target(&mut self, e: &Expr) -> SResult<(Target, Ty)> {
        match e {
            Expr::Ident(name) => match self.lookup(name) {
                Some(ScopeEntry::Local(i)) => {
                    let ty = self.locals[i].ty.clone();
                    if ty.is_scalar() {
                        Ok((Target::Local(i), ty))
                    } else {
                        err(format!("cannot assign aggregate `{name}` directly"))
                    }
                }
                Some(ScopeEntry::Param(i)) => {
                    let ty = self.params[i].ty.clone();
                    Ok((Target::Param(i), ty))
                }
                None => match self.global_idx.get(name) {
                    Some(&gi) => {
                        let ty = self.globals[gi].ty.clone();
                        if !ty.is_scalar() {
                            return err(format!("cannot assign aggregate global `{name}`"));
                        }
                        let addr =
                            TExpr { ty: Ty::Ptr(Box::new(ty.clone())), kind: TK::GlobalAddr(gi) };
                        Ok((Target::Mem(Box::new(addr), ty.clone()), ty))
                    }
                    None => err(format!("unknown variable `{name}`")),
                },
            },
            _ => {
                // General lvalue: compute its address.
                let (addr, ty) = self.lvalue_addr(e)?;
                if !ty.is_scalar() {
                    return err("cannot assign to aggregate lvalue".to_string());
                }
                Ok((Target::Mem(Box::new(addr), ty.clone()), ty))
            }
        }
    }

    /// Compute the address of an lvalue expression, marking locals as
    /// address-taken.
    fn lvalue_addr(&mut self, e: &Expr) -> SResult<(TExpr, Ty)> {
        match e {
            Expr::Ident(name) => match self.lookup(name) {
                Some(ScopeEntry::Local(i)) => {
                    self.locals[i].addr_taken = true;
                    let ty = self.locals[i].ty.clone();
                    Ok((TExpr { ty: Ty::Ptr(Box::new(ty.clone())), kind: TK::LocalAddr(i) }, ty))
                }
                Some(ScopeEntry::Param(i)) => {
                    self.params[i].addr_taken = true;
                    let ty = self.params[i].ty.clone();
                    Ok((TExpr { ty: Ty::Ptr(Box::new(ty.clone())), kind: TK::ParamAddr(i) }, ty))
                }
                None => match self.global_idx.get(name) {
                    Some(&gi) => {
                        let ty = self.globals[gi].ty.clone();
                        Ok((
                            TExpr { ty: Ty::Ptr(Box::new(ty.clone())), kind: TK::GlobalAddr(gi) },
                            ty,
                        ))
                    }
                    None => match self.sigs.get(name) {
                        // `&f` — address of a function.
                        Some((fi, _)) => {
                            Ok((TExpr { ty: Ty::Int, kind: TK::FuncAddr(*fi) }, Ty::Int))
                        }
                        None => err(format!("unknown variable `{name}`")),
                    },
                },
            },
            Expr::Un("*", inner) => {
                let p = self.check_expr(inner)?;
                let ty = match p.ty.elem() {
                    Some(t) => t.clone(),
                    None => return err("dereference of non-pointer"),
                };
                Ok((p, ty))
            }
            Expr::Index(a, i) => {
                let base = self.check_expr(a)?;
                let idx = self.check_expr(i)?;
                let elem = match base.ty.elem() {
                    Some(t) => t.clone(),
                    None => return err("indexing non-pointer"),
                };
                let es = elem.size(&self.structs);
                let scaled = scale(idx, es);
                let addr = TExpr {
                    ty: Ty::Ptr(Box::new(elem.clone())),
                    kind: TK::Bin(BK::Add, Box::new(base), Box::new(scaled)),
                };
                Ok((addr, elem))
            }
            Expr::Member(base, fname, arrow) => {
                let (base_addr, sty) = if *arrow {
                    let p = self.check_expr(base)?;
                    let Some(Ty::Struct(si)) = p.ty.elem().cloned().map(|t| t) else {
                        return err(format!("`->{fname}` on non-struct-pointer"));
                    };
                    (p, si)
                } else {
                    let (addr, ty) = self.lvalue_addr(base)?;
                    let Ty::Struct(si) = ty else {
                        return err(format!("`.{fname}` on non-struct"));
                    };
                    (addr, si)
                };
                let field = self.structs[sty]
                    .fields
                    .iter()
                    .find(|f| f.name == *fname)
                    .cloned()
                    .ok_or_else(|| SemaError {
                        msg: format!("no field `{fname}` in struct `{}`", self.structs[sty].name),
                    })?;
                let addr = TExpr {
                    ty: Ty::Ptr(Box::new(field.ty.clone())),
                    kind: TK::Bin(
                        BK::Add,
                        Box::new(base_addr),
                        Box::new(TExpr { ty: Ty::Int, kind: TK::Const(field.offset as i32) }),
                    ),
                };
                Ok((addr, field.ty))
            }
            other => err(format!("expression is not an lvalue: {other:?}")),
        }
    }

    fn check_expr(&mut self, e: &Expr) -> SResult<TExpr> {
        match e {
            Expr::Num(n) => Ok(TExpr { ty: Ty::Int, kind: TK::Const(*n) }),
            Expr::Str(s) => {
                let off = self.add_string(s);
                Ok(TExpr { ty: Ty::Ptr(Box::new(Ty::Char)), kind: TK::DataAddr(off) })
            }
            Expr::Ident(name) => {
                if let Some(entry) = self.lookup(name) {
                    return Ok(match entry {
                        ScopeEntry::Local(i) => {
                            let ty = self.locals[i].ty.clone();
                            match &ty {
                                Ty::Array(..) | Ty::Struct(_) => {
                                    self.locals[i].addr_taken = true;
                                    TExpr { ty: ty.clone(), kind: TK::LocalAddr(i) }
                                }
                                _ => TExpr { ty, kind: TK::ReadLocal(i) },
                            }
                        }
                        ScopeEntry::Param(i) => {
                            let ty = self.params[i].ty.clone();
                            TExpr { ty, kind: TK::ReadParam(i) }
                        }
                    });
                }
                if let Some(&gi) = self.global_idx.get(name) {
                    let ty = self.globals[gi].ty.clone();
                    return Ok(match &ty {
                        Ty::Array(..) | Ty::Struct(_) => TExpr { ty, kind: TK::GlobalAddr(gi) },
                        _ => {
                            let addr = TExpr {
                                ty: Ty::Ptr(Box::new(ty.clone())),
                                kind: TK::GlobalAddr(gi),
                            };
                            TExpr { ty: ty.clone(), kind: TK::Load(Box::new(addr), ty) }
                        }
                    });
                }
                if let Some((fi, _)) = self.sigs.get(name) {
                    return Ok(TExpr { ty: Ty::Int, kind: TK::FuncAddr(*fi) });
                }
                err(format!("unknown identifier `{name}`"))
            }
            Expr::Bin(op, a, b) => self.check_bin(op, a, b),
            Expr::Assign(op, lhs, rhs) => {
                // Struct assignment? Probe without leaking address-taken
                // marks if the probe turns out not to be a struct copy.
                if op.is_none() {
                    let saved_locals: Vec<bool> =
                        self.locals.iter().map(|l| l.addr_taken).collect();
                    let saved_params: Vec<bool> =
                        self.params.iter().map(|l| l.addr_taken).collect();
                    let probe = self.try_aggregate_addr(lhs);
                    match probe {
                        Ok((dst, ty @ Ty::Struct(_))) => {
                            let (src, sty) = self.try_aggregate_addr(rhs)?;
                            if sty != ty {
                                return err("struct assignment type mismatch");
                            }
                            let size = ty.size(&self.structs);
                            return Ok(TExpr {
                                ty: Ty::Void,
                                kind: TK::StructCopy {
                                    dst: Box::new(dst),
                                    src: Box::new(src),
                                    size,
                                },
                            });
                        }
                        _ => {
                            for (l, s) in self.locals.iter_mut().zip(saved_locals) {
                                l.addr_taken = s;
                            }
                            for (p, s) in self.params.iter_mut().zip(saved_params) {
                                p.addr_taken = s;
                            }
                        }
                    }
                }
                let (target, ty) = self.check_target(lhs)?;
                let rhs_t = self.check_expr(rhs)?;
                let bk = op.map(str_to_bk).transpose()?;
                // Pointer compound += / -= scale.
                let rhs_t = match (bk, ty.is_ptr_like()) {
                    (Some(BK::Add) | Some(BK::Sub), true) => {
                        let es = ty.elem().map(|t| t.size(&self.structs)).unwrap_or(1);
                        scale(rhs_t, es)
                    }
                    _ => rhs_t,
                };
                let rhs_t = if bk.is_none() { self.coerce_store(rhs_t, &ty) } else { rhs_t };
                Ok(TExpr { ty, kind: TK::Assign { target, op: bk, rhs: Box::new(rhs_t) } })
            }
            Expr::Un("-", e) => {
                let t = self.check_expr(e)?;
                Ok(TExpr { ty: Ty::Int, kind: TK::Neg(Box::new(t)) })
            }
            Expr::Un("!", e) => {
                let t = self.check_expr(e)?;
                Ok(TExpr { ty: Ty::Int, kind: TK::LogNot(Box::new(t)) })
            }
            Expr::Un("~", e) => {
                let t = self.check_expr(e)?;
                Ok(TExpr { ty: Ty::Int, kind: TK::BitNot(Box::new(t)) })
            }
            Expr::Un("*", inner) => {
                let (addr, ty) = self.lvalue_addr(e)?;
                let _ = inner;
                Ok(self.load_or_aggregate(addr, ty))
            }
            Expr::Un("&", inner) => {
                let (addr, ty) = self.lvalue_addr(inner)?;
                Ok(TExpr { ty: Ty::Ptr(Box::new(ty)), kind: addr.kind })
            }
            Expr::Un(op, _) => err(format!("unknown unary `{op}`")),
            Expr::IncDec { pre, inc, lv } => {
                let (target, ty) = self.check_target(lv)?;
                let delta = if ty.is_ptr_like() {
                    ty.elem().map(|t| t.size(&self.structs)).unwrap_or(1) as i32
                } else {
                    1
                };
                Ok(TExpr { ty, kind: TK::IncDec { target, inc: *inc, pre: *pre, delta } })
            }
            Expr::Call(name, args) => {
                let targs: Vec<TExpr> =
                    args.iter().map(|a| self.check_expr(a)).collect::<SResult<_>>()?;
                if let Some((fi, sig)) = self.sigs.get(name) {
                    if targs.len() != sig.params.len() {
                        return err(format!(
                            "call to `{name}`: expected {} args, got {}",
                            sig.params.len(),
                            targs.len()
                        ));
                    }
                    return Ok(TExpr {
                        ty: sig.ret.clone(),
                        kind: TK::Call { callee: Callee::Func(*fi), args: targs },
                    });
                }
                if EXTERNALS.contains(&name.as_str()) {
                    return Ok(TExpr {
                        ty: Ty::Int,
                        kind: TK::Call { callee: Callee::Ext(name.clone()), args: targs },
                    });
                }
                err(format!("unknown function `{name}`"))
            }
            Expr::ICall(f, args) => {
                let ft = self.check_expr(f)?;
                let targs: Vec<TExpr> =
                    args.iter().map(|a| self.check_expr(a)).collect::<SResult<_>>()?;
                Ok(TExpr {
                    ty: Ty::Int,
                    kind: TK::Call { callee: Callee::Ind(Box::new(ft)), args: targs },
                })
            }
            Expr::Index(..) | Expr::Member(..) => {
                let (addr, ty) = self.lvalue_addr(e)?;
                Ok(self.load_or_aggregate(addr, ty))
            }
            Expr::Ternary(c, a, b) => {
                let c = self.check_expr(c)?;
                let a = self.check_expr(a)?;
                let b = self.check_expr(b)?;
                let ty = a.ty.decayed();
                Ok(TExpr { ty, kind: TK::Cond(Box::new(c), Box::new(a), Box::new(b)) })
            }
            Expr::Cast(tname, e) => {
                let to = self.resolve_type(tname)?;
                let inner = self.check_expr(e)?;
                Ok(match to {
                    Ty::Char | Ty::Short => {
                        TExpr { ty: to.clone(), kind: TK::Conv { to, e: Box::new(inner) } }
                    }
                    other => TExpr { ty: other, kind: inner.kind },
                })
            }
            Expr::SizeofType(tname, arr) => {
                let mut ty = self.resolve_type(tname)?;
                if let Some(n) = arr {
                    ty = Ty::Array(Box::new(ty), *n);
                }
                Ok(TExpr { ty: Ty::Int, kind: TK::Const(ty.size(&self.structs) as i32) })
            }
            Expr::SizeofExpr(e) => {
                let t = self.check_expr(e)?;
                Ok(TExpr { ty: Ty::Int, kind: TK::Const(t.ty.size(&self.structs) as i32) })
            }
        }
    }

    /// Address of an aggregate-valued expression (for struct copies).
    fn try_aggregate_addr(&mut self, e: &Expr) -> SResult<(TExpr, Ty)> {
        let (addr, ty) = self.lvalue_addr(e)?;
        Ok((addr, ty))
    }

    fn load_or_aggregate(&self, addr: TExpr, ty: Ty) -> TExpr {
        match &ty {
            Ty::Array(..) | Ty::Struct(_) => TExpr { ty, kind: addr.kind },
            _ => TExpr { ty: ty.clone(), kind: TK::Load(Box::new(addr), ty) },
        }
    }

    fn check_bin(&mut self, op: &str, a: &Expr, b: &Expr) -> SResult<TExpr> {
        match op {
            "&&" => {
                let a = self.check_expr(a)?;
                let b = self.check_expr(b)?;
                return Ok(TExpr { ty: Ty::Int, kind: TK::LogAnd(Box::new(a), Box::new(b)) });
            }
            "||" => {
                let a = self.check_expr(a)?;
                let b = self.check_expr(b)?;
                return Ok(TExpr { ty: Ty::Int, kind: TK::LogOr(Box::new(a), Box::new(b)) });
            }
            "==" | "!=" | "<" | "<=" | ">" | ">=" => {
                let a = self.check_expr(a)?;
                let b = self.check_expr(b)?;
                let ck = match op {
                    "==" => CK::Eq,
                    "!=" => CK::Ne,
                    "<" => CK::Lt,
                    "<=" => CK::Le,
                    ">" => CK::Gt,
                    _ => CK::Ge,
                };
                return Ok(TExpr { ty: Ty::Int, kind: TK::Cmp(ck, Box::new(a), Box::new(b)) });
            }
            _ => {}
        }
        let ta = self.check_expr(a)?;
        let tb = self.check_expr(b)?;
        let bk = str_to_bk(op)?;
        // Pointer arithmetic.
        if bk == BK::Add || bk == BK::Sub {
            let pa = ta.ty.is_ptr_like();
            let pb = tb.ty.is_ptr_like();
            if pa && !pb {
                let es = ta.ty.elem().map(|t| t.size(&self.structs)).unwrap_or(1);
                let ty = ta.ty.decayed();
                return Ok(TExpr { ty, kind: TK::Bin(bk, Box::new(ta), Box::new(scale(tb, es))) });
            }
            if pb && !pa && bk == BK::Add {
                let es = tb.ty.elem().map(|t| t.size(&self.structs)).unwrap_or(1);
                let ty = tb.ty.decayed();
                return Ok(TExpr { ty, kind: TK::Bin(bk, Box::new(tb), Box::new(scale(ta, es))) });
            }
            if pa && pb && bk == BK::Sub {
                let es = ta.ty.elem().map(|t| t.size(&self.structs)).unwrap_or(1).max(1);
                let diff =
                    TExpr { ty: Ty::Int, kind: TK::Bin(BK::Sub, Box::new(ta), Box::new(tb)) };
                let out = if es == 1 {
                    diff
                } else {
                    TExpr {
                        ty: Ty::Int,
                        kind: TK::Bin(
                            BK::Div,
                            Box::new(diff),
                            Box::new(TExpr { ty: Ty::Int, kind: TK::Const(es as i32) }),
                        ),
                    }
                };
                return Ok(out);
            }
        }
        let ty = if ta.ty.is_ptr_like() { ta.ty.decayed() } else { Ty::Int };
        Ok(TExpr { ty, kind: TK::Bin(bk, Box::new(ta), Box::new(tb)) })
    }
}

fn scale(e: TExpr, size: u32) -> TExpr {
    if size == 1 {
        return e;
    }
    if let TK::Const(c) = e.kind {
        return TExpr { ty: Ty::Int, kind: TK::Const(c.wrapping_mul(size as i32)) };
    }
    TExpr {
        ty: Ty::Int,
        kind: TK::Bin(
            BK::Mul,
            Box::new(e),
            Box::new(TExpr { ty: Ty::Int, kind: TK::Const(size as i32) }),
        ),
    }
}

fn str_to_bk(op: &str) -> SResult<BK> {
    Ok(match op {
        "+" => BK::Add,
        "-" => BK::Sub,
        "*" => BK::Mul,
        "/" => BK::Div,
        "%" => BK::Rem,
        "&" => BK::And,
        "|" => BK::Or,
        "^" => BK::Xor,
        "<<" => BK::Shl,
        ">>" => BK::Shr,
        other => return err(format!("unknown operator `{other}`")),
    })
}

fn write_scalar(bytes: &mut [u8], off: u32, v: i32, ty: &Ty, structs: &[StructTy]) -> SResult<()> {
    let size = ty.size(structs);
    let off = off as usize;
    match size {
        1 => bytes[off] = v as u8,
        2 => bytes[off..off + 2].copy_from_slice(&(v as u16).to_le_bytes()),
        4 => bytes[off..off + 4].copy_from_slice(&v.to_le_bytes()),
        _ => return err("unsupported initializer element"),
    }
    Ok(())
}

/// Analyze a parsed unit into a typed [`Program`].
///
/// # Errors
/// Returns a [`SemaError`] for unknown names, type misuse, or unsupported
/// constructs.
pub fn analyze(unit: &Unit) -> Result<Program, SemaError> {
    let mut c = Checker {
        structs: Vec::new(),
        struct_idx: HashMap::new(),
        globals: Vec::new(),
        global_idx: HashMap::new(),
        data: Vec::new(),
        sigs: HashMap::new(),
        locals: Vec::new(),
        params: Vec::new(),
        scopes: Vec::new(),
    };
    for s in &unit.structs {
        c.layout_struct(s)?;
    }
    for g in &unit.globals {
        c.layout_global(g)?;
    }
    // Collect signatures first so forward calls work.
    for (i, f) in unit.funcs.iter().enumerate() {
        let ret = c.resolve_type(&f.ret)?;
        let params: Vec<Ty> =
            f.params.iter().map(|(t, _)| c.resolve_type(t)).collect::<SResult<_>>()?;
        if c.sigs.insert(f.name.clone(), (i, FuncSig { ret, params })).is_some() {
            return err(format!("function `{}` defined twice", f.name));
        }
    }
    let mut funcs = Vec::new();
    for f in &unit.funcs {
        c.locals = Vec::new();
        c.params = f
            .params
            .iter()
            .map(|(t, n)| Ok(Local { name: n.clone(), ty: c.resolve_type(t)?, addr_taken: false }))
            .collect::<SResult<_>>()?;
        c.scopes = vec![HashMap::new()];
        for (i, p) in f.params.iter().enumerate() {
            c.scopes[0].insert(p.1.clone(), ScopeEntry::Param(i));
        }
        c.scopes.push(HashMap::new());
        let body = c.check_stmts(&f.body)?;
        funcs.push(Func {
            name: f.name.clone(),
            is_static: f.is_static,
            ret: c.resolve_type(&f.ret)?,
            params: std::mem::take(&mut c.params),
            locals: std::mem::take(&mut c.locals),
            body,
        });
    }
    Ok(Program { structs: c.structs, globals: c.globals, global_data: c.data, funcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn check(src: &str) -> Program {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn struct_layout_and_member_offsets() {
        let p = check(
            r#"
            struct p { char tag; int x; short s; int arr[3]; };
            int f(struct p *q) { return q->x + q->arr[2]; }
            "#,
        );
        let s = &p.structs[0];
        assert_eq!(s.fields[0].offset, 0); // tag
        assert_eq!(s.fields[1].offset, 4); // x (aligned)
        assert_eq!(s.fields[2].offset, 8); // s
        assert_eq!(s.fields[3].offset, 12); // arr
        assert_eq!(s.size, 24);
        assert_eq!(s.align, 4);
    }

    #[test]
    fn globals_are_laid_out_with_inits() {
        let p = check(
            r#"
            int a = 7;
            int arr[4] = { 1, 2, 3 };
            char msg[6] = "hey";
            "#,
        );
        assert_eq!(p.globals.len(), 3);
        let a = &p.globals[0];
        assert_eq!(
            &p.global_data[a.data_off as usize..a.data_off as usize + 4],
            &7i32.to_le_bytes()
        );
        let arr = &p.globals[1];
        let off = arr.data_off as usize;
        assert_eq!(&p.global_data[off..off + 4], &1i32.to_le_bytes());
        assert_eq!(&p.global_data[off + 8..off + 12], &3i32.to_le_bytes());
        let msg = &p.globals[2];
        assert_eq!(&p.global_data[msg.data_off as usize..msg.data_off as usize + 4], b"hey\0");
    }

    #[test]
    fn pointer_arithmetic_is_scaled() {
        let p = check("int f(int *p) { return *(p + 3); }");
        let TStmt::Return(Some(e)) = &p.funcs[0].body[0] else { panic!() };
        let TK::Load(addr, _) = &e.kind else { panic!() };
        let TK::Bin(BK::Add, _, rhs) = &addr.kind else { panic!() };
        assert!(matches!(rhs.kind, TK::Const(12)));
    }

    #[test]
    fn pointer_difference_divides() {
        let p = check("int f(int *a, int *b) { return a - b; }");
        let TStmt::Return(Some(e)) = &p.funcs[0].body[0] else { panic!() };
        assert!(matches!(&e.kind, TK::Bin(BK::Div, _, _)));
    }

    #[test]
    fn address_taken_tracking() {
        let p = check(
            r#"
            int f() {
                int x;
                int y;
                int *p = &x;
                int arr[4];
                y = 3;
                return *p + y + arr[0];
            }
            "#,
        );
        let f = &p.funcs[0];
        let find = |name: &str| f.locals.iter().find(|l| l.name == name).unwrap();
        assert!(find("x").addr_taken);
        assert!(!find("y").addr_taken);
        assert!(find("arr").addr_taken, "arrays are always memory");
        assert!(!find("p").addr_taken);
    }

    #[test]
    fn calls_resolve_to_user_ext_and_indirect() {
        let p = check(
            r#"
            int helper(int a) { return a; }
            int main() {
                int fp = (int)&helper;
                printf("%d", helper(1));
                return __icall(fp, 2);
            }
            "#,
        );
        let main = &p.funcs[1];
        // Find the call kinds in the body.
        let mut saw_ext = false;
        let mut saw_ind = false;
        fn walk(e: &TExpr, ext: &mut bool, ind: &mut bool) {
            match &e.kind {
                TK::Call { callee: Callee::Ext(_), args } => {
                    *ext = true;
                    args.iter().for_each(|a| walk(a, ext, ind));
                }
                TK::Call { callee: Callee::Ind(_), .. } => *ind = true,
                TK::Call { args, .. } => args.iter().for_each(|a| walk(a, ext, ind)),
                TK::Assign { rhs, .. } => walk(rhs, ext, ind),
                _ => {}
            }
        }
        for s in &main.body {
            match s {
                TStmt::Expr(e) => walk(e, &mut saw_ext, &mut saw_ind),
                TStmt::Return(Some(e)) => walk(e, &mut saw_ext, &mut saw_ind),
                _ => {}
            }
        }
        assert!(saw_ext && saw_ind);
    }

    #[test]
    fn errors_on_unknowns() {
        assert!(analyze(&parse("int f() { return g(); }").unwrap()).is_err());
        assert!(analyze(&parse("int f() { return x; }").unwrap()).is_err());
        // Pointers to incomplete structs are legal (C semantics); using an
        // incomplete struct by value is not.
        assert!(analyze(&parse("int f(struct b p) { return 0; }").unwrap()).is_err());
        assert!(analyze(&parse("int f(int a) { return a(); }").unwrap()).is_err());
    }

    #[test]
    fn sizeof_resolves_to_constants() {
        let p = check(
            r#"
            struct s { int a; char b; };
            int f() { int arr[5]; return sizeof(arr) + sizeof(struct s) + sizeof(int[2]); }
            "#,
        );
        let TStmt::Return(Some(e)) = &p.funcs[0].body[1] else { panic!() };
        // 20 + 8 + 8 built from constants.
        fn fold(e: &TExpr) -> i32 {
            match &e.kind {
                TK::Const(c) => *c,
                TK::Bin(BK::Add, a, b) => fold(a) + fold(b),
                _ => panic!("not constant"),
            }
        }
        assert_eq!(fold(e), 20 + 8 + 8);
    }

    #[test]
    fn char_semantics_conv_nodes() {
        let p = check("int f() { char c; c = 300; return c; }");
        let f = &p.funcs[0];
        let TStmt::Expr(e) = &f.body[1] else { panic!() };
        let TK::Assign { rhs, .. } = &e.kind else { panic!() };
        assert!(matches!(rhs.kind, TK::Conv { .. }));
    }
}
