//! Lexer for the mini-C source language.

use std::fmt;

/// A token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Num(i32),
    /// String literal (unescaped bytes, without quotes).
    Str(Vec<u8>),
    /// Character literal value.
    Char(i32),
    /// Punctuation or operator, e.g. `"+="`.
    Punct(&'static str),
    /// Keyword.
    Kw(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number `{n}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Char(c) => write!(f, "char literal `{c}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (for diagnostics).
#[derive(Debug, Clone)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "int", "char", "short", "void", "struct", "if", "else", "while", "for", "do", "switch", "case",
    "default", "return", "break", "continue", "sizeof", "static",
];

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
];

fn unescape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => other,
    }
}

/// Tokenize `src`.
///
/// # Errors
/// Returns a [`LexError`] on unterminated literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut out = Vec::new();
    'outer: while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(LexError { msg: "unterminated block comment".into(), line });
                }
                i += 2;
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match KEYWORDS.iter().find(|k| **k == word) {
                Some(k) => Tok::Kw(k),
                None => Tok::Ident(word.to_string()),
            };
            out.push(SpannedTok { tok, line });
            continue;
        }
        // Numbers (decimal and 0x hex).
        if c.is_ascii_digit() {
            let start = i;
            let mut value: i64;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] | 0x20) == b'x' {
                i += 2;
                let hstart = i;
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    i += 1;
                }
                if i == hstart {
                    return Err(LexError { msg: "empty hex literal".into(), line });
                }
                value = i64::from_str_radix(&src[hstart..i], 16).map_err(|_| LexError {
                    msg: format!("hex literal too large: {}", &src[start..i]),
                    line,
                })?;
            } else {
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                value = src[start..i].parse::<i64>().map_err(|_| LexError {
                    msg: format!("number too large: {}", &src[start..i]),
                    line,
                })?;
            }
            if value > u32::MAX as i64 {
                return Err(LexError { msg: "integer literal out of range".into(), line });
            }
            if value > i32::MAX as i64 {
                value -= 1i64 << 32;
            }
            out.push(SpannedTok { tok: Tok::Num(value as i32), line });
            continue;
        }
        // String literals.
        if c == b'"' {
            i += 1;
            let mut s = Vec::new();
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' && i + 1 < b.len() {
                    s.push(unescape(b[i + 1]));
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    s.push(b[i]);
                    i += 1;
                }
            }
            if i >= b.len() {
                return Err(LexError { msg: "unterminated string".into(), line });
            }
            i += 1;
            out.push(SpannedTok { tok: Tok::Str(s), line });
            continue;
        }
        // Character literals.
        if c == b'\'' {
            i += 1;
            let v = if i < b.len() && b[i] == b'\\' {
                let v = unescape(
                    *b.get(i + 1)
                        .ok_or(LexError { msg: "unterminated char literal".into(), line })?,
                );
                i += 2;
                v
            } else if i < b.len() {
                let v = b[i];
                i += 1;
                v
            } else {
                return Err(LexError { msg: "unterminated char literal".into(), line });
            };
            if i >= b.len() || b[i] != b'\'' {
                return Err(LexError { msg: "unterminated char literal".into(), line });
            }
            i += 1;
            out.push(SpannedTok { tok: Tok::Char(v as i32), line });
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedTok { tok: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError { msg: format!("unexpected character `{}`", c as char), line });
    }
    out.push(SpannedTok { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Kw("int"),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Num(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct(">>"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(toks("0x10"), vec![Tok::Num(16), Tok::Eof]);
        assert_eq!(toks("'a'"), vec![Tok::Char(97), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Char(10), Tok::Eof]);
        assert_eq!(toks("\"hi\\n\""), vec![Tok::Str(b"hi\n".to_vec()), Tok::Eof]);
        // 0x8899aabb wraps to a negative i32 like a C literal would.
        assert_eq!(toks("0xffffffff"), vec![Tok::Num(-1), Tok::Eof]);
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb /* block\nstill */ c").unwrap();
        let idents: Vec<(String, u32)> = ts
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999").is_err());
    }
}
