//! Compiler profiles: the knobs that make one binary look like GCC 4.4
//! output and another like Clang 16 output.
//!
//! The paper evaluates WYTIWYG on SPECint binaries built by GCC 12.2 -O3,
//! GCC 12.2 -O0, Clang 16 -O3 and GCC 4.4 -O3. Each profile below enables
//! the code-generation behaviours that distinguish those vintages *as far
//! as stack-layout recovery is concerned*: frame-pointer omission, register
//! allocation quality, operand fusion, pointer-based loop rewriting (the
//! paper's Fig. 3 hazard), tail calls, custom conventions for internal
//! functions, vectorized copies, and PIC jump tables.

/// Code generation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Human-readable name used in reports (e.g. `"GCC 12.2 -O3"`).
    pub name: &'static str,
    /// Master optimization switch.
    pub opt: bool,
    /// Maintain `ebp` as a frame pointer.
    pub frame_pointer: bool,
    /// Number of callee-saved registers available for register-allocated
    /// locals (0–3: `ebx`, `esi`, `edi`).
    pub reg_locals: u8,
    /// Fuse simple operands into ALU instructions instead of push/pop
    /// temporaries.
    pub fuse_simple_operands: bool,
    /// Fold constants and apply simple strength reduction in the HIR.
    pub const_fold: bool,
    /// Inline single-`return` functions whose body costs at most this many
    /// HIR nodes (0 disables inlining).
    pub inline_threshold: u32,
    /// Rewrite counted `for` loops over local arrays into pointer-increment
    /// loops with an end pointer (paper Fig. 3).
    pub ptr_loops: bool,
    /// Emit tail calls (`jmp` in place of `call`+`ret`) when frames allow.
    pub tail_calls: bool,
    /// Copy structs with the 8-byte `vmov` (stands in for SSE block moves).
    pub vmov_copy: bool,
    /// Pass the first two arguments of `static` functions in `ecx`/`edx`
    /// (a custom internal convention — the ABI deviation of §4.1).
    pub regparm_static: bool,
    /// Lower dense switches through jump tables.
    pub jump_tables: bool,
    /// Position independent code: jump tables hold relative entries and no
    /// absolute-address relocations are recorded.
    pub pic: bool,
}

impl Profile {
    /// GCC 12.2 `-O3`: modern, aggressive.
    pub fn gcc12_o3() -> Profile {
        Profile {
            name: "GCC 12.2 -O3",
            opt: true,
            frame_pointer: false,
            reg_locals: 3,
            fuse_simple_operands: true,
            const_fold: true,
            inline_threshold: 16,
            ptr_loops: true,
            tail_calls: true,
            vmov_copy: true,
            regparm_static: true,
            jump_tables: true,
            pic: true,
        }
    }

    /// GCC 12.2 `-O0`: everything through memory.
    pub fn gcc12_o0() -> Profile {
        Profile {
            name: "GCC 12.2 -O0",
            opt: false,
            frame_pointer: true,
            reg_locals: 0,
            fuse_simple_operands: false,
            const_fold: false,
            inline_threshold: 0,
            ptr_loops: false,
            tail_calls: false,
            vmov_copy: false,
            regparm_static: false,
            jump_tables: false,
            pic: true,
        }
    }

    /// Clang 16 `-O3`: modern with different tie-breaking than GCC 12.
    pub fn clang16_o3() -> Profile {
        Profile {
            name: "Clang 16 -O3",
            opt: true,
            frame_pointer: true, // keeps a frame pointer where GCC drops it
            reg_locals: 3,
            fuse_simple_operands: true,
            const_fold: true,
            inline_threshold: 24,
            ptr_loops: true,
            tail_calls: true,
            vmov_copy: true,
            regparm_static: false,
            jump_tables: true,
            pic: true,
        }
    }

    /// GCC 4.4 `-O3`: a 2009-era optimizer — frame pointers, a single
    /// register-allocated local, no operand fusion, index-based loops, no
    /// SSE-style copies. The paper shows WYTIWYG re-optimizes such legacy
    /// binaries by 1.22x on average.
    pub fn gcc44_o3() -> Profile {
        Profile {
            name: "GCC 4.4 -O3",
            opt: true,
            frame_pointer: true,
            reg_locals: 1,
            fuse_simple_operands: false,
            const_fold: true,
            inline_threshold: 0,
            ptr_loops: false,
            tail_calls: false,
            vmov_copy: false,
            regparm_static: false,
            jump_tables: true,
            pic: true,
        }
    }

    /// GCC 4.4 `-O3 -fno-pic`: as above with absolute jump tables (the
    /// only configuration SecondWrite-style static lifters handle).
    pub fn gcc44_o3_nopic() -> Profile {
        Profile { name: "GCC 4.4 -O3 -fno-pic", pic: false, ..Profile::gcc44_o3() }
    }

    /// All evaluation profiles in the paper's Table 1 order.
    pub fn table1() -> Vec<Profile> {
        vec![Profile::gcc12_o3(), Profile::gcc12_o0(), Profile::clang16_o3(), Profile::gcc44_o3()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_it_matters() {
        let modern = Profile::gcc12_o3();
        let legacy = Profile::gcc44_o3();
        let debug = Profile::gcc12_o0();
        assert!(!modern.frame_pointer && legacy.frame_pointer);
        assert!(modern.vmov_copy && !legacy.vmov_copy);
        assert!(modern.reg_locals > legacy.reg_locals);
        assert!(!debug.opt);
        assert!(!Profile::gcc44_o3_nopic().pic);
        assert_eq!(Profile::table1().len(), 4);
    }
}
