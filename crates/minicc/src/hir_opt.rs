//! HIR-level optimizations applied before code generation, gated by the
//! compiler profile: constant folding / strength reduction, inlining of
//! expression functions, and the index→pointer loop rewrite of the paper's
//! Figure 3.

use crate::profile::Profile;
use crate::sema::{Callee, Local, Program, TExpr, TStmt, Target, Ty, BK, CK, TK};

/// Run all profile-enabled HIR optimizations in place.
pub fn optimize(p: &mut Program, profile: &Profile) {
    if profile.inline_threshold > 0 {
        inline_expr_functions(p, profile.inline_threshold);
    }
    if profile.const_fold {
        for f in &mut p.funcs {
            for s in &mut f.body {
                fold_stmt(s);
            }
        }
    }
    if profile.ptr_loops {
        for fi in 0..p.funcs.len() {
            ptr_loops_in_func(p, fi);
        }
    }
}

// ---------- constant folding ----------

fn fold_stmt(s: &mut TStmt) {
    match s {
        TStmt::Expr(e) => fold_expr(e),
        TStmt::If(c, t, e) => {
            fold_expr(c);
            t.iter_mut().for_each(fold_stmt);
            e.iter_mut().for_each(fold_stmt);
        }
        TStmt::While(c, b) => {
            fold_expr(c);
            b.iter_mut().for_each(fold_stmt);
        }
        TStmt::DoWhile(b, c) => {
            b.iter_mut().for_each(fold_stmt);
            fold_expr(c);
        }
        TStmt::For(i, c, st, b) => {
            if let Some(i) = i {
                fold_stmt(i);
            }
            if let Some(c) = c {
                fold_expr(c);
            }
            if let Some(st) = st {
                fold_expr(st);
            }
            b.iter_mut().for_each(fold_stmt);
        }
        TStmt::Switch(e, arms) => {
            fold_expr(e);
            for (_, b) in arms {
                b.iter_mut().for_each(fold_stmt);
            }
        }
        TStmt::Return(Some(e)) => fold_expr(e),
        TStmt::Block(b) => b.iter_mut().for_each(fold_stmt),
        _ => {}
    }
}

fn fold_expr(e: &mut TExpr) {
    // Fold children first.
    match &mut e.kind {
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            fold_expr(a);
            fold_expr(b);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            fold_expr(a)
        }
        TK::Cond(c, a, b) => {
            fold_expr(c);
            fold_expr(a);
            fold_expr(b);
        }
        TK::Assign { target, rhs, .. } => {
            if let Target::Mem(addr, _) = target {
                fold_expr(addr);
            }
            fold_expr(rhs);
        }
        TK::IncDec { target: Target::Mem(addr, _), .. } => fold_expr(addr),
        TK::Call { callee, args } => {
            if let Callee::Ind(t) = callee {
                fold_expr(t);
            }
            args.iter_mut().for_each(fold_expr);
        }
        TK::StructCopy { dst, src, .. } => {
            fold_expr(dst);
            fold_expr(src);
        }
        TK::Seq(effects, last) => {
            effects.iter_mut().for_each(fold_expr);
            fold_expr(last);
        }
        _ => {}
    }

    let new_kind = match &e.kind {
        TK::Bin(op, a, b) => match (&a.kind, &b.kind) {
            (TK::Const(x), TK::Const(y)) => eval_bin(*op, *x, *y).map(TK::Const),
            (_, TK::Const(0))
                if matches!(op, BK::Add | BK::Sub | BK::Or | BK::Xor | BK::Shl | BK::Shr) =>
            {
                Some(a.kind.clone())
            }
            (TK::Const(0), _) if matches!(op, BK::Add | BK::Or | BK::Xor) => Some(b.kind.clone()),
            (_, TK::Const(1)) if matches!(op, BK::Mul | BK::Div) => Some(a.kind.clone()),
            (TK::Const(1), _) if *op == BK::Mul => Some(b.kind.clone()),
            (_, TK::Const(c)) if *op == BK::Mul && (*c as u32).is_power_of_two() && *c > 1 => {
                Some(TK::Bin(
                    BK::Shl,
                    a.clone(),
                    Box::new(TExpr {
                        ty: Ty::Int,
                        kind: TK::Const((*c as u32).trailing_zeros() as i32),
                    }),
                ))
            }
            _ => None,
        },
        TK::Cmp(op, a, b) => match (&a.kind, &b.kind) {
            (TK::Const(x), TK::Const(y)) => Some(TK::Const(eval_cmp(*op, *x, *y) as i32)),
            _ => None,
        },
        TK::Neg(a) => match &a.kind {
            TK::Const(x) => Some(TK::Const(x.wrapping_neg())),
            _ => None,
        },
        TK::BitNot(a) => match &a.kind {
            TK::Const(x) => Some(TK::Const(!x)),
            _ => None,
        },
        TK::LogNot(a) => match &a.kind {
            TK::Const(x) => Some(TK::Const((*x == 0) as i32)),
            _ => None,
        },
        TK::Cond(c, a, b) => match &c.kind {
            TK::Const(x) => Some(if *x != 0 { a.kind.clone() } else { b.kind.clone() }),
            _ => None,
        },
        TK::Conv { to, e: inner } => match (&inner.kind, to) {
            (TK::Const(x), Ty::Char) => Some(TK::Const(*x as i8 as i32)),
            (TK::Const(x), Ty::Short) => Some(TK::Const(*x as i16 as i32)),
            _ => None,
        },
        _ => None,
    };
    if let Some(k) = new_kind {
        e.kind = k;
    }
}

fn eval_bin(op: BK, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        BK::Add => a.wrapping_add(b),
        BK::Sub => a.wrapping_sub(b),
        BK::Mul => a.wrapping_mul(b),
        BK::Div => {
            if b == 0 || (a == i32::MIN && b == -1) {
                return None;
            }
            a / b
        }
        BK::Rem => {
            if b == 0 || (a == i32::MIN && b == -1) {
                return None;
            }
            a % b
        }
        BK::And => a & b,
        BK::Or => a | b,
        BK::Xor => a ^ b,
        BK::Shl => a.wrapping_shl(b as u32 & 31),
        BK::Shr => a.wrapping_shr(b as u32 & 31),
    })
}

fn eval_cmp(op: CK, a: i32, b: i32) -> bool {
    match op {
        CK::Eq => a == b,
        CK::Ne => a != b,
        CK::Lt => a < b,
        CK::Le => a <= b,
        CK::Gt => a > b,
        CK::Ge => a >= b,
    }
}

// ---------- inlining of expression functions ----------

fn expr_cost(e: &TExpr) -> u32 {
    let mut n = 1;
    visit(e, &mut |_| n += 1);
    n
}

fn visit(e: &TExpr, f: &mut impl FnMut(&TExpr)) {
    f(e);
    match &e.kind {
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            visit(a, f);
            visit(b, f);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            visit(a, f)
        }
        TK::Cond(c, a, b) => {
            visit(c, f);
            visit(a, f);
            visit(b, f);
        }
        TK::Assign { target, rhs, .. } => {
            if let Target::Mem(addr, _) = target {
                visit(addr, f);
            }
            visit(rhs, f);
        }
        TK::IncDec { target: Target::Mem(addr, _), .. } => visit(addr, f),
        TK::Call { callee, args } => {
            if let Callee::Ind(t) = callee {
                visit(t, f);
            }
            for a in args {
                visit(a, f);
            }
        }
        TK::StructCopy { dst, src, .. } => {
            visit(dst, f);
            visit(src, f);
        }
        TK::Seq(effects, last) => {
            for x in effects {
                visit(x, f);
            }
            visit(last, f);
        }
        _ => {}
    }
}

/// `Some(body)` if `f` is inlinable: a single `return expr;` with no calls,
/// no local declarations, and no address-taken parameters.
fn inlinable_body(p: &Program, fi: usize, threshold: u32) -> Option<TExpr> {
    let f = &p.funcs[fi];
    if !f.locals.is_empty() || f.params.iter().any(|l| l.addr_taken) {
        return None;
    }
    let [TStmt::Return(Some(body))] = f.body.as_slice() else {
        return None;
    };
    if expr_cost(body) > threshold {
        return None;
    }
    let mut has_call = false;
    let mut writes_param = false;
    visit(body, &mut |e| match &e.kind {
        TK::Call { .. } => has_call = true,
        TK::Assign { target: Target::Param(_), .. }
        | TK::IncDec { target: Target::Param(_), .. } => writes_param = true,
        _ => {}
    });
    if has_call || writes_param {
        return None;
    }
    Some(body.clone())
}

fn substitute_params(e: &mut TExpr, temp_base: usize) {
    match &mut e.kind {
        TK::ReadParam(i) => e.kind = TK::ReadLocal(temp_base + *i),
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            substitute_params(a, temp_base);
            substitute_params(b, temp_base);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            substitute_params(a, temp_base)
        }
        TK::Cond(c, a, b) => {
            substitute_params(c, temp_base);
            substitute_params(a, temp_base);
            substitute_params(b, temp_base);
        }
        TK::Seq(effects, last) => {
            for x in effects {
                substitute_params(x, temp_base);
            }
            substitute_params(last, temp_base);
        }
        _ => {}
    }
}

fn inline_in_expr(e: &mut TExpr, bodies: &[Option<TExpr>], locals: &mut Vec<Local>) {
    // Children first (so nested calls get inlined too).
    match &mut e.kind {
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            inline_in_expr(a, bodies, locals);
            inline_in_expr(b, bodies, locals);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            inline_in_expr(a, bodies, locals)
        }
        TK::Cond(c, a, b) => {
            inline_in_expr(c, bodies, locals);
            inline_in_expr(a, bodies, locals);
            inline_in_expr(b, bodies, locals);
        }
        TK::Assign { target, rhs, .. } => {
            if let Target::Mem(addr, _) = target {
                inline_in_expr(addr, bodies, locals);
            }
            inline_in_expr(rhs, bodies, locals);
        }
        TK::IncDec { target: Target::Mem(addr, _), .. } => inline_in_expr(addr, bodies, locals),
        TK::Call { callee, args } => {
            if let Callee::Ind(t) = callee {
                inline_in_expr(t, bodies, locals);
            }
            for a in args.iter_mut() {
                inline_in_expr(a, bodies, locals);
            }
        }
        TK::StructCopy { dst, src, .. } => {
            inline_in_expr(dst, bodies, locals);
            inline_in_expr(src, bodies, locals);
        }
        TK::Seq(effects, last) => {
            for x in effects {
                inline_in_expr(x, bodies, locals);
            }
            inline_in_expr(last, bodies, locals);
        }
        _ => {}
    }

    let TK::Call { callee: Callee::Func(fi), args } = &e.kind else {
        return;
    };
    let Some(Some(body)) = bodies.get(*fi) else {
        return;
    };
    // Bind arguments to fresh temps (evaluation order and once-only), then
    // splice the body with parameters substituted.
    let temp_base = locals.len();
    let mut effects = Vec::new();
    for (i, a) in args.iter().enumerate() {
        locals.push(Local {
            name: format!("__inl{}_{}", temp_base, i),
            ty: a.ty.decayed(),
            addr_taken: false,
        });
        effects.push(TExpr {
            ty: a.ty.decayed(),
            kind: TK::Assign {
                target: Target::Local(temp_base + i),
                op: None,
                rhs: Box::new(a.clone()),
            },
        });
    }
    let mut new_body = body.clone();
    substitute_params(&mut new_body, temp_base);
    e.kind = if effects.is_empty() { new_body.kind } else { TK::Seq(effects, Box::new(new_body)) };
}

fn inline_expr_functions(p: &mut Program, threshold: u32) {
    let bodies: Vec<Option<TExpr>> =
        (0..p.funcs.len()).map(|fi| inlinable_body(p, fi, threshold)).collect();
    for f in &mut p.funcs {
        let mut locals = std::mem::take(&mut f.locals);
        let mut body = std::mem::take(&mut f.body);
        for s in &mut body {
            inline_in_stmt(s, &bodies, &mut locals);
        }
        f.locals = locals;
        f.body = body;
    }
}

fn inline_in_stmt(s: &mut TStmt, bodies: &[Option<TExpr>], locals: &mut Vec<Local>) {
    match s {
        TStmt::Expr(e) => inline_in_expr(e, bodies, locals),
        TStmt::If(c, t, e) => {
            inline_in_expr(c, bodies, locals);
            t.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
            e.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
        }
        TStmt::While(c, b) => {
            inline_in_expr(c, bodies, locals);
            b.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
        }
        TStmt::DoWhile(b, c) => {
            b.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
            inline_in_expr(c, bodies, locals);
        }
        TStmt::For(i, c, st, b) => {
            if let Some(i) = i {
                inline_in_stmt(i, bodies, locals);
            }
            if let Some(c) = c {
                inline_in_expr(c, bodies, locals);
            }
            if let Some(st) = st {
                inline_in_expr(st, bodies, locals);
            }
            b.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
        }
        TStmt::Switch(e, arms) => {
            inline_in_expr(e, bodies, locals);
            for (_, b) in arms {
                b.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals));
            }
        }
        TStmt::Return(Some(e)) => inline_in_expr(e, bodies, locals),
        TStmt::Block(b) => b.iter_mut().for_each(|s| inline_in_stmt(s, bodies, locals)),
        _ => {}
    }
}

// ---------- index→pointer loop rewriting (paper Fig. 3) ----------

/// Count uses of local `i` in an expression, distinguishing "index into
/// `base`" uses from all others.
fn classify_index_uses(
    e: &TExpr,
    ivar: usize,
    base: &mut Option<TK>,
    ok: &mut bool,
    other: &mut u32,
) {
    // An index use is Bin(Add, <base-addr>, ReadLocal(i)) or
    // Bin(Add, <base-addr>, Bin(Mul, ReadLocal(i), Const(_))).
    if let TK::Bin(BK::Add, a, b) = &e.kind {
        let is_base = matches!(a.kind, TK::LocalAddr(_) | TK::GlobalAddr(_));
        let idx_is_i = match &b.kind {
            TK::ReadLocal(v) => *v == ivar,
            TK::Bin(BK::Mul | BK::Shl, x, s) => {
                matches!(x.kind, TK::ReadLocal(v) if v == ivar) && matches!(s.kind, TK::Const(_))
            }
            _ => false,
        };
        if is_base && idx_is_i {
            match base {
                None => *base = Some(a.kind.clone()),
                Some(prev) => {
                    // All index uses must target the same array.
                    let same = match (prev, &a.kind) {
                        (TK::LocalAddr(x), TK::LocalAddr(y)) => x == y,
                        (TK::GlobalAddr(x), TK::GlobalAddr(y)) => x == y,
                        _ => false,
                    };
                    if !same {
                        *ok = false;
                    }
                }
            }
            // Don't descend into the matched index expression.
            visit(a, &mut |_| {});
            return;
        }
    }
    match &e.kind {
        TK::ReadLocal(v) if *v == ivar => *other += 1,
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            classify_index_uses(a, ivar, base, ok, other);
            classify_index_uses(b, ivar, base, ok, other);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            classify_index_uses(a, ivar, base, ok, other)
        }
        TK::Cond(c, a, b) => {
            classify_index_uses(c, ivar, base, ok, other);
            classify_index_uses(a, ivar, base, ok, other);
            classify_index_uses(b, ivar, base, ok, other);
        }
        TK::Assign { target, rhs, .. } => {
            if let Target::Local(v) = target {
                if *v == ivar {
                    *ok = false;
                }
            }
            if let Target::Mem(addr, _) = target {
                classify_index_uses(addr, ivar, base, ok, other);
            }
            classify_index_uses(rhs, ivar, base, ok, other);
        }
        TK::IncDec { target, .. } => {
            if let Target::Local(v) = target {
                if *v == ivar {
                    *ok = false;
                }
            }
            if let Target::Mem(addr, _) = target {
                classify_index_uses(addr, ivar, base, ok, other);
            }
        }
        TK::Call { callee, args } => {
            if let Callee::Ind(t) = callee {
                classify_index_uses(t, ivar, base, ok, other);
            }
            for a in args {
                classify_index_uses(a, ivar, base, ok, other);
            }
        }
        TK::StructCopy { dst, src, .. } => {
            classify_index_uses(dst, ivar, base, ok, other);
            classify_index_uses(src, ivar, base, ok, other);
        }
        TK::Seq(effects, last) => {
            for x in effects {
                classify_index_uses(x, ivar, base, ok, other);
            }
            classify_index_uses(last, ivar, base, ok, other);
        }
        _ => {}
    }
}

fn rewrite_index_to_ptr(e: &mut TExpr, ivar: usize, pvar: usize) {
    if let TK::Bin(BK::Add, a, b) = &e.kind {
        let is_base = matches!(a.kind, TK::LocalAddr(_) | TK::GlobalAddr(_));
        let idx_is_i = match &b.kind {
            TK::ReadLocal(v) => *v == ivar,
            TK::Bin(BK::Mul | BK::Shl, x, s) => {
                matches!(x.kind, TK::ReadLocal(v) if v == ivar) && matches!(s.kind, TK::Const(_))
            }
            _ => false,
        };
        if is_base && idx_is_i {
            e.kind = TK::ReadLocal(pvar);
            return;
        }
    }
    match &mut e.kind {
        TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
            rewrite_index_to_ptr(a, ivar, pvar);
            rewrite_index_to_ptr(b, ivar, pvar);
        }
        TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
            rewrite_index_to_ptr(a, ivar, pvar)
        }
        TK::Cond(c, a, b) => {
            rewrite_index_to_ptr(c, ivar, pvar);
            rewrite_index_to_ptr(a, ivar, pvar);
            rewrite_index_to_ptr(b, ivar, pvar);
        }
        TK::Assign { target, rhs, .. } => {
            if let Target::Mem(addr, _) = target {
                rewrite_index_to_ptr(addr, ivar, pvar);
            }
            rewrite_index_to_ptr(rhs, ivar, pvar);
        }
        TK::IncDec { target: Target::Mem(addr, _), .. } => rewrite_index_to_ptr(addr, ivar, pvar),
        TK::Call { callee, args } => {
            if let Callee::Ind(t) = callee {
                rewrite_index_to_ptr(t, ivar, pvar);
            }
            for a in args {
                rewrite_index_to_ptr(a, ivar, pvar);
            }
        }
        TK::StructCopy { dst, src, .. } => {
            rewrite_index_to_ptr(dst, ivar, pvar);
            rewrite_index_to_ptr(src, ivar, pvar);
        }
        TK::Seq(effects, last) => {
            for x in effects {
                rewrite_index_to_ptr(x, ivar, pvar);
            }
            rewrite_index_to_ptr(last, ivar, pvar);
        }
        _ => {}
    }
}

fn count_local_uses_expr(e: &TExpr, ivar: usize, n: &mut u32) {
    let mut hits = 0u32;
    visit(e, &mut |x| {
        if matches!(x.kind, TK::ReadLocal(v) | TK::LocalAddr(v) if v == ivar) {
            hits += 1;
        }
        match &x.kind {
            TK::Assign { target: Target::Local(v), .. }
            | TK::IncDec { target: Target::Local(v), .. }
                if *v == ivar =>
            {
                hits += 1;
            }
            _ => {}
        }
    });
    *n += hits;
}

fn count_local_uses_stmt(s: &TStmt, ivar: usize, n: &mut u32) {
    fn ce_inner(e: &TExpr, ivar: usize, n: &mut u32) {
        count_local_uses_expr(e, ivar, n);
    }
    macro_rules! ce {
        ($e:expr) => {
            ce_inner($e, ivar, n)
        };
    }
    match s {
        TStmt::Expr(e) => ce!(e),
        TStmt::If(c, t, el) => {
            ce!(c);
            t.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
            el.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
        }
        TStmt::While(c, b) => {
            ce!(c);
            b.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
        }
        TStmt::DoWhile(b, c) => {
            b.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
            ce!(c);
        }
        TStmt::For(i, c, st, b) => {
            if let Some(i) = i {
                count_local_uses_stmt(i, ivar, n);
            }
            if let Some(c) = c {
                ce!(c);
            }
            if let Some(st) = st {
                ce!(st);
            }
            b.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
        }
        TStmt::Switch(e, arms) => {
            ce!(e);
            for (_, b) in arms {
                b.iter().for_each(|s| count_local_uses_stmt(s, ivar, n));
            }
        }
        TStmt::Return(Some(e)) => ce!(e),
        TStmt::Block(b) => b.iter().for_each(|s| count_local_uses_stmt(s, ivar, n)),
        _ => {}
    }
}

fn ptr_loops_in_func(p: &mut Program, fi: usize) {
    // Take the function body out to satisfy the borrow checker; we need
    // &mut locals alongside.
    let mut body = std::mem::take(&mut p.funcs[fi].body);
    let mut locals = std::mem::take(&mut p.funcs[fi].locals);
    let structs = p.structs.clone();
    rewrite_stmts(&mut body, &mut locals, &structs);
    p.funcs[fi].body = body;
    p.funcs[fi].locals = locals;
}

fn rewrite_stmts(
    stmts: &mut Vec<TStmt>,
    locals: &mut Vec<Local>,
    structs: &[crate::sema::StructTy],
) {
    for idx in 0..stmts.len() {
        // Recurse first.
        match &mut stmts[idx] {
            TStmt::If(_, t, e) => {
                rewrite_stmts(t, locals, structs);
                rewrite_stmts(e, locals, structs);
            }
            TStmt::While(_, b) | TStmt::DoWhile(b, _) => rewrite_stmts(b, locals, structs),
            TStmt::For(_, _, _, b) => rewrite_stmts(b, locals, structs),
            TStmt::Switch(_, arms) => {
                for (_, b) in arms {
                    rewrite_stmts(b, locals, structs);
                }
            }
            TStmt::Block(b) => rewrite_stmts(b, locals, structs),
            _ => {}
        }
        if let Some(new_stmt) = try_rewrite_for(&stmts[idx], stmts, idx, locals, structs) {
            stmts[idx] = new_stmt;
        }
    }
}

/// Match `for (i = 0; i < N; i++) body` where `i` is used only as an index
/// into one array, and rewrite to a pointer walk with an end pointer.
fn try_rewrite_for(
    s: &TStmt,
    all: &[TStmt],
    self_idx: usize,
    locals: &mut Vec<Local>,
    structs: &[crate::sema::StructTy],
) -> Option<TStmt> {
    let TStmt::For(init, Some(cond), Some(step), body) = s else {
        return None;
    };
    // init: i = 0 (as statement or decl-assign).
    let ivar = match init.as_deref() {
        Some(TStmt::Expr(TExpr {
            kind: TK::Assign { target: Target::Local(v), op: None, rhs },
            ..
        })) if matches!(rhs.kind, TK::Const(0)) => *v,
        _ => return None,
    };
    if locals[ivar].addr_taken || locals[ivar].ty != Ty::Int {
        return None;
    }
    // cond: i < Const(n).
    let TK::Cmp(CK::Lt, ci, cn) = &cond.kind else {
        return None;
    };
    if !matches!(ci.kind, TK::ReadLocal(v) if v == ivar) {
        return None;
    }
    let TK::Const(n) = cn.kind else {
        return None;
    };
    if n <= 0 {
        return None;
    }
    // step: i++ / ++i / i += 1.
    let step_ok = match &step.kind {
        TK::IncDec { target: Target::Local(v), inc: true, delta: 1, .. } => *v == ivar,
        TK::Assign { target: Target::Local(v), op: Some(BK::Add), rhs } => {
            *v == ivar && matches!(rhs.kind, TK::Const(1))
        }
        _ => false,
    };
    if !step_ok {
        return None;
    }
    // Body: all uses of i are indexes into one array.
    let mut base = None;
    let mut ok = true;
    let mut other = 0u32;
    for st in body {
        stmt_classify(st, ivar, &mut base, &mut ok, &mut other);
    }
    let Some(base_kind) = base else { return None };
    if !ok || other > 0 {
        return None;
    }
    // `i` must not be used outside this loop.
    let mut outside = 0u32;
    for (j, st) in all.iter().enumerate() {
        if j != self_idx {
            count_local_uses_stmt(st, ivar, &mut outside);
        }
    }
    if outside > 0 {
        return None;
    }
    // Element type.
    let (elem_ty, base_ty) = match &base_kind {
        TK::LocalAddr(a) => (locals[*a].ty.clone(), locals[*a].ty.clone()),
        TK::GlobalAddr(_) => return None, // keep it to locals for clarity
        _ => return None,
    };
    let Ty::Array(elem, len) = &base_ty else { return None };
    if (n as u32) > *len {
        return None;
    }
    let es = elem.size(structs);
    let _ = elem_ty;

    // New locals: p (walking pointer) and end.
    let pvar = locals.len();
    locals.push(Local { name: format!("__p{pvar}"), ty: Ty::Ptr(elem.clone()), addr_taken: false });
    let evar = locals.len();
    locals.push(Local {
        name: format!("__end{evar}"),
        ty: Ty::Ptr(elem.clone()),
        addr_taken: false,
    });

    let base_expr = |kind: TK| TExpr { ty: Ty::Ptr(elem.clone()), kind };
    let assign_local = |v: usize, rhs: TExpr| {
        TStmt::Expr(TExpr {
            ty: rhs.ty.clone(),
            kind: TK::Assign { target: Target::Local(v), op: None, rhs: Box::new(rhs) },
        })
    };

    // p = &arr[0]; end = p + n (one-past — outside the object, per Fig. 3).
    let init_p = assign_local(pvar, base_expr(base_kind.clone()));
    let end_rhs = TExpr {
        ty: Ty::Ptr(elem.clone()),
        kind: TK::Bin(
            BK::Add,
            Box::new(base_expr(base_kind)),
            Box::new(TExpr { ty: Ty::Int, kind: TK::Const(n.wrapping_mul(es as i32)) }),
        ),
    };
    let init_end = assign_local(evar, end_rhs);

    let mut new_body = body.clone();
    for st in &mut new_body {
        rewrite_stmt_index(st, ivar, pvar);
    }
    let new_cond = TExpr {
        ty: Ty::Int,
        kind: TK::Cmp(
            CK::Ne,
            Box::new(TExpr { ty: Ty::Ptr(elem.clone()), kind: TK::ReadLocal(pvar) }),
            Box::new(TExpr { ty: Ty::Ptr(elem.clone()), kind: TK::ReadLocal(evar) }),
        ),
    };
    let new_step = TExpr {
        ty: Ty::Ptr(elem.clone()),
        kind: TK::IncDec { target: Target::Local(pvar), inc: true, pre: false, delta: es as i32 },
    };
    Some(TStmt::Block(vec![
        init_p,
        init_end,
        TStmt::For(None, Some(new_cond), Some(new_step), new_body),
    ]))
}

fn stmt_classify(s: &TStmt, ivar: usize, base: &mut Option<TK>, ok: &mut bool, other: &mut u32) {
    match s {
        TStmt::Expr(e) | TStmt::Return(Some(e)) => classify_index_uses(e, ivar, base, ok, other),
        TStmt::If(c, t, e) => {
            classify_index_uses(c, ivar, base, ok, other);
            t.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
            e.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
        }
        TStmt::While(c, b) => {
            classify_index_uses(c, ivar, base, ok, other);
            b.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
        }
        TStmt::DoWhile(b, c) => {
            b.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
            classify_index_uses(c, ivar, base, ok, other);
        }
        TStmt::For(i, c, st, b) => {
            if let Some(i) = i {
                stmt_classify(i, ivar, base, ok, other);
            }
            if let Some(c) = c {
                classify_index_uses(c, ivar, base, ok, other);
            }
            if let Some(st) = st {
                classify_index_uses(st, ivar, base, ok, other);
            }
            b.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
        }
        TStmt::Switch(e, arms) => {
            classify_index_uses(e, ivar, base, ok, other);
            for (_, b) in arms {
                b.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other));
            }
        }
        TStmt::Block(b) => b.iter().for_each(|s| stmt_classify(s, ivar, base, ok, other)),
        TStmt::Break | TStmt::Continue => *ok = false, // early exits keep i live
        _ => {}
    }
}

fn rewrite_stmt_index(s: &mut TStmt, ivar: usize, pvar: usize) {
    match s {
        TStmt::Expr(e) | TStmt::Return(Some(e)) => rewrite_index_to_ptr(e, ivar, pvar),
        TStmt::If(c, t, el) => {
            rewrite_index_to_ptr(c, ivar, pvar);
            t.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
            el.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
        }
        TStmt::While(c, b) => {
            rewrite_index_to_ptr(c, ivar, pvar);
            b.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
        }
        TStmt::DoWhile(b, c) => {
            b.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
            rewrite_index_to_ptr(c, ivar, pvar);
        }
        TStmt::For(i, c, st, b) => {
            if let Some(i) = i {
                rewrite_stmt_index(i, ivar, pvar);
            }
            if let Some(c) = c {
                rewrite_index_to_ptr(c, ivar, pvar);
            }
            if let Some(st) = st {
                rewrite_index_to_ptr(st, ivar, pvar);
            }
            b.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
        }
        TStmt::Switch(e, arms) => {
            rewrite_index_to_ptr(e, ivar, pvar);
            for (_, b) in arms {
                b.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar));
            }
        }
        TStmt::Block(b) => b.iter_mut().for_each(|s| rewrite_stmt_index(s, ivar, pvar)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    fn prog(src: &str) -> Program {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn folds_constants_and_strength_reduces() {
        let mut p = prog("int f(int x) { return 2 * 3 + x * 8; }");
        optimize(&mut p, &Profile::gcc12_o3());
        let TStmt::Return(Some(e)) = &p.funcs[0].body[0] else { panic!() };
        let TK::Bin(BK::Add, a, b) = &e.kind else { panic!("{:?}", e.kind) };
        assert!(matches!(a.kind, TK::Const(6)));
        assert!(matches!(&b.kind, TK::Bin(BK::Shl, _, s) if matches!(s.kind, TK::Const(3))));
    }

    #[test]
    fn inlines_expression_functions() {
        let mut p = prog(
            r#"
            static int square(int v) { return v * v; }
            int main() { return square(7); }
            "#,
        );
        optimize(&mut p, &Profile::gcc12_o3());
        let main = p.func_index("main").unwrap();
        let TStmt::Return(Some(e)) = &p.funcs[main].body[0] else { panic!() };
        assert!(!matches!(e.kind, TK::Call { .. }), "call should be inlined: {:?}", e.kind);
        // GCC 4.4 profile does not inline.
        let mut p2 = prog(
            r#"
            static int square(int v) { return v * v; }
            int main() { return square(7); }
            "#,
        );
        optimize(&mut p2, &Profile::gcc44_o3());
        let TStmt::Return(Some(e2)) = &p2.funcs[main].body[0] else { panic!() };
        assert!(matches!(e2.kind, TK::Call { .. }));
    }

    #[test]
    fn rewrites_counted_loop_to_pointer_walk() {
        let src = r#"
            int main() {
                int arr[8];
                int i;
                int acc = 0;
                for (i = 0; i < 8; i++) arr[i] = i + 1;
                return acc;
            }
        "#;
        let mut p = prog(src);
        let before = p.funcs[0].locals.len();
        optimize(&mut p, &Profile::gcc12_o3());
        // The rewrite should *not* fire: `arr[i] = i + 1` uses i outside the
        // index too.
        assert_eq!(p.funcs[0].locals.len(), before);

        let src2 = r#"
            int main() {
                int arr[8];
                int i;
                for (i = 0; i < 8; i++) arr[i] = 5;
                return arr[3];
            }
        "#;
        let mut p2 = prog(src2);
        let before2 = p2.funcs[0].locals.len();
        optimize(&mut p2, &Profile::gcc12_o3());
        assert_eq!(p2.funcs[0].locals.len(), before2 + 2, "p and end added");
        // GCC 4.4 keeps the index loop.
        let mut p3 = prog(src2);
        optimize(&mut p3, &Profile::gcc44_o3());
        assert_eq!(p3.funcs[0].locals.len(), before2);
    }
}
