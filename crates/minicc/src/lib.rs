//! # wyt-minicc — the workload compiler
//!
//! A mini-C compiler producing [`wyt_isa::image::Image`] binaries. Its
//! purpose in the WYTIWYG reproduction is to stand in for the real-world
//! toolchains the paper evaluates against: the same source compiles under
//! four [`Profile`]s — GCC 12.2 -O3 / -O0, Clang 16 -O3, GCC 4.4 -O3 —
//! that differ exactly where stack-layout recovery cares (frame pointers,
//! register allocation, pointer loops, tail calls, custom conventions,
//! vectorized copies, PIC jump tables).
//!
//! Every produced image carries a ground-truth
//! [`wyt_isa::image::FrameLayout`] sidecar, the analogue of LLVM's Stack
//! Frame Layout analysis used by the paper's §6.3 accuracy evaluation. The
//! recompiler consumes [`Image::stripped`](wyt_isa::image::Image::stripped)
//! copies; only the evaluation reads the sidecar.
//!
//! ```
//! use wyt_minicc::{compile, Profile};
//! let image = compile("int main() { return 41 + 1; }", &Profile::gcc12_o3())?;
//! let result = wyt_emu::run_image(&image, Vec::new());
//! assert_eq!(result.exit_code, 42);
//! # Ok::<(), wyt_minicc::CompileError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod hir_opt;
pub mod lex;
pub mod parse;
pub mod profile;
pub mod sema;

pub use codegen::CodegenError;
pub use parse::ParseError;
pub use profile::Profile;
pub use sema::SemaError;

use std::fmt;
use wyt_isa::image::Image;

/// Any front-to-back compilation failure.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Sema(SemaError),
    /// Code generation failed.
    Codegen(CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
            CompileError::Codegen(e) => write!(f, "codegen error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<SemaError> for CompileError {
    fn from(e: SemaError) -> CompileError {
        CompileError::Sema(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> CompileError {
        CompileError::Codegen(e)
    }
}

/// Compile mini-C source to an executable image under `profile`.
///
/// # Errors
/// Returns a [`CompileError`] describing the first failure in any stage.
pub fn compile(src: &str, profile: &Profile) -> Result<Image, CompileError> {
    let unit = parse::parse(src)?;
    let mut program = sema::analyze(&unit)?;
    hir_opt::optimize(&mut program, profile);
    Ok(codegen::generate(&program, profile)?)
}
