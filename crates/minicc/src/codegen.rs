//! Machine-code generation from the typed HIR, parameterized by a
//! [`Profile`].
//!
//! The generator produces exactly the machine idioms WYTIWYG must cope
//! with: `sp0`-relative frames with or without a frame pointer, caller
//! argument pushes, callee-saved register spills, register-allocated locals
//! in callee-saved registers, custom `regparm` conventions for `static`
//! functions, tail calls, jump tables (absolute or PIC-relative), `vmov`
//! block copies, and sub-register writes for `char`/`short`.
//!
//! It also emits the ground-truth [`FrameLayout`] sidecar for every
//! function (the analogue of LLVM's Stack Frame Layout analysis).

use crate::profile::Profile;
use crate::sema::{Callee, Program, TExpr, TStmt, Target, Ty, BK, CK, TK};
use std::fmt;
use wyt_isa::asm::{Asm, Label};
use wyt_isa::image::{CodeReloc, FrameLayout, GtVar, GtVarKind, Image, Symbol, DATA_BASE};
use wyt_isa::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};

/// A code generation failure.
#[derive(Debug, Clone)]
pub struct CodegenError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CodegenError {}

type CResult<T> = Result<T, CodegenError>;

fn cerr<T>(msg: impl Into<String>) -> CResult<T> {
    Err(CodegenError { msg: msg.into() })
}

/// Where a local or parameter lives at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// A callee-saved register.
    Reg(Reg),
    /// Byte offset within the locals region (lowest address = 0).
    Slot(u32),
}

#[derive(Debug, Clone, Copy)]
enum ParamHome {
    /// `sp0 + 4 + 4*index` — the caller-pushed slot.
    Stack(u32),
    /// Register-allocated (promoted or regparm).
    Reg(Reg),
    /// Spilled regparm argument living in the locals region.
    Slot(u32),
}

struct JumpTable {
    data_off: u32,
    labels: Vec<Label>,
    relative: bool,
}

struct Codegen<'p> {
    prog: &'p Program,
    profile: &'p Profile,
    asm: Asm,
    func_labels: Vec<Label>,
    imports: Vec<String>,
    data: Vec<u8>,
    jump_tables: Vec<JumpTable>,
    frames: Vec<FrameLayout>,
    // Current function state.
    cur: usize,
    local_home: Vec<Home>,
    param_home: Vec<ParamHome>,
    locals_size: u32,
    saved: Vec<Reg>,
    has_frame_ptr: bool,
    depth: u32,
    epilogue: Option<Label>,
    break_stack: Vec<Label>,
    continue_stack: Vec<Label>,
    stack_param_count: u32,
    regparm_count: u32,
}

const EAX: Operand = Operand::Reg(Reg::Eax);
const ECX: Operand = Operand::Reg(Reg::Ecx);
const EDX: Operand = Operand::Reg(Reg::Edx);

fn movd(dst: Operand, src: Operand) -> Inst {
    Inst::Mov { size: Size::D, dst, src }
}

fn alu(op: AluOp, dst: Operand, src: Operand) -> Inst {
    Inst::Alu { op, size: Size::D, dst, src }
}

fn access_size(ty: &Ty) -> Size {
    match ty {
        Ty::Char => Size::B,
        Ty::Short => Size::W,
        _ => Size::D,
    }
}

fn is_narrow(ty: &Ty) -> bool {
    matches!(ty, Ty::Char | Ty::Short)
}

impl<'p> Codegen<'p> {
    fn import(&mut self, name: &str) -> u16 {
        if let Some(i) = self.imports.iter().position(|n| n == name) {
            return i as u16;
        }
        self.imports.push(name.to_string());
        self.imports.len() as u16 - 1
    }

    // ---- frame addressing ----

    fn nsaved(&self) -> u32 {
        self.saved.len() as u32
    }

    /// Memory operand for locals-region offset `k`.
    fn slot_mem(&self, k: u32) -> Mem {
        if self.has_frame_ptr {
            Mem::base_disp(
                Reg::Ebp,
                k as i32 - (4 * self.nsaved() as i32) - self.locals_size as i32,
            )
        } else {
            Mem::base_disp(Reg::Esp, (k + self.depth) as i32)
        }
    }

    /// Memory operand for stack parameter `si`.
    fn param_mem(&self, si: u32) -> Mem {
        if self.has_frame_ptr {
            Mem::base_disp(Reg::Ebp, 8 + 4 * si as i32)
        } else {
            Mem::base_disp(
                Reg::Esp,
                (self.depth + 4 * self.nsaved() + self.locals_size + 4 + 4 * si) as i32,
            )
        }
    }

    fn push_op(&mut self, src: Operand) {
        self.asm.emit(Inst::Push { src });
        self.depth += 4;
    }

    fn pop_reg(&mut self, r: Reg) {
        self.asm.emit(Inst::Pop { dst: Operand::Reg(r) });
        self.depth -= 4;
    }

    fn add_esp(&mut self, bytes: u32) {
        if bytes > 0 {
            self.asm.emit(alu(AluOp::Add, Operand::Reg(Reg::Esp), Operand::Imm(bytes as i32)));
            self.depth -= bytes;
        }
    }

    // ---- operand helpers ----

    /// Express `e` as a direct ALU operand without code, if possible.
    fn as_simple(&self, e: &TExpr) -> Option<Operand> {
        if !self.profile.fuse_simple_operands {
            if let TK::Const(c) = e.kind {
                return Some(Operand::Imm(c));
            }
            return None;
        }
        match &e.kind {
            TK::Const(c) => Some(Operand::Imm(*c)),
            TK::DataAddr(off) => Some(Operand::Imm((DATA_BASE + off) as i32)),
            TK::GlobalAddr(g) => {
                Some(Operand::Imm((DATA_BASE + self.prog.globals[*g].data_off) as i32))
            }
            TK::ReadLocal(v) => match self.local_home[*v] {
                Home::Reg(r) => Some(Operand::Reg(r)),
                Home::Slot(k) if !is_narrow(&self.prog.funcs[self.cur].locals[*v].ty) => {
                    Some(Operand::Mem(self.slot_mem(k)))
                }
                _ => None,
            },
            TK::ReadParam(i) => match self.param_home[*i] {
                ParamHome::Reg(r) => Some(Operand::Reg(r)),
                ParamHome::Stack(si) if !is_narrow(&self.prog.funcs[self.cur].params[*i].ty) => {
                    Some(Operand::Mem(self.param_mem(si)))
                }
                ParamHome::Slot(k) if !is_narrow(&self.prog.funcs[self.cur].params[*i].ty) => {
                    Some(Operand::Mem(self.slot_mem(k)))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Express an address expression as a `Mem` operand using only frame
    /// registers, register-homed values and constants (no scratch code).
    fn addr_static(&self, e: &TExpr) -> Option<Mem> {
        fn merge_disp(m: Mem, d: i32) -> Mem {
            Mem { disp: m.disp.wrapping_add(d), ..m }
        }
        match &e.kind {
            TK::Const(c) => Some(Mem::abs(*c)),
            TK::DataAddr(off) => Some(Mem::abs((DATA_BASE + off) as i32)),
            TK::GlobalAddr(g) => {
                Some(Mem::abs((DATA_BASE + self.prog.globals[*g].data_off) as i32))
            }
            TK::LocalAddr(v) => match self.local_home[*v] {
                Home::Slot(k) => Some(self.slot_mem(k)),
                Home::Reg(_) => None,
            },
            TK::ParamAddr(i) => match self.param_home[*i] {
                ParamHome::Stack(si) => Some(self.param_mem(si)),
                ParamHome::Slot(k) => Some(self.slot_mem(k)),
                ParamHome::Reg(_) => None,
            },
            TK::ReadLocal(v) if self.profile.opt => match self.local_home[*v] {
                Home::Reg(r) => Some(Mem::base_disp(r, 0)),
                Home::Slot(_) => None,
            },
            TK::ReadParam(i) if self.profile.opt => match self.param_home[*i] {
                ParamHome::Reg(r) => Some(Mem::base_disp(r, 0)),
                _ => None,
            },
            TK::Bin(BK::Add, a, b) if self.profile.opt => {
                if let TK::Const(c) = b.kind {
                    return self.addr_static(a).map(|m| merge_disp(m, c));
                }
                if let TK::Const(c) = a.kind {
                    return self.addr_static(b).map(|m| merge_disp(m, c));
                }
                // base + reg-homed index (* const scale)
                let base = self.addr_static(a)?;
                if base.index.is_some() {
                    return None;
                }
                let (idx_e, scale) = match &b.kind {
                    TK::Bin(BK::Mul, x, s) => match s.kind {
                        TK::Const(c @ (1 | 2 | 4 | 8)) => (x.as_ref(), c as u8),
                        _ => return None,
                    },
                    TK::Bin(BK::Shl, x, s) => match s.kind {
                        TK::Const(c @ (0 | 1 | 2 | 3)) => (x.as_ref(), 1u8 << c),
                        _ => return None,
                    },
                    _ => (b.as_ref(), 1u8),
                };
                let idx_reg = match &idx_e.kind {
                    TK::ReadLocal(v) => match self.local_home[*v] {
                        Home::Reg(r) => r,
                        _ => return None,
                    },
                    TK::ReadParam(i) => match self.param_home[*i] {
                        ParamHome::Reg(r) => r,
                        _ => return None,
                    },
                    _ => return None,
                };
                Some(Mem { index: Some((idx_reg, scale)), ..base })
            }
            TK::Bin(BK::Sub, a, b) if self.profile.opt => {
                if let TK::Const(c) = b.kind {
                    return self.addr_static(a).map(|m| merge_disp(m, -c));
                }
                None
            }
            _ => None,
        }
    }

    // ---- expressions ----

    /// Generate code; if `used`, the value ends in `eax`.
    fn gen_expr(&mut self, e: &TExpr, used: bool) -> CResult<()> {
        match &e.kind {
            TK::Const(c) => {
                if used {
                    self.asm.emit(movd(EAX, Operand::Imm(*c)));
                }
            }
            TK::DataAddr(off) => {
                if used {
                    self.asm.emit(movd(EAX, Operand::Imm((DATA_BASE + off) as i32)));
                }
            }
            TK::GlobalAddr(g) => {
                if used {
                    let a = DATA_BASE + self.prog.globals[*g].data_off;
                    self.asm.emit(movd(EAX, Operand::Imm(a as i32)));
                }
            }
            TK::LocalAddr(v) => {
                if used {
                    let Home::Slot(k) = self.local_home[*v] else {
                        return cerr("address of register-allocated local");
                    };
                    let m = self.slot_mem(k);
                    self.asm.emit(Inst::Lea { dst: Reg::Eax, mem: m });
                }
            }
            TK::ParamAddr(i) => {
                if used {
                    let m = match self.param_home[*i] {
                        ParamHome::Stack(si) => self.param_mem(si),
                        ParamHome::Slot(k) => self.slot_mem(k),
                        ParamHome::Reg(_) => {
                            return cerr("address of register-allocated parameter")
                        }
                    };
                    self.asm.emit(Inst::Lea { dst: Reg::Eax, mem: m });
                }
            }
            TK::FuncAddr(fi) => {
                if used {
                    let l = self.func_labels[*fi];
                    self.asm.mov_label(Reg::Eax, l);
                }
            }
            TK::ReadLocal(v) => {
                if used {
                    let ty = self.prog.funcs[self.cur].locals[*v].ty.clone();
                    match self.local_home[*v] {
                        Home::Reg(r) => self.asm.emit(movd(EAX, Operand::Reg(r))),
                        Home::Slot(k) => {
                            let m = self.slot_mem(k);
                            self.load_extended(m, &ty);
                        }
                    }
                }
            }
            TK::ReadParam(i) => {
                if used {
                    let ty = self.prog.funcs[self.cur].params[*i].ty.clone();
                    match self.param_home[*i] {
                        ParamHome::Reg(r) => self.asm.emit(movd(EAX, Operand::Reg(r))),
                        ParamHome::Stack(si) => {
                            let m = self.param_mem(si);
                            self.load_extended(m, &ty);
                        }
                        ParamHome::Slot(k) => {
                            let m = self.slot_mem(k);
                            self.load_extended(m, &ty);
                        }
                    }
                }
            }
            TK::Load(addr, ty) => {
                match self.addr_static(addr) {
                    Some(m) => {
                        if used {
                            self.load_extended(m, ty);
                        } else {
                            // Dead load: still evaluate nothing (no effects
                            // in a static address).
                        }
                    }
                    None => {
                        self.gen_expr(addr, true)?;
                        if used {
                            self.load_extended(Mem::base_disp(Reg::Eax, 0), ty);
                        }
                    }
                }
            }
            TK::Bin(op, a, b) => {
                self.gen_bin(*op, a, b, used)?;
            }
            TK::Cmp(ck, a, b) => {
                self.gen_cmp_flags(a, b)?;
                if used {
                    self.asm.emit(Inst::Setcc { cc: ck_to_cc(*ck), dst: Reg::Eax });
                    self.asm.emit(Inst::Movzx { from: Size::B, dst: Reg::Eax, src: EAX });
                }
            }
            TK::LogAnd(..) | TK::LogOr(..) => {
                let lfalse = self.asm.fresh_label();
                let lend = self.asm.fresh_label();
                self.gen_cond(e, lfalse, false)?;
                self.asm.emit(movd(EAX, Operand::Imm(1)));
                self.asm.jmp(lend);
                self.asm.bind(lfalse);
                self.asm.emit(movd(EAX, Operand::Imm(0)));
                self.asm.bind(lend);
                if !used {
                    // Side effects only; value discarded.
                }
            }
            TK::LogNot(a) => {
                self.gen_expr(a, true)?;
                if used {
                    self.asm.emit(Inst::Test { size: Size::D, a: EAX, b: EAX });
                    self.asm.emit(Inst::Setcc { cc: Cc::E, dst: Reg::Eax });
                    self.asm.emit(Inst::Movzx { from: Size::B, dst: Reg::Eax, src: EAX });
                }
            }
            TK::Neg(a) => {
                self.gen_expr(a, used)?;
                if used {
                    self.asm.emit(Inst::Neg { size: Size::D, dst: EAX });
                }
            }
            TK::BitNot(a) => {
                self.gen_expr(a, used)?;
                if used {
                    self.asm.emit(Inst::Not { size: Size::D, dst: EAX });
                }
            }
            TK::Cond(c, a, b) => {
                let lelse = self.asm.fresh_label();
                let lend = self.asm.fresh_label();
                self.gen_cond(c, lelse, false)?;
                self.gen_expr(a, used)?;
                self.asm.jmp(lend);
                self.asm.bind(lelse);
                self.gen_expr(b, used)?;
                self.asm.bind(lend);
            }
            TK::Conv { to, e: inner } => {
                self.gen_expr(inner, used)?;
                if used {
                    let from = access_size(to);
                    if from != Size::D {
                        self.asm.emit(Inst::Movsx { from, dst: Reg::Eax, src: EAX });
                    }
                }
            }
            TK::Seq(effects, last) => {
                for eff in effects {
                    self.gen_expr(eff, false)?;
                }
                self.gen_expr(last, used)?;
            }
            TK::Assign { target, op, rhs } => {
                self.gen_assign(target, *op, rhs, used)?;
            }
            TK::IncDec { target, inc, pre, delta } => {
                self.gen_incdec(target, *inc, *pre, *delta, used)?;
            }
            TK::Call { callee, args } => {
                self.gen_call(callee, args)?;
                let _ = used; // result already in eax
            }
            TK::StructCopy { dst, src, size } => {
                self.gen_struct_copy(dst, src, *size)?;
            }
        }
        Ok(())
    }

    fn load_extended(&mut self, m: Mem, ty: &Ty) {
        match access_size(ty) {
            Size::D => self.asm.emit(movd(EAX, Operand::Mem(m))),
            s => self.asm.emit(Inst::Movsx { from: s, dst: Reg::Eax, src: Operand::Mem(m) }),
        }
    }

    /// Emit `cmp` setting flags for `a ? b`.
    fn gen_cmp_flags(&mut self, a: &TExpr, b: &TExpr) -> CResult<()> {
        if let Some(sb) = self.as_simple(b) {
            self.gen_expr(a, true)?;
            self.asm.emit(Inst::Cmp { size: Size::D, a: EAX, b: sb });
            return Ok(());
        }
        self.gen_expr(a, true)?;
        self.push_op(EAX);
        self.gen_expr(b, true)?;
        self.asm.emit(movd(ECX, EAX));
        self.pop_reg(Reg::Eax);
        self.asm.emit(Inst::Cmp { size: Size::D, a: EAX, b: ECX });
        Ok(())
    }

    /// Branch to `target` when `e`'s truth equals `jump_if`.
    fn gen_cond(&mut self, e: &TExpr, target: Label, jump_if: bool) -> CResult<()> {
        match &e.kind {
            TK::Const(c) => {
                if (*c != 0) == jump_if {
                    self.asm.jmp(target);
                }
            }
            TK::Cmp(ck, a, b) => {
                self.gen_cmp_flags(a, b)?;
                let cc = ck_to_cc(*ck);
                let cc = if jump_if { cc } else { cc.negate() };
                self.asm.jcc(cc, target);
            }
            TK::LogNot(a) => self.gen_cond(a, target, !jump_if)?,
            TK::LogAnd(a, b) => {
                if jump_if {
                    let skip = self.asm.fresh_label();
                    self.gen_cond(a, skip, false)?;
                    self.gen_cond(b, target, true)?;
                    self.asm.bind(skip);
                } else {
                    self.gen_cond(a, target, false)?;
                    self.gen_cond(b, target, false)?;
                }
            }
            TK::LogOr(a, b) => {
                if jump_if {
                    self.gen_cond(a, target, true)?;
                    self.gen_cond(b, target, true)?;
                } else {
                    let skip = self.asm.fresh_label();
                    self.gen_cond(a, skip, true)?;
                    self.gen_cond(b, target, false)?;
                    self.asm.bind(skip);
                }
            }
            _ => {
                self.gen_expr(e, true)?;
                self.asm.emit(Inst::Test { size: Size::D, a: EAX, b: EAX });
                self.asm.jcc(if jump_if { Cc::Ne } else { Cc::E }, target);
            }
        }
        Ok(())
    }

    fn gen_bin(&mut self, op: BK, a: &TExpr, b: &TExpr, used: bool) -> CResult<()> {
        if !used {
            // Evaluate for effects only.
            self.gen_expr(a, false)?;
            self.gen_expr(b, false)?;
            return Ok(());
        }
        match op {
            BK::Add | BK::Sub | BK::And | BK::Or | BK::Xor => {
                let aluop = match op {
                    BK::Add => AluOp::Add,
                    BK::Sub => AluOp::Sub,
                    BK::And => AluOp::And,
                    BK::Or => AluOp::Or,
                    _ => AluOp::Xor,
                };
                if let Some(sb) = self.as_simple(b) {
                    self.gen_expr(a, true)?;
                    self.asm.emit(alu(aluop, EAX, sb));
                    return Ok(());
                }
                if op == BK::Add {
                    if let Some(sa) = self.as_simple(a) {
                        self.gen_expr(b, true)?;
                        self.asm.emit(alu(aluop, EAX, sa));
                        return Ok(());
                    }
                }
                self.gen_expr(a, true)?;
                self.push_op(EAX);
                self.gen_expr(b, true)?;
                self.asm.emit(movd(ECX, EAX));
                self.pop_reg(Reg::Eax);
                self.asm.emit(alu(aluop, EAX, ECX));
            }
            BK::Mul => {
                if let Some(sb @ (Operand::Imm(_) | Operand::Reg(_) | Operand::Mem(_))) =
                    self.as_simple(b)
                {
                    self.gen_expr(a, true)?;
                    match sb {
                        Operand::Imm(c) => {
                            self.asm.emit(Inst::ImulI { dst: Reg::Eax, src: EAX, imm: c })
                        }
                        other => self.asm.emit(Inst::Imul { dst: Reg::Eax, src: other }),
                    }
                    return Ok(());
                }
                self.gen_expr(a, true)?;
                self.push_op(EAX);
                self.gen_expr(b, true)?;
                self.asm.emit(movd(ECX, EAX));
                self.pop_reg(Reg::Eax);
                self.asm.emit(Inst::Imul { dst: Reg::Eax, src: ECX });
            }
            BK::Div | BK::Rem => {
                // eax = dividend, ecx = divisor.
                self.gen_expr(a, true)?;
                self.push_op(EAX);
                self.gen_expr(b, true)?;
                self.asm.emit(movd(ECX, EAX));
                self.pop_reg(Reg::Eax);
                self.asm.emit(Inst::Idiv { src: ECX });
                if op == BK::Rem {
                    self.asm.emit(movd(EAX, EDX));
                }
            }
            BK::Shl | BK::Shr => {
                let sop = if op == BK::Shl { ShiftOp::Shl } else { ShiftOp::Sar };
                if let TK::Const(c) = b.kind {
                    self.gen_expr(a, true)?;
                    self.asm.emit(Inst::Shift {
                        op: sop,
                        size: Size::D,
                        dst: EAX,
                        amount: ShiftAmount::Imm((c & 31) as u8),
                    });
                    return Ok(());
                }
                self.gen_expr(a, true)?;
                self.push_op(EAX);
                self.gen_expr(b, true)?;
                self.asm.emit(movd(ECX, EAX));
                self.pop_reg(Reg::Eax);
                self.asm.emit(Inst::Shift {
                    op: sop,
                    size: Size::D,
                    dst: EAX,
                    amount: ShiftAmount::Cl,
                });
            }
        }
        Ok(())
    }

    /// Narrow the value in `eax` per assignment-result semantics.
    fn narrow_result(&mut self, ty: &Ty) {
        let s = access_size(ty);
        if s != Size::D {
            self.asm.emit(Inst::Movsx { from: s, dst: Reg::Eax, src: EAX });
        }
    }

    fn target_reg(&self, t: &Target) -> Option<(Reg, Ty)> {
        match t {
            Target::Local(v) => match self.local_home[*v] {
                Home::Reg(r) => Some((r, self.prog.funcs[self.cur].locals[*v].ty.clone())),
                _ => None,
            },
            Target::Param(i) => match self.param_home[*i] {
                ParamHome::Reg(r) => Some((r, self.prog.funcs[self.cur].params[*i].ty.clone())),
                _ => None,
            },
            Target::Mem(..) => None,
        }
    }

    /// Static memory destination of a target, if addressable without
    /// scratch registers. Returns the access type too.
    fn target_static_mem(&self, t: &Target) -> Option<(Mem, Ty)> {
        match t {
            Target::Local(v) => match self.local_home[*v] {
                Home::Slot(k) => {
                    Some((self.slot_mem(k), self.prog.funcs[self.cur].locals[*v].ty.clone()))
                }
                _ => None,
            },
            Target::Param(i) => match self.param_home[*i] {
                ParamHome::Stack(si) => {
                    Some((self.param_mem(si), self.prog.funcs[self.cur].params[*i].ty.clone()))
                }
                ParamHome::Slot(k) => {
                    Some((self.slot_mem(k), self.prog.funcs[self.cur].params[*i].ty.clone()))
                }
                _ => None,
            },
            Target::Mem(addr, ty) => self.addr_static(addr).map(|m| (m, ty.clone())),
        }
    }

    fn gen_assign(
        &mut self,
        target: &Target,
        op: Option<BK>,
        rhs: &TExpr,
        used: bool,
    ) -> CResult<()> {
        // Register destination.
        if let Some((r, ty)) = self.target_reg(target) {
            match op {
                None => {
                    self.gen_expr(rhs, true)?;
                    self.asm.emit(movd(Operand::Reg(r), EAX));
                }
                Some(bk) => {
                    self.gen_expr(rhs, true)?;
                    match bk {
                        BK::Add | BK::Sub | BK::And | BK::Or | BK::Xor => {
                            let aluop = match bk {
                                BK::Add => AluOp::Add,
                                BK::Sub => AluOp::Sub,
                                BK::And => AluOp::And,
                                BK::Or => AluOp::Or,
                                _ => AluOp::Xor,
                            };
                            self.asm.emit(alu(aluop, Operand::Reg(r), EAX));
                        }
                        BK::Mul => self.asm.emit(Inst::Imul { dst: r, src: EAX }),
                        BK::Shl | BK::Shr => {
                            self.asm.emit(movd(ECX, EAX));
                            self.asm.emit(Inst::Shift {
                                op: if bk == BK::Shl { ShiftOp::Shl } else { ShiftOp::Sar },
                                size: Size::D,
                                dst: Operand::Reg(r),
                                amount: ShiftAmount::Cl,
                            });
                        }
                        BK::Div | BK::Rem => {
                            self.asm.emit(movd(ECX, EAX));
                            self.asm.emit(movd(EAX, Operand::Reg(r)));
                            self.asm.emit(Inst::Idiv { src: ECX });
                            if bk == BK::Rem {
                                self.asm.emit(movd(EAX, EDX));
                            }
                            self.asm.emit(movd(Operand::Reg(r), EAX));
                        }
                    }
                    // Narrow register-homed char/short after compound ops.
                    if is_narrow(&ty) {
                        self.asm.emit(Inst::Movsx {
                            from: access_size(&ty),
                            dst: r,
                            src: Operand::Reg(r),
                        });
                    }
                }
            }
            if used && op.is_some() {
                self.asm.emit(movd(EAX, Operand::Reg(r)));
            } else if used {
                // value already in eax from the plain store path
                if is_narrow(&ty) {
                    self.narrow_result(&ty);
                }
            }
            return Ok(());
        }

        // Memory destination with a statically addressable location.
        if let Some((m, ty)) = self.target_static_mem(target) {
            let size = access_size(&ty);
            match op {
                None => {
                    if let TK::Const(c) = rhs.kind {
                        if self.profile.opt {
                            self.asm.emit(Inst::Mov {
                                size,
                                dst: Operand::Mem(m),
                                src: Operand::Imm(c),
                            });
                            if used {
                                self.asm.emit(movd(EAX, Operand::Imm(c)));
                            }
                            return Ok(());
                        }
                    }
                    self.gen_expr(rhs, true)?;
                    self.asm.emit(Inst::Mov { size, dst: Operand::Mem(m), src: EAX });
                    if used && is_narrow(&ty) {
                        self.narrow_result(&ty);
                    }
                }
                Some(bk) => {
                    let mem_alu_ok = !is_narrow(&ty)
                        && matches!(bk, BK::Add | BK::Sub | BK::And | BK::Or | BK::Xor)
                        && self.profile.opt;
                    if mem_alu_ok {
                        let aluop = match bk {
                            BK::Add => AluOp::Add,
                            BK::Sub => AluOp::Sub,
                            BK::And => AluOp::And,
                            BK::Or => AluOp::Or,
                            _ => AluOp::Xor,
                        };
                        if let Some(s) = self.as_simple(rhs) {
                            self.asm.emit(alu(aluop, Operand::Mem(m), s));
                            if used {
                                self.load_extended(m, &ty);
                            }
                            return Ok(());
                        }
                        self.gen_expr(rhs, true)?;
                        self.asm.emit(alu(aluop, Operand::Mem(m), EAX));
                        if used {
                            self.load_extended(m, &ty);
                        }
                        return Ok(());
                    }
                    // Load-modify-store.
                    self.gen_expr(rhs, true)?;
                    self.asm.emit(movd(ECX, EAX));
                    self.load_extended(m, &ty);
                    self.apply_bin_eax_ecx(bk);
                    self.asm.emit(Inst::Mov { size, dst: Operand::Mem(m), src: EAX });
                    if used && is_narrow(&ty) {
                        self.narrow_result(&ty);
                    }
                }
            }
            return Ok(());
        }

        // Fully dynamic address: compute it, stash it, evaluate rhs.
        let Target::Mem(addr, ty) = target else {
            return cerr("unsupported assignment target");
        };
        let ty = ty.clone();
        let size = access_size(&ty);
        self.gen_expr(addr, true)?;
        self.push_op(EAX);
        match op {
            None => {
                self.gen_expr(rhs, true)?;
                self.pop_reg(Reg::Ecx);
                self.asm.emit(Inst::Mov {
                    size,
                    dst: Operand::Mem(Mem::base_disp(Reg::Ecx, 0)),
                    src: EAX,
                });
                if used && is_narrow(&ty) {
                    self.narrow_result(&ty);
                }
            }
            Some(bk) => {
                self.gen_expr(rhs, true)?;
                self.pop_reg(Reg::Ecx);
                // edx := rhs, eax := old value
                self.asm.emit(movd(EDX, EAX));
                let m = Mem::base_disp(Reg::Ecx, 0);
                match size {
                    Size::D => self.asm.emit(movd(EAX, Operand::Mem(m))),
                    s => {
                        self.asm.emit(Inst::Movsx { from: s, dst: Reg::Eax, src: Operand::Mem(m) })
                    }
                }
                self.apply_bin_eax_edx(bk)?;
                self.asm.emit(Inst::Mov { size, dst: Operand::Mem(m), src: EAX });
                if used && is_narrow(&ty) {
                    self.narrow_result(&ty);
                }
            }
        }
        Ok(())
    }

    /// `eax = eax <bk> ecx`.
    fn apply_bin_eax_ecx(&mut self, bk: BK) {
        match bk {
            BK::Add => self.asm.emit(alu(AluOp::Add, EAX, ECX)),
            BK::Sub => self.asm.emit(alu(AluOp::Sub, EAX, ECX)),
            BK::And => self.asm.emit(alu(AluOp::And, EAX, ECX)),
            BK::Or => self.asm.emit(alu(AluOp::Or, EAX, ECX)),
            BK::Xor => self.asm.emit(alu(AluOp::Xor, EAX, ECX)),
            BK::Mul => self.asm.emit(Inst::Imul { dst: Reg::Eax, src: ECX }),
            BK::Div => self.asm.emit(Inst::Idiv { src: ECX }),
            BK::Rem => {
                self.asm.emit(Inst::Idiv { src: ECX });
                self.asm.emit(movd(EAX, EDX));
            }
            BK::Shl => self.asm.emit(Inst::Shift {
                op: ShiftOp::Shl,
                size: Size::D,
                dst: EAX,
                amount: ShiftAmount::Cl,
            }),
            BK::Shr => self.asm.emit(Inst::Shift {
                op: ShiftOp::Sar,
                size: Size::D,
                dst: EAX,
                amount: ShiftAmount::Cl,
            }),
        }
    }

    /// `eax = eax <bk> edx` (divisor/count staged through edx; shifts and
    /// division move it to ecx first).
    fn apply_bin_eax_edx(&mut self, bk: BK) -> CResult<()> {
        match bk {
            BK::Shl | BK::Shr | BK::Div | BK::Rem => {
                self.asm.emit(movd(ECX, EDX));
                self.apply_bin_eax_ecx(bk);
            }
            BK::Add => self.asm.emit(alu(AluOp::Add, EAX, EDX)),
            BK::Sub => self.asm.emit(alu(AluOp::Sub, EAX, EDX)),
            BK::And => self.asm.emit(alu(AluOp::And, EAX, EDX)),
            BK::Or => self.asm.emit(alu(AluOp::Or, EAX, EDX)),
            BK::Xor => self.asm.emit(alu(AluOp::Xor, EAX, EDX)),
            BK::Mul => self.asm.emit(Inst::Imul { dst: Reg::Eax, src: EDX }),
        }
        Ok(())
    }

    fn gen_incdec(
        &mut self,
        target: &Target,
        inc: bool,
        pre: bool,
        delta: i32,
        used: bool,
    ) -> CResult<()> {
        let step = if inc { delta } else { -delta };
        if let Some((r, ty)) = self.target_reg(target) {
            if used && !pre {
                self.asm.emit(movd(EAX, Operand::Reg(r)));
            }
            self.asm.emit(alu(AluOp::Add, Operand::Reg(r), Operand::Imm(step)));
            if is_narrow(&ty) {
                self.asm.emit(Inst::Movsx { from: access_size(&ty), dst: r, src: Operand::Reg(r) });
            }
            if used && pre {
                self.asm.emit(movd(EAX, Operand::Reg(r)));
            }
            return Ok(());
        }
        if let Some((m, ty)) = self.target_static_mem(target) {
            if !is_narrow(&ty) && (!used || self.profile.opt) {
                if used && !pre {
                    self.asm.emit(movd(EAX, Operand::Mem(m)));
                }
                self.asm.emit(alu(AluOp::Add, Operand::Mem(m), Operand::Imm(step)));
                if used && pre {
                    self.asm.emit(movd(EAX, Operand::Mem(m)));
                }
                return Ok(());
            }
            // Narrow or unoptimized: load-extend, bump, store.
            self.load_extended(m, &ty);
            if used && !pre {
                self.asm.emit(movd(ECX, EAX));
                self.asm.emit(alu(AluOp::Add, ECX, Operand::Imm(step)));
                self.asm.emit(Inst::Mov { size: access_size(&ty), dst: Operand::Mem(m), src: ECX });
            } else {
                self.asm.emit(alu(AluOp::Add, EAX, Operand::Imm(step)));
                self.asm.emit(Inst::Mov { size: access_size(&ty), dst: Operand::Mem(m), src: EAX });
                if used && is_narrow(&ty) {
                    self.narrow_result(&ty);
                }
            }
            return Ok(());
        }
        let Target::Mem(addr, ty) = target else {
            return cerr("unsupported incdec target");
        };
        let ty = ty.clone();
        self.gen_expr(addr, true)?;
        self.asm.emit(movd(ECX, EAX));
        let m = Mem::base_disp(Reg::Ecx, 0);
        self.load_extended(m, &ty);
        if used && !pre {
            self.asm.emit(movd(EDX, EAX));
        }
        self.asm.emit(alu(AluOp::Add, EAX, Operand::Imm(step)));
        self.asm.emit(Inst::Mov { size: access_size(&ty), dst: Operand::Mem(m), src: EAX });
        if used {
            if pre {
                if is_narrow(&ty) {
                    self.narrow_result(&ty);
                }
            } else {
                self.asm.emit(movd(EAX, EDX));
            }
        }
        Ok(())
    }

    fn gen_call(&mut self, callee: &Callee, args: &[TExpr]) -> CResult<()> {
        match callee {
            Callee::Ext(name) => {
                let idx = self.import(name);
                let n = args.len() as u32;
                for a in args.iter().rev() {
                    self.gen_push_arg(a)?;
                }
                self.asm.emit(Inst::CallExt { idx });
                self.add_esp(4 * n);
            }
            Callee::Func(fi) => {
                let callee_f = &self.prog.funcs[*fi];
                let regparm = self.profile.regparm_static
                    && callee_f.is_static
                    && !callee_f.params.is_empty();
                if regparm {
                    let nreg = args.len().min(2);
                    let stack_args = &args[nreg..];
                    for a in stack_args.iter().rev() {
                        self.gen_push_arg(a)?;
                    }
                    if nreg == 2 {
                        self.gen_expr(&args[1], true)?;
                        self.push_op(EAX);
                        self.gen_expr(&args[0], true)?;
                        self.asm.emit(movd(ECX, EAX));
                        self.pop_reg(Reg::Edx);
                    } else {
                        self.gen_expr(&args[0], true)?;
                        self.asm.emit(movd(ECX, EAX));
                    }
                    let l = self.func_labels[*fi];
                    self.asm.call(l);
                    self.add_esp(4 * stack_args.len() as u32);
                } else {
                    for a in args.iter().rev() {
                        self.gen_push_arg(a)?;
                    }
                    let l = self.func_labels[*fi];
                    self.asm.call(l);
                    self.add_esp(4 * args.len() as u32);
                }
            }
            Callee::Ind(t) => {
                for a in args.iter().rev() {
                    self.gen_push_arg(a)?;
                }
                self.gen_expr(t, true)?;
                self.asm.emit(Inst::CallInd { target: EAX });
                self.add_esp(4 * args.len() as u32);
            }
        }
        Ok(())
    }

    fn gen_push_arg(&mut self, a: &TExpr) -> CResult<()> {
        if let Some(s) = self.as_simple(a) {
            self.push_op(s);
            return Ok(());
        }
        self.gen_expr(a, true)?;
        self.push_op(EAX);
        Ok(())
    }

    fn gen_struct_copy(&mut self, dst: &TExpr, src: &TExpr, size: u32) -> CResult<()> {
        self.gen_expr(src, true)?;
        self.push_op(EAX);
        self.gen_expr(dst, true)?;
        self.pop_reg(Reg::Ecx);
        // dst in eax, src in ecx.
        if size > 64 {
            // Call memcpy(dst, src, size).
            let idx = self.import("memcpy");
            self.push_op(Operand::Imm(size as i32));
            self.push_op(ECX);
            self.push_op(EAX);
            self.asm.emit(Inst::CallExt { idx });
            self.add_esp(12);
            return Ok(());
        }
        let mut off = 0u32;
        if self.profile.vmov_copy {
            while off + 8 <= size {
                self.asm.emit(Inst::VmovLd { mem: Mem::base_disp(Reg::Ecx, off as i32) });
                self.asm.emit(Inst::VmovSt { mem: Mem::base_disp(Reg::Eax, off as i32) });
                off += 8;
            }
        }
        while off + 4 <= size {
            self.asm.emit(movd(EDX, Operand::Mem(Mem::base_disp(Reg::Ecx, off as i32))));
            self.asm.emit(movd(Operand::Mem(Mem::base_disp(Reg::Eax, off as i32)), EDX));
            off += 4;
        }
        while off < size {
            self.asm.emit(Inst::Mov {
                size: Size::B,
                dst: EDX,
                src: Operand::Mem(Mem::base_disp(Reg::Ecx, off as i32)),
            });
            self.asm.emit(Inst::Mov {
                size: Size::B,
                dst: Operand::Mem(Mem::base_disp(Reg::Eax, off as i32)),
                src: EDX,
            });
            off += 1;
        }
        Ok(())
    }

    // ---- statements ----

    fn gen_stmts(&mut self, stmts: &[TStmt]) -> CResult<()> {
        for s in stmts {
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &TStmt) -> CResult<()> {
        match s {
            TStmt::Nop => {}
            TStmt::Expr(e) => self.gen_expr(e, false)?,
            TStmt::Block(b) => self.gen_stmts(b)?,
            TStmt::If(c, t, e) => {
                let lelse = self.asm.fresh_label();
                self.gen_cond(c, lelse, false)?;
                self.gen_stmts(t)?;
                if e.is_empty() {
                    self.asm.bind(lelse);
                } else {
                    let lend = self.asm.fresh_label();
                    self.asm.jmp(lend);
                    self.asm.bind(lelse);
                    self.gen_stmts(e)?;
                    self.asm.bind(lend);
                }
            }
            TStmt::While(c, b) => {
                let ltop = self.asm.here();
                let lend = self.asm.fresh_label();
                self.gen_cond(c, lend, false)?;
                self.break_stack.push(lend);
                self.continue_stack.push(ltop);
                self.gen_stmts(b)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.asm.jmp(ltop);
                self.asm.bind(lend);
            }
            TStmt::DoWhile(b, c) => {
                let ltop = self.asm.here();
                let lcont = self.asm.fresh_label();
                let lend = self.asm.fresh_label();
                self.break_stack.push(lend);
                self.continue_stack.push(lcont);
                self.gen_stmts(b)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.asm.bind(lcont);
                self.gen_cond(c, ltop, true)?;
                self.asm.bind(lend);
            }
            TStmt::For(init, cond, step, b) => {
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let ltop = self.asm.here();
                let lend = self.asm.fresh_label();
                let lcont = self.asm.fresh_label();
                if let Some(c) = cond {
                    self.gen_cond(c, lend, false)?;
                }
                self.break_stack.push(lend);
                self.continue_stack.push(lcont);
                self.gen_stmts(b)?;
                self.continue_stack.pop();
                self.break_stack.pop();
                self.asm.bind(lcont);
                if let Some(st) = step {
                    self.gen_expr(st, false)?;
                }
                self.asm.jmp(ltop);
                self.asm.bind(lend);
            }
            TStmt::Switch(scrut, arms) => self.gen_switch(scrut, arms)?,
            TStmt::Break => {
                let Some(&l) = self.break_stack.last() else {
                    return cerr("break outside loop/switch");
                };
                self.asm.jmp(l);
            }
            TStmt::Continue => {
                let Some(&l) = self.continue_stack.last() else {
                    return cerr("continue outside loop");
                };
                self.asm.jmp(l);
            }
            TStmt::Return(v) => {
                if self.profile.tail_calls {
                    if let Some(TExpr {
                        kind: TK::Call { callee: Callee::Func(fi), args }, ..
                    }) = v
                    {
                        if self.try_tail_call(*fi, args)? {
                            return Ok(());
                        }
                    }
                }
                if let Some(e) = v {
                    self.gen_expr(e, true)?;
                }
                let epi = self.epilogue.expect("epilogue label");
                self.asm.jmp(epi);
            }
        }
        Ok(())
    }

    /// Emit a tail call if frames are compatible; returns whether it did.
    fn try_tail_call(&mut self, fi: usize, args: &[TExpr]) -> CResult<bool> {
        let callee = &self.prog.funcs[fi];
        let caller = &self.prog.funcs[self.cur];
        let callee_regparm =
            self.profile.regparm_static && callee.is_static && !callee.params.is_empty();
        let caller_regparm = self.regparm_count > 0;
        if callee_regparm || caller_regparm {
            return Ok(false);
        }
        // The callee's arguments must fit in the caller's incoming area.
        if args.len() > caller.params.len() {
            return Ok(false);
        }
        // With a frame pointer the parameter slots stay addressable during
        // the rewrite; without one the bookkeeping is identical via depth.
        // Evaluate all arguments first (they may read the current params).
        for a in args {
            self.gen_expr(a, true)?;
            self.push_op(EAX);
        }
        for i in (0..args.len()).rev() {
            self.pop_reg(Reg::Ecx);
            let m = self.param_mem(i as u32);
            self.asm.emit(movd(Operand::Mem(m), ECX));
        }
        // Epilogue without ret, then jump.
        self.emit_frame_teardown();
        let l = self.func_labels[fi];
        self.asm.jmp(l);
        Ok(true)
    }

    fn gen_switch(&mut self, scrut: &TExpr, arms: &[(Option<i32>, Vec<TStmt>)]) -> CResult<()> {
        self.gen_expr(scrut, true)?;
        let lend = self.asm.fresh_label();
        let arm_labels: Vec<Label> = arms.iter().map(|_| self.asm.fresh_label()).collect();
        let default_label =
            arms.iter().position(|(c, _)| c.is_none()).map(|i| arm_labels[i]).unwrap_or(lend);
        let cases: Vec<(i32, Label)> = arms
            .iter()
            .enumerate()
            .filter_map(|(i, (c, _))| c.map(|v| (v, arm_labels[i])))
            .collect();

        let use_table = self.profile.jump_tables && cases.len() >= 4 && {
            let lo = cases.iter().map(|(v, _)| *v).min().unwrap();
            let hi = cases.iter().map(|(v, _)| *v).max().unwrap();
            let span = (hi as i64 - lo as i64) + 1;
            span <= 3 * cases.len() as i64 + 8
        };

        if use_table {
            let lo = cases.iter().map(|(v, _)| *v).min().unwrap();
            let hi = cases.iter().map(|(v, _)| *v).max().unwrap();
            let span = (hi - lo + 1) as u32;
            if lo != 0 {
                self.asm.emit(alu(AluOp::Sub, EAX, Operand::Imm(lo)));
            }
            self.asm.emit(Inst::Cmp { size: Size::D, a: EAX, b: Operand::Imm((hi - lo) as i32) });
            self.asm.jcc(Cc::A, default_label);
            // Reserve the table in the data segment.
            while self.data.len() % 4 != 0 {
                self.data.push(0);
            }
            let data_off = self.data.len() as u32;
            let mut labels = Vec::with_capacity(span as usize);
            for v in 0..span {
                let target = cases
                    .iter()
                    .find(|(c, _)| (*c - lo) as u32 == v)
                    .map(|(_, l)| *l)
                    .unwrap_or(default_label);
                labels.push(target);
                self.data.extend_from_slice(&0u32.to_le_bytes());
            }
            let table_addr = DATA_BASE + data_off;
            if self.profile.pic {
                // Entries are relative to the table base.
                self.asm.emit(movd(
                    ECX,
                    Operand::Mem(Mem {
                        base: None,
                        index: Some((Reg::Eax, 4)),
                        disp: table_addr as i32,
                    }),
                ));
                self.asm.emit(alu(AluOp::Add, ECX, Operand::Imm(table_addr as i32)));
                self.asm.emit(Inst::JmpInd { target: ECX });
            } else {
                self.asm.emit(Inst::JmpInd {
                    target: Operand::Mem(Mem {
                        base: None,
                        index: Some((Reg::Eax, 4)),
                        disp: table_addr as i32,
                    }),
                });
            }
            self.jump_tables.push(JumpTable { data_off, labels, relative: self.profile.pic });
        } else {
            for (v, l) in &cases {
                self.asm.emit(Inst::Cmp { size: Size::D, a: EAX, b: Operand::Imm(*v) });
                self.asm.jcc(Cc::E, *l);
            }
            self.asm.jmp(default_label);
        }

        self.break_stack.push(lend);
        for (i, (_, body)) in arms.iter().enumerate() {
            self.asm.bind(arm_labels[i]);
            self.gen_stmts(body)?;
        }
        self.break_stack.pop();
        self.asm.bind(lend);
        Ok(())
    }

    // ---- function scaffolding ----

    fn begin_func(&mut self, fi: usize) -> CResult<()> {
        self.cur = fi;
        let f = &self.prog.funcs[fi];
        let structs = self.prog.structs.clone();

        let regparm = self.profile.regparm_static && f.is_static && !f.params.is_empty();
        self.regparm_count = if regparm { f.params.len().min(2) as u32 } else { 0 };
        self.stack_param_count = f.params.len() as u32 - self.regparm_count;

        // Weighted use counts for register allocation.
        let weights = use_weights(f);

        // Candidates: scalar, not address-taken.
        #[derive(Clone, Copy)]
        enum Cand {
            Local(usize),
            Param(usize),
        }
        let mut cands: Vec<(Cand, u32)> = Vec::new();
        for (i, l) in f.locals.iter().enumerate() {
            if l.ty.is_scalar() && !l.addr_taken {
                cands.push((Cand::Local(i), weights.locals[i]));
            }
        }
        if self.profile.opt {
            for (i, p) in f.params.iter().enumerate() {
                if p.ty.is_scalar() && !p.addr_taken {
                    cands.push((Cand::Param(i), weights.params[i] + 1));
                }
            }
        }
        cands.sort_by(|a, b| b.1.cmp(&a.1));
        let regs = [Reg::Ebx, Reg::Esi, Reg::Edi];
        let take = (self.profile.reg_locals as usize).min(regs.len());
        let mut assigned: Vec<(Cand, Reg)> = Vec::new();
        for (c, w) in cands.into_iter() {
            if assigned.len() >= take {
                break;
            }
            if w == 0 {
                continue;
            }
            assigned.push((c, regs[assigned.len()]));
        }

        // Homes.
        self.local_home = vec![Home::Slot(0); f.locals.len()];
        self.param_home = (0..f.params.len())
            .map(|i| {
                if (i as u32) < self.regparm_count {
                    ParamHome::Slot(0) // placeholder; may become Reg below
                } else {
                    ParamHome::Stack(i as u32 - self.regparm_count)
                }
            })
            .collect();
        let mut reg_promoted_params: Vec<usize> = Vec::new();
        for (c, r) in &assigned {
            match c {
                Cand::Local(i) => self.local_home[*i] = Home::Reg(*r),
                Cand::Param(i) => {
                    self.param_home[*i] = ParamHome::Reg(*r);
                    reg_promoted_params.push(*i);
                }
            }
        }

        // Locals region layout: memory locals plus spill slots for regparm
        // params that did not get a register.
        let mut off = 0u32;
        let mut gt_vars: Vec<(String, u32, u32)> = Vec::new(); // (name, slot off, size)
        for (i, l) in f.locals.iter().enumerate() {
            if matches!(self.local_home[i], Home::Reg(_)) {
                continue;
            }
            let size = l.ty.size(&structs).max(1);
            let align = l.ty.align(&structs).max(if l.ty.is_scalar() { 4 } else { 4 });
            off = (off + align - 1) & !(align - 1);
            self.local_home[i] = Home::Slot(off);
            gt_vars.push((l.name.clone(), off, size));
            off += size;
        }
        for i in 0..f.params.len() {
            if (i as u32) < self.regparm_count && !matches!(self.param_home[i], ParamHome::Reg(_)) {
                off = (off + 3) & !3;
                self.param_home[i] = ParamHome::Slot(off);
                gt_vars.push((f.params[i].name.clone(), off, 4));
                off += 4;
            }
        }
        self.locals_size = (off + 3) & !3;

        // Saved registers: every callee-saved register we allocated.
        self.saved = assigned.iter().map(|(_, r)| *r).collect();
        self.saved.sort_by_key(|r| r.index());
        self.saved.dedup();
        self.has_frame_ptr = self.profile.frame_pointer;
        self.depth = 0;

        // Prologue.
        let label = self.func_labels[fi];
        self.asm.bind(label);
        if self.has_frame_ptr {
            self.asm.emit(Inst::Push { src: Operand::Reg(Reg::Ebp) });
            self.asm.emit(movd(Operand::Reg(Reg::Ebp), Operand::Reg(Reg::Esp)));
        }
        let saved = self.saved.clone();
        for r in &saved {
            self.asm.emit(Inst::Push { src: Operand::Reg(*r) });
        }
        if self.locals_size > 0 {
            self.asm.emit(alu(
                AluOp::Sub,
                Operand::Reg(Reg::Esp),
                Operand::Imm(self.locals_size as i32),
            ));
        }

        // Move incoming arguments to their homes.
        for i in 0..f.params.len() {
            if (i as u32) < self.regparm_count {
                let src = if i == 0 { ECX } else { EDX };
                match self.param_home[i] {
                    ParamHome::Reg(r) => self.asm.emit(movd(Operand::Reg(r), src)),
                    ParamHome::Slot(k) => {
                        let m = self.slot_mem(k);
                        self.asm.emit(movd(Operand::Mem(m), src));
                    }
                    ParamHome::Stack(_) => unreachable!(),
                }
            } else if let ParamHome::Reg(r) = self.param_home[i] {
                let si = i as u32 - self.regparm_count;
                let m = self.param_mem(si);
                self.asm.emit(movd(Operand::Reg(r), Operand::Mem(m)));
            }
        }
        let _ = reg_promoted_params;

        // Ground truth: named locals plus register-save spill slots (the
        // compiler's real frame layout lists both, like LLVM's analysis).
        let sp0_base = -(self.locals_size as i32)
            - 4 * self.nsaved() as i32
            - if self.has_frame_ptr { 4 } else { 0 };
        let mut vars: Vec<GtVar> = gt_vars
            .into_iter()
            .map(|(name, k, size)| GtVar {
                name,
                sp0_offset: sp0_base + k as i32,
                size,
                kind: GtVarKind::Named,
            })
            .collect();
        let mut save_off = -4;
        if self.has_frame_ptr {
            vars.push(GtVar {
                name: "__saved_ebp".into(),
                sp0_offset: save_off,
                size: 4,
                kind: GtVarKind::Spill,
            });
            save_off -= 4;
        }
        for r in &self.saved {
            vars.push(GtVar {
                name: format!("__saved_{r}"),
                sp0_offset: save_off,
                size: 4,
                kind: GtVarKind::Spill,
            });
            save_off -= 4;
        }
        self.frames.push(FrameLayout { func: 0, func_name: f.name.clone(), vars });

        self.epilogue = Some(self.asm.fresh_label());
        Ok(())
    }

    fn emit_frame_teardown(&mut self) {
        if self.has_frame_ptr && self.saved.is_empty() {
            self.asm.emit(Inst::Leave);
            return;
        }
        if self.locals_size > 0 {
            self.asm.emit(alu(
                AluOp::Add,
                Operand::Reg(Reg::Esp),
                Operand::Imm(self.locals_size as i32),
            ));
        }
        let saved = self.saved.clone();
        for r in saved.iter().rev() {
            self.asm.emit(Inst::Pop { dst: Operand::Reg(*r) });
        }
        if self.has_frame_ptr {
            self.asm.emit(Inst::Pop { dst: Operand::Reg(Reg::Ebp) });
        }
    }

    fn end_func(&mut self) {
        let epi = self.epilogue.take().expect("epilogue");
        self.asm.bind(epi);
        self.emit_frame_teardown();
        self.asm.emit(Inst::Ret { pop: 0 });
    }
}

struct Weights {
    locals: Vec<u32>,
    params: Vec<u32>,
}

fn use_weights(f: &crate::sema::Func) -> Weights {
    let mut w = Weights { locals: vec![0; f.locals.len()], params: vec![0; f.params.len()] };
    fn expr(e: &TExpr, d: u32, w: &mut Weights) {
        let bump = 1u32 << (2 * d.min(4));
        match &e.kind {
            TK::ReadLocal(v) => w.locals[*v] += bump,
            TK::ReadParam(i) => w.params[*i] += bump,
            TK::Bin(_, a, b) | TK::Cmp(_, a, b) | TK::LogAnd(a, b) | TK::LogOr(a, b) => {
                expr(a, d, w);
                expr(b, d, w);
            }
            TK::LogNot(a) | TK::Neg(a) | TK::BitNot(a) | TK::Load(a, _) | TK::Conv { e: a, .. } => {
                expr(a, d, w)
            }
            TK::Cond(c, a, b) => {
                expr(c, d, w);
                expr(a, d, w);
                expr(b, d, w);
            }
            TK::Assign { target, rhs, .. } => {
                match target {
                    Target::Local(v) => w.locals[*v] += bump,
                    Target::Param(i) => w.params[*i] += bump,
                    Target::Mem(addr, _) => expr(addr, d, w),
                }
                expr(rhs, d, w);
            }
            TK::IncDec { target, .. } => match target {
                Target::Local(v) => w.locals[*v] += bump,
                Target::Param(i) => w.params[*i] += bump,
                Target::Mem(addr, _) => expr(addr, d, w),
            },
            TK::Call { callee, args } => {
                if let Callee::Ind(t) = callee {
                    expr(t, d, w);
                }
                for a in args {
                    expr(a, d, w);
                }
            }
            TK::StructCopy { dst, src, .. } => {
                expr(dst, d, w);
                expr(src, d, w);
            }
            TK::Seq(effects, last) => {
                for x in effects {
                    expr(x, d, w);
                }
                expr(last, d, w);
            }
            _ => {}
        }
    }
    fn stmt(s: &TStmt, d: u32, w: &mut Weights) {
        match s {
            TStmt::Expr(e) | TStmt::Return(Some(e)) => expr(e, d, w),
            TStmt::If(c, t, e) => {
                expr(c, d, w);
                t.iter().for_each(|s| stmt(s, d, w));
                e.iter().for_each(|s| stmt(s, d, w));
            }
            TStmt::While(c, b) => {
                expr(c, d + 1, w);
                b.iter().for_each(|s| stmt(s, d + 1, w));
            }
            TStmt::DoWhile(b, c) => {
                b.iter().for_each(|s| stmt(s, d + 1, w));
                expr(c, d + 1, w);
            }
            TStmt::For(i, c, st, b) => {
                if let Some(i) = i {
                    stmt(i, d, w);
                }
                if let Some(c) = c {
                    expr(c, d + 1, w);
                }
                if let Some(st) = st {
                    expr(st, d + 1, w);
                }
                b.iter().for_each(|s| stmt(s, d + 1, w));
            }
            TStmt::Switch(e, arms) => {
                expr(e, d, w);
                for (_, b) in arms {
                    b.iter().for_each(|s| stmt(s, d, w));
                }
            }
            TStmt::Block(b) => b.iter().for_each(|s| stmt(s, d, w)),
            _ => {}
        }
    }
    for s in &f.body {
        stmt(s, 0, &mut w);
    }
    w
}

fn ck_to_cc(ck: CK) -> Cc {
    match ck {
        CK::Eq => Cc::E,
        CK::Ne => Cc::Ne,
        CK::Lt => Cc::L,
        CK::Le => Cc::Le,
        CK::Gt => Cc::G,
        CK::Ge => Cc::Ge,
    }
}

/// Generate an [`Image`] for an analyzed program under `profile`.
///
/// # Errors
/// Returns a [`CodegenError`] if the program has no `main` or uses an
/// unsupported construct.
pub fn generate(prog: &Program, profile: &Profile) -> Result<Image, CodegenError> {
    let Some(main_idx) = prog.func_index("main") else {
        return cerr("program has no `main`");
    };
    let mut cg = Codegen {
        prog,
        profile,
        asm: Asm::new(),
        func_labels: Vec::new(),
        imports: Vec::new(),
        data: prog.global_data.clone(),
        jump_tables: Vec::new(),
        frames: Vec::new(),
        cur: 0,
        local_home: Vec::new(),
        param_home: Vec::new(),
        locals_size: 0,
        saved: Vec::new(),
        has_frame_ptr: false,
        depth: 0,
        epilogue: None,
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
        stack_param_count: 0,
        regparm_count: 0,
    };
    cg.func_labels = prog.funcs.iter().map(|_| cg.asm.fresh_label()).collect();

    for fi in 0..prog.funcs.len() {
        cg.begin_func(fi)?;
        let body = &prog.funcs[fi].body;
        cg.gen_stmts(body)?;
        cg.end_func();
        debug_assert_eq!(cg.depth, 0, "push depth imbalance in {}", prog.funcs[fi].name);
    }

    let mut image = Image::new();
    let assembled = cg.asm.finish(image.text_base);
    image.entry = assembled.addr_of(cg.func_labels[main_idx]);
    image.text = assembled.bytes.clone();
    image.imports = cg.imports;
    image.pic = profile.pic;

    // Patch jump tables and record relocations.
    let mut relocs = Vec::new();
    for jt in &cg.jump_tables {
        for (i, l) in jt.labels.iter().enumerate() {
            let addr = assembled.addr_of(*l);
            let off = jt.data_off as usize + 4 * i;
            let value = if jt.relative {
                addr.wrapping_sub(DATA_BASE + jt.data_off)
            } else {
                relocs.push(CodeReloc { data_offset: off as u32 });
                addr
            };
            cg.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
        }
    }
    image.data = cg.data;
    image.code_relocs = relocs;

    // Symbols + ground truth with resolved addresses.
    for (fi, f) in prog.funcs.iter().enumerate() {
        let addr = assembled.addr_of(cg.func_labels[fi]);
        image.symbols.push(Symbol { name: f.name.clone(), addr });
        cg.frames[fi].func = addr;
    }
    image.frame_layouts = cg.frames;
    Ok(image)
}
