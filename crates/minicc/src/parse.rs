//! Recursive-descent parser for the mini-C language.

use crate::ast::*;
use crate::lex::{lex, LexError, SpannedTok, Tok};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { msg: e.msg, line: e.line }
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { msg: msg.into(), line: self.line() })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if matches!(self.peek(), Tok::Kw(q) if *q == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_num(&mut self) -> PResult<i32> {
        match self.bump() {
            Tok::Num(n) => Ok(n),
            Tok::Char(n) => Ok(n),
            Tok::Punct("-") => Ok(-self.expect_num()?),
            other => self.err(format!("expected number, found {other}")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw("int")
                | Tok::Kw("char")
                | Tok::Kw("short")
                | Tok::Kw("void")
                | Tok::Kw("struct")
        )
    }

    fn parse_base_type(&mut self) -> PResult<TypeName> {
        let base = match self.bump() {
            Tok::Kw("int") => TypeName::Int,
            Tok::Kw("char") => TypeName::Char,
            Tok::Kw("short") => TypeName::Short,
            Tok::Kw("void") => TypeName::Void,
            Tok::Kw("struct") => TypeName::Struct(self.expect_ident()?),
            other => return self.err(format!("expected type, found {other}")),
        };
        Ok(base)
    }

    fn parse_type(&mut self) -> PResult<TypeName> {
        let mut t = self.parse_base_type()?;
        while self.eat_punct("*") {
            t = TypeName::Ptr(Box::new(t));
        }
        Ok(t)
    }

    fn parse_unit(&mut self) -> PResult<Unit> {
        let mut unit = Unit::default();
        while *self.peek() != Tok::Eof {
            let is_static = self.eat_kw("static");
            // struct definition: `struct Name { ... };`
            if !is_static
                && *self.peek() == Tok::Kw("struct")
                && matches!(self.peek2(), Tok::Ident(_))
            {
                let save = self.pos;
                self.bump();
                let name = self.expect_ident()?;
                if self.eat_punct("{") {
                    let mut fields = Vec::new();
                    while !self.eat_punct("}") {
                        let ty = self.parse_type()?;
                        let fname = self.expect_ident()?;
                        let array = if self.eat_punct("[") {
                            let n = self.expect_num()?;
                            self.expect_punct("]")?;
                            Some(n as u32)
                        } else {
                            None
                        };
                        self.expect_punct(";")?;
                        fields.push((ty, fname, array));
                    }
                    self.expect_punct(";")?;
                    unit.structs.push(StructDef { name, fields });
                    continue;
                }
                self.pos = save;
            }
            let line = self.line();
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if *self.peek() == Tok::Punct("(") {
                unit.funcs.push(self.parse_func(ty, name, is_static, line)?);
            } else {
                if is_static {
                    // `static` globals behave like ordinary globals here.
                }
                let array = if self.eat_punct("[") {
                    let n = self.expect_num()?;
                    self.expect_punct("]")?;
                    Some(n as u32)
                } else {
                    None
                };
                let init = if self.eat_punct("=") { Some(self.parse_init()?) } else { None };
                self.expect_punct(";")?;
                unit.globals.push(GlobalDef { ty, name, array, init });
            }
        }
        Ok(unit)
    }

    fn parse_init(&mut self) -> PResult<Init> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Init::Str(s))
            }
            Tok::Punct("{") => {
                self.bump();
                let mut list = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        list.push(self.expect_num()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct("}")?;
                }
                Ok(Init::List(list))
            }
            _ => Ok(Init::Num(self.expect_num()?)),
        }
    }

    fn parse_func(
        &mut self,
        ret: TypeName,
        name: String,
        is_static: bool,
        line: u32,
    ) -> PResult<FuncDef> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.eat_kw("void") && *self.peek() == Tok::Punct(")") {
                self.bump();
            } else {
                loop {
                    let ty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push((ty, pname));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
        }
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.parse_stmt()?);
        }
        Ok(FuncDef { ret, name, params, body, is_static, line })
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.parse_stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.parse_stmt()?);
            let els = if self.eat_kw("else") { Some(Box::new(self.parse_stmt()?)) } else { None };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt::While(c, body));
        }
        if self.eat_kw("do") {
            let body = Box::new(self.parse_stmt()?);
            if !self.eat_kw("while") {
                return self.err("expected `while` after do-body");
            }
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, c));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.is_type_start() {
                let d = self.parse_decl()?;
                Some(Box::new(d))
            } else {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond =
                if *self.peek() == Tok::Punct(";") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(";")?;
            let step =
                if *self.peek() == Tok::Punct(")") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw("switch") {
            self.expect_punct("(")?;
            let scrut = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut arms: Vec<(Option<i32>, Vec<Stmt>)> = Vec::new();
            while !self.eat_punct("}") {
                let label = if self.eat_kw("case") {
                    let v = self.expect_num()?;
                    self.expect_punct(":")?;
                    Some(v)
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    None
                } else {
                    return self.err("expected `case` or `default` in switch");
                };
                let mut body = Vec::new();
                while !matches!(self.peek(), Tok::Kw("case") | Tok::Kw("default") | Tok::Punct("}"))
                {
                    body.push(self.parse_stmt()?);
                }
                arms.push((label, body));
            }
            return Ok(Stmt::Switch(scrut, arms));
        }
        if self.eat_kw("return") {
            let v = if *self.peek() == Tok::Punct(";") { None } else { Some(self.parse_expr()?) };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(v));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.is_type_start() {
            return self.parse_decl();
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Parse a declaration statement, consuming the trailing `;`.
    fn parse_decl(&mut self) -> PResult<Stmt> {
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        let array = if self.eat_punct("[") {
            let n = self.expect_num()?;
            self.expect_punct("]")?;
            Some(n as u32)
        } else {
            None
        };
        let init = if self.eat_punct("=") { Some(self.parse_expr()?) } else { None };
        self.expect_punct(";")?;
        Ok(Stmt::Decl { ty, name, array, init })
    }

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> PResult<Expr> {
        let lhs = self.parse_ternary()?;
        for (tok, op) in [
            ("=", None),
            ("+=", Some("+")),
            ("-=", Some("-")),
            ("*=", Some("*")),
            ("/=", Some("/")),
            ("%=", Some("%")),
            ("&=", Some("&")),
            ("|=", Some("|")),
            ("^=", Some("^")),
            ("<<=", Some("<<")),
            (">>=", Some(">>")),
        ] {
            if self.eat_punct(tok) {
                let rhs = self.parse_assign()?;
                return Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn parse_ternary(&mut self) -> PResult<Expr> {
        let c = self.parse_bin(0)?;
        if self.eat_punct("?") {
            let a = self.parse_expr()?;
            self.expect_punct(":")?;
            let b = self.parse_ternary()?;
            return Ok(Expr::Ternary(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }

    fn parse_bin(&mut self, min_prec: u8) -> PResult<Expr> {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if min_prec as usize >= LEVELS.len() {
            return self.parse_unary();
        }
        let mut lhs = self.parse_bin(min_prec + 1)?;
        loop {
            let mut matched = None;
            for op in LEVELS[min_prec as usize] {
                if *self.peek() == Tok::Punct(op) {
                    matched = Some(*op);
                    break;
                }
            }
            let Some(op) = matched else { break };
            self.bump();
            let rhs = self.parse_bin(min_prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        for op in ["-", "!", "~", "*", "&"] {
            if *self.peek() == Tok::Punct(op) {
                self.bump();
                let e = self.parse_unary()?;
                return Ok(Expr::Un(op, Box::new(e)));
            }
        }
        if self.eat_punct("++") {
            let lv = self.parse_unary()?;
            return Ok(Expr::IncDec { pre: true, inc: true, lv: Box::new(lv) });
        }
        if self.eat_punct("--") {
            let lv = self.parse_unary()?;
            return Ok(Expr::IncDec { pre: true, inc: false, lv: Box::new(lv) });
        }
        if *self.peek() == Tok::Kw("sizeof") {
            self.bump();
            if *self.peek() == Tok::Punct("(") {
                // Could be sizeof(type) or sizeof(expr).
                let save = self.pos;
                self.bump();
                if self.is_type_start() {
                    let ty = self.parse_type()?;
                    let array = if self.eat_punct("[") {
                        let n = self.expect_num()?;
                        self.expect_punct("]")?;
                        Some(n as u32)
                    } else {
                        None
                    };
                    self.expect_punct(")")?;
                    return Ok(Expr::SizeofType(ty, array));
                }
                self.pos = save;
            }
            let e = self.parse_unary()?;
            return Ok(Expr::SizeofExpr(Box::new(e)));
        }
        // Cast: `(type) expr`.
        if *self.peek() == Tok::Punct("(") {
            let save = self.pos;
            self.bump();
            if self.is_type_start() {
                let ty = self.parse_type()?;
                if self.eat_punct(")") {
                    let e = self.parse_unary()?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
            }
            self.pos = save;
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("[") {
                let i = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(i));
            } else if self.eat_punct(".") {
                let f = self.expect_ident()?;
                e = Expr::Member(Box::new(e), f, false);
            } else if self.eat_punct("->") {
                let f = self.expect_ident()?;
                e = Expr::Member(Box::new(e), f, true);
            } else if self.eat_punct("++") {
                e = Expr::IncDec { pre: false, inc: true, lv: Box::new(e) };
            } else if self.eat_punct("--") {
                e = Expr::IncDec { pre: false, inc: false, lv: Box::new(e) };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(args)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Char(c) => Ok(Expr::Num(c)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    if name == "__icall" {
                        let mut args = self.parse_args()?;
                        if args.is_empty() {
                            return self.err("__icall needs a target");
                        }
                        let target = args.remove(0);
                        return Ok(Expr::ICall(Box::new(target), args));
                    }
                    let args = self.parse_args()?;
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(ParseError { msg: format!("expected expression, found {other}"), line }),
        }
    }
}

/// Parse a full translation unit.
///
/// # Errors
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let unit = parse(
            r#"
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 10; i++) acc += fib(i);
                while (acc > 100) acc -= 3;
                return acc;
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 2);
        assert_eq!(unit.funcs[0].name, "fib");
        assert_eq!(unit.funcs[1].params.len(), 0);
    }

    #[test]
    fn parses_structs_globals_and_arrays() {
        let unit = parse(
            r#"
            struct point { int x; int y; int tags[4]; };
            int table[16];
            char msg[8] = "hi";
            int seed = 0x1234;
            int weights[3] = { 1, -2, 3 };
            int use(struct point *p) { return p->x + p->tags[1]; }
            "#,
        )
        .unwrap();
        assert_eq!(unit.structs.len(), 1);
        assert_eq!(unit.structs[0].fields.len(), 3);
        assert_eq!(unit.globals.len(), 4);
        assert!(matches!(unit.globals[3].init, Some(Init::List(ref l)) if l.len() == 3));
    }

    #[test]
    fn parses_switch_and_sizeof() {
        let unit = parse(
            r#"
            int classify(int c) {
                switch (c) {
                    case 0: return 10;
                    case 1:
                    case 2: return 20;
                    default: return sizeof(int[4]);
                }
            }
            "#,
        )
        .unwrap();
        let Stmt::Switch(_, arms) = &unit.funcs[0].body[0] else { panic!() };
        assert_eq!(arms.len(), 4);
        assert_eq!(arms[3].0, None);
    }

    #[test]
    fn parses_pointers_casts_and_icall() {
        let unit = parse(
            r#"
            int add(int a, int b) { return a + b; }
            int main() {
                int fp = (int)&add;
                int *p;
                char c = (char)300;
                return __icall(fp, 1, 2) + c + *p;
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 2);
    }

    #[test]
    fn precedence_is_c_like() {
        // 1 + 2 * 3 == 7 shape: Bin("+", 1, Bin("*", 2, 3))
        let unit = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Bin("+", _, rhs))) = &unit.funcs[0].body[0] else { panic!() };
        assert!(matches!(**rhs, Expr::Bin("*", _, _)));
    }

    #[test]
    fn ternary_and_logical() {
        parse("int f(int x) { return x > 0 && x < 10 ? x : -x; }").unwrap();
        parse("int g(int x) { return x || x && x; }").unwrap();
    }

    #[test]
    fn do_while_and_incdec() {
        let unit = parse("int f() { int i = 0; do { i++; } while (i < 3); return --i; }").unwrap();
        assert!(matches!(unit.funcs[0].body[1], Stmt::DoWhile(..)));
    }

    #[test]
    fn error_reporting_has_lines() {
        let e = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
