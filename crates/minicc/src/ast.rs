//! Untyped syntax tree produced by the parser.

/// A syntactic type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeName {
    /// `int`.
    Int,
    /// `char`.
    Char,
    /// `short`.
    Short,
    /// `void` (function returns only).
    Void,
    /// `struct name`.
    Struct(String),
    /// Pointer to a type.
    Ptr(Box<TypeName>),
}

/// A struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields: `(type, name, optional array length)`.
    pub fields: Vec<(TypeName, String, Option<u32>)>,
}

/// A global variable initializer.
#[derive(Debug, Clone)]
pub enum Init {
    /// Scalar initializer.
    Num(i32),
    /// String initializer for `char` arrays / pointers.
    Str(Vec<u8>),
    /// Brace-enclosed list of integers.
    List(Vec<i32>),
}

/// A global variable definition.
#[derive(Debug, Clone)]
pub struct GlobalDef {
    /// Element type.
    pub ty: TypeName,
    /// Name.
    pub name: String,
    /// Array length, if declared as an array.
    pub array: Option<u32>,
    /// Initializer.
    pub init: Option<Init>,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Return type.
    pub ret: TypeName,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(TypeName, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Declared `static` (internal linkage; optimizers may use custom
    /// calling conventions, which is exactly the ABI deviation the paper's
    /// §4.1 warns heuristic lifters about).
    pub is_static: bool,
    /// Source line of the definition.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration.
    Decl {
        /// Element type.
        ty: TypeName,
        /// Name.
        name: String,
        /// Array length, if any.
        array: Option<u32>,
        /// Initializer expression.
        init: Option<Expr>,
    },
    /// `if` / `else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while` loop.
    While(Expr, Box<Stmt>),
    /// `do ... while` loop.
    DoWhile(Box<Stmt>, Expr),
    /// `for` loop; the init clause may be a declaration.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `switch` with `(case value, body)` arms; `None` is `default`.
    Switch(Expr, Vec<(Option<i32>, Vec<Stmt>)>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Braced block.
    Block(Vec<Stmt>),
    /// Empty statement.
    Empty,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// String literal.
    Str(Vec<u8>),
    /// Name reference.
    Ident(String),
    /// Binary operator (`"+"`, `"<"`, `"&&"`, ...).
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound assignment.
    Assign(Option<&'static str>, Box<Expr>, Box<Expr>),
    /// Unary operator (`"-"`, `"!"`, `"~"`, `"*"`, `"&"`).
    Un(&'static str, Box<Expr>),
    /// `++`/`--`.
    IncDec {
        /// Prefix form.
        pre: bool,
        /// Increment (vs decrement).
        inc: bool,
        /// The lvalue.
        lv: Box<Expr>,
    },
    /// Direct call by name (user function or external).
    Call(String, Vec<Expr>),
    /// `__icall(fnptr, args...)` — indirect call through a code address.
    ICall(Box<Expr>, Vec<Expr>),
    /// Array indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Member access; `arrow` selects `->`.
    Member(Box<Expr>, String, bool),
    /// `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Type cast.
    Cast(TypeName, Box<Expr>),
    /// `sizeof(type)` or `sizeof(type[n])`.
    SizeofType(TypeName, Option<u32>),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}
