//! IR verifier: structural and SSA dominance checks.
//!
//! Run after every transform in tests; a transform that silently produces
//! uses that are not dominated by their definitions is the classic source
//! of miscompiles in this kind of pipeline.

use crate::module::{Function, InstKind, Module};
use crate::types::{BlockId, Val};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the failure occurred.
    pub func: String,
    /// Description of the failure.
    pub what: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.func, self.what)
    }
}

impl std::error::Error for VerifyError {}

/// Compute immediate dominators over the reachable blocks using the simple
/// iterative algorithm (Cooper–Harvey–Kennedy). Returns `idom[b]`, with the
/// entry its own idom; unreachable blocks map to `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = f.rpo();
    let mut order = vec![usize::MAX; f.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        order[b.index()] = i;
    }
    let preds = f.preds();
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[f.entry.index()] = Some(f.entry);

    let intersect =
        |idom: &Vec<Option<BlockId>>, order: &Vec<usize>, mut a: BlockId, mut b: BlockId| {
            while a != b {
                while order[a.index()] > order[b.index()] {
                    a = idom[a.index()].expect("processed");
                }
                while order[b.index()] > order[a.index()] {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// `true` if block `a` dominates block `b`.
fn dominates(idom: &[Option<BlockId>], entry: BlockId, a: BlockId, mut b: BlockId) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == entry {
            return false;
        }
        match idom[b.index()] {
            Some(p) if p != b => b = p,
            _ => return false,
        }
    }
}

/// Verify one function.
///
/// # Errors
/// Returns the first structural or dominance violation found.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let err = |what: String| VerifyError { func: f.name.clone(), what };

    // Structural checks.
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut bad = None;
        b.term.for_each_succ(|s| {
            if s.index() >= f.blocks.len() {
                bad = Some(s);
            }
        });
        if let Some(s) = bad {
            return Err(err(format!("bb{bi} branches to nonexistent {s}")));
        }
        for &i in &b.insts {
            if i.index() >= f.insts.len() {
                return Err(err(format!("bb{bi} references nonexistent inst {i}")));
            }
        }
    }

    // Every instruction appears in at most one block, once.
    let mut placed = vec![false; f.insts.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        for &i in &b.insts {
            if placed[i.index()] {
                return Err(err(format!("{i} placed twice (second in bb{bi})")));
            }
            placed[i.index()] = true;
        }
    }

    // Operand references are to valid entities.
    let check_val = |v: Val| -> Result<(), VerifyError> {
        match v {
            Val::Inst(i) if i.index() >= f.insts.len() => {
                Err(err(format!("use of nonexistent {i}")))
            }
            Val::Param(p) if p >= f.num_params => {
                Err(err(format!("use of nonexistent param {p} (have {})", f.num_params)))
            }
            _ => Ok(()),
        }
    };
    for b in &f.blocks {
        for &i in &b.insts {
            let mut res = Ok(());
            f.inst(i).for_each_operand(|v| {
                if res.is_ok() {
                    res = check_val(v);
                }
            });
            res?;
            match f.inst(i) {
                InstKind::Call { f: callee, .. } if callee.index() >= m.funcs.len() => {
                    return Err(err(format!("call to nonexistent {callee}")));
                }
                InstKind::GlobalAddr { g } if g.index() >= m.globals.len() => {
                    return Err(err(format!("address of nonexistent {g}")));
                }
                InstKind::FuncAddr { f: callee } if callee.index() >= m.funcs.len() => {
                    return Err(err(format!("address of nonexistent {callee}")));
                }
                InstKind::CallExt { ext, .. } | InstKind::CallExtRaw { ext, .. }
                    if *ext as usize >= m.externs.len() =>
                {
                    return Err(err(format!("call to nonexistent extern #{ext}")));
                }
                _ => {}
            }
        }
        let mut res = Ok(());
        b.term.for_each_operand(|v| {
            if res.is_ok() {
                res = check_val(v);
            }
        });
        res?;
    }

    // Phi nodes: must be at the head of their block, with exactly one
    // incoming per predecessor.
    let preds = f.preds();
    let rpo = f.rpo();
    let reachable: Vec<bool> = {
        let mut r = vec![false; f.blocks.len()];
        for &b in &rpo {
            r[b.index()] = true;
        }
        r
    };
    for &b in &rpo {
        let block = &f.blocks[b.index()];
        let mut past_phis = false;
        for &i in &block.insts {
            match f.inst(i) {
                InstKind::Phi { incomings } => {
                    if past_phis {
                        return Err(err(format!("{i}: phi not at block head in {b}")));
                    }
                    let mut ps: Vec<BlockId> =
                        preds[b.index()].iter().copied().filter(|p| reachable[p.index()]).collect();
                    ps.sort();
                    ps.dedup();
                    let mut inc: Vec<BlockId> = incomings
                        .iter()
                        .map(|(p, _)| *p)
                        .filter(|p| reachable[p.index()])
                        .collect();
                    inc.sort();
                    inc.dedup();
                    if ps != inc {
                        return Err(err(format!(
                            "{i} in {b}: phi incomings {inc:?} do not match predecessors {ps:?}"
                        )));
                    }
                }
                _ => past_phis = true,
            }
        }
    }

    // Dominance: defs dominate uses.
    let idom = dominators(f);
    let mut def_block: Vec<Option<BlockId>> = vec![None; f.insts.len()];
    let mut def_pos: Vec<usize> = vec![0; f.insts.len()];
    for &b in &rpo {
        for (pos, &i) in f.blocks[b.index()].insts.iter().enumerate() {
            def_block[i.index()] = Some(b);
            def_pos[i.index()] = pos;
        }
    }
    let check_dom = |use_block: BlockId,
                     use_pos: usize,
                     v: Val,
                     is_phi_from: Option<BlockId>|
     -> Result<(), VerifyError> {
        let Val::Inst(d) = v else { return Ok(()) };
        let Some(db) = def_block[d.index()] else {
            return Err(err(format!("use of unplaced {d}")));
        };
        match is_phi_from {
            Some(pred) => {
                // Incoming value must dominate the predecessor's terminator.
                if !dominates(&idom, f.entry, db, pred) {
                    return Err(err(format!(
                        "{d} (def in {db}) does not dominate phi edge from {pred}"
                    )));
                }
            }
            None => {
                if db == use_block {
                    if def_pos[d.index()] >= use_pos {
                        return Err(err(format!("{d} used before definition in {db}")));
                    }
                } else if !dominates(&idom, f.entry, db, use_block) {
                    return Err(err(format!(
                        "{d} (def in {db}) does not dominate use in {use_block}"
                    )));
                }
            }
        }
        Ok(())
    };
    for &b in &rpo {
        let block = &f.blocks[b.index()];
        for (pos, &i) in block.insts.iter().enumerate() {
            let mut res = Ok(());
            match f.inst(i) {
                InstKind::Phi { incomings } => {
                    for (p, v) in incomings {
                        if reachable[p.index()] && res.is_ok() {
                            res = check_dom(b, pos, *v, Some(*p));
                        }
                    }
                }
                k => k.for_each_operand(|v| {
                    if res.is_ok() {
                        res = check_dom(b, pos, v, None);
                    }
                }),
            }
            res?;
        }
        let mut res = Ok(());
        let term_pos = block.insts.len();
        block.term.for_each_operand(|v| {
            if res.is_ok() {
                res = check_dom(b, term_pos, v, None);
            }
        });
        res?;
    }

    Ok(())
}

/// Verify every function of a module.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_function(m, f)?;
    }
    Ok(())
}

/// The id returned by [`dominators`] for convenient external use.
pub type IdomMap = Vec<Option<BlockId>>;

/// Re-exported helper: does block `a` dominate block `b` under `idom`?
pub fn block_dominates(idom: &IdomMap, entry: BlockId, a: BlockId, b: BlockId) -> bool {
    dominates(idom, entry, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Block, Term};
    use crate::types::{BinOp, CmpOp, FuncId, InstId};

    fn linear() -> (Module, FuncId) {
        let mut m = Module::new();
        let mut f = Function::new("f");
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) },
        );
        f.blocks[0].term = Term::Ret(Some(Val::Inst(a)));
        let id = m.add_func(f);
        (m, id)
    }

    #[test]
    fn valid_function_passes() {
        let (m, id) = linear();
        verify_function(&m, &m.funcs[id.index()]).unwrap();
    }

    #[test]
    fn use_before_def_fails() {
        let mut m = Module::new();
        let mut f = Function::new("f");
        // %0 uses %1 which is defined after it.
        let a =
            f.add_inst(InstKind::Bin { op: BinOp::Add, a: Val::Inst(InstId(1)), b: Val::Const(1) });
        let b = f.add_inst(InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(1) });
        f.blocks[0].insts = vec![a, b];
        f.blocks[0].term = Term::Ret(None);
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn def_must_dominate_use_across_blocks() {
        let mut m = Module::new();
        let mut f = Function::new("f");
        let side = f.add_block();
        let join = f.add_block();
        let c = f.push_inst(
            f.entry,
            InstKind::Cmp { op: CmpOp::Eq, a: Val::Param(0), b: Val::Const(0) },
        );
        f.num_params = 1;
        f.blocks[f.entry.index()].term = Term::CondBr { c: Val::Inst(c), t: side, f: join };
        let d =
            f.push_inst(side, InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(1) });
        f.blocks[side.index()].term = Term::Br(join);
        // join uses %d but entry can reach join directly — not dominated.
        f.blocks[join.index()].term = Term::Ret(Some(Val::Inst(d)));
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.what.contains("dominate"), "{e}");
    }

    #[test]
    fn phi_incomings_must_match_preds() {
        let mut m = Module::new();
        let mut f = Function::new("f");
        let next = f.add_block();
        f.blocks[f.entry.index()].term = Term::Br(next);
        let phi = f.push_inst(
            next,
            InstKind::Phi { incomings: vec![(BlockId(1), Val::Const(0))] }, // wrong pred
        );
        f.blocks[next.index()].term = Term::Ret(Some(Val::Inst(phi)));
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn branch_to_nonexistent_block_fails() {
        let mut m = Module::new();
        let mut f = Function::new("f");
        f.blocks[0].term = Term::Br(BlockId(9));
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn dominators_of_diamond() {
        let mut f = Function::new("d");
        let t = f.add_block();
        let e = f.add_block();
        let j = f.add_block();
        f.blocks[0].term = Term::CondBr { c: Val::Const(1), t, f: e };
        f.blocks[t.index()].term = Term::Br(j);
        f.blocks[e.index()].term = Term::Br(j);
        f.blocks[j.index()].term = Term::Ret(None);
        let idom = dominators(&f);
        assert_eq!(idom[j.index()], Some(f.entry));
        assert_eq!(idom[t.index()], Some(f.entry));
        assert!(block_dominates(&idom, f.entry, f.entry, j));
        assert!(!block_dominates(&idom, f.entry, t, j));
    }

    #[test]
    fn placed_twice_fails() {
        let (mut m, id) = linear();
        let f = &mut m.funcs[id.index()];
        let i = f.blocks[0].insts[0];
        f.blocks.push(Block { insts: vec![i], term: Term::Ret(None), orig_addr: None });
        // Unreachable block, but double placement is still structural error.
        assert!(verify_module(&m).is_err());
    }
}
