//! Core identifier and operator types of the IR.

use std::fmt;

/// Memory access width. All SSA values are 32 bits wide; narrow loads
/// zero-extend and narrow stores truncate, so `Ty` only matters at memory
/// operations (and for `ext`/`sext` casts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 1 byte.
    I8,
    /// 2 bytes.
    I16,
    /// 4 bytes.
    I32,
}

impl Ty {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
        }
    }

    /// Mask selecting the low `bytes()` of a 32-bit value.
    pub fn mask(self) -> u32 {
        match self {
            Ty::I8 => 0xff,
            Ty::I16 => 0xffff,
            Ty::I32 => u32::MAX,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
        })
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of an instruction within its function's arena.
    InstId,
    "%"
);
id_type!(
    /// Index of a basic block within its function.
    BlockId,
    "bb"
);
id_type!(
    /// Index of a function within the module.
    FuncId,
    "@f"
);
id_type!(
    /// Index of a global within the module.
    GlobalId,
    "@g"
);

/// An SSA value: an instruction result, a function parameter, or a
/// constant. All values are 32-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Val {
    /// Result of the instruction.
    Inst(InstId),
    /// The n-th parameter of the enclosing function.
    Param(u32),
    /// A 32-bit constant.
    Const(i32),
}

impl Val {
    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Val::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// The constant, if this value is a constant.
    pub fn as_const(self) -> Option<i32> {
        match self {
            Val::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Inst(i) => write!(f, "{i}"),
            Val::Param(p) => write!(f, "$arg{p}"),
            Val::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<i32> for Val {
    fn from(c: i32) -> Val {
        Val::Const(c)
    }
}

impl From<InstId> for Val {
    fn from(i: InstId) -> Val {
        Val::Inst(i)
    }
}

/// Binary integer operation. All operate on 32-bit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division (traps on zero / overflow).
    DivS,
    /// Signed remainder (traps on zero / overflow).
    RemS,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amount masked to 0..32).
    Shl,
    /// Logical right shift.
    ShrL,
    /// Arithmetic right shift.
    ShrA,
}

impl BinOp {
    /// `true` if `a op b == b op a`.
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Constant-fold the operation; `None` for division traps.
    pub fn eval(self, a: u32, b: u32) -> Option<u32> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivS => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 || (a == i32::MIN && b == -1) {
                    return None;
                }
                (a / b) as u32
            }
            BinOp::RemS => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 || (a == i32::MIN && b == -1) {
                    return None;
                }
                (a % b) as u32
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b & 31),
            BinOp::ShrL => a.wrapping_shr(b & 31),
            BinOp::ShrA => ((a as i32).wrapping_shr(b & 31)) as u32,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivS => "sdiv",
            BinOp::RemS => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::ShrL => "lshr",
            BinOp::ShrA => "ashr",
        })
    }
}

/// Integer comparison predicate; result is 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

impl CmpOp {
    /// Evaluate the predicate.
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::SLt => sa < sb,
            CmpOp::SLe => sa <= sb,
            CmpOp::SGt => sa > sb,
            CmpOp::SGe => sa >= sb,
            CmpOp::ULt => a < b,
            CmpOp::ULe => a <= b,
            CmpOp::UGt => a > b,
            CmpOp::UGe => a >= b,
        }
    }

    /// Swap operand order (`a op b` ⇔ `b op.swapped() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::SLt => CmpOp::SGt,
            CmpOp::SLe => CmpOp::SGe,
            CmpOp::SGt => CmpOp::SLt,
            CmpOp::SGe => CmpOp::SLe,
            CmpOp::ULt => CmpOp::UGt,
            CmpOp::ULe => CmpOp::UGe,
            CmpOp::UGt => CmpOp::ULt,
            CmpOp::UGe => CmpOp::ULe,
        }
    }

    /// The negated predicate.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::SLt => CmpOp::SGe,
            CmpOp::SLe => CmpOp::SGt,
            CmpOp::SGt => CmpOp::SLe,
            CmpOp::SGe => CmpOp::SLt,
            CmpOp::ULt => CmpOp::UGe,
            CmpOp::ULe => CmpOp::UGt,
            CmpOp::UGt => CmpOp::ULe,
            CmpOp::UGe => CmpOp::ULt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::SLt => "slt",
            CmpOp::SLe => "sle",
            CmpOp::SGt => "sgt",
            CmpOp::SGe => "sge",
            CmpOp::ULt => "ult",
            CmpOp::ULe => "ule",
            CmpOp::UGt => "ugt",
            CmpOp::UGe => "uge",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_division_guards() {
        assert_eq!(BinOp::DivS.eval(7, 2), Some(3));
        assert_eq!(BinOp::DivS.eval(1, 0), None);
        assert_eq!(BinOp::DivS.eval(i32::MIN as u32, -1i32 as u32), None);
        assert_eq!(BinOp::RemS.eval(7, 2), Some(1));
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(BinOp::Shl.eval(1, 33), Some(2));
        assert_eq!(BinOp::ShrA.eval(0x8000_0000, 31), Some(0xffff_ffff));
        assert_eq!(BinOp::ShrL.eval(0x8000_0000, 31), Some(1));
    }

    #[test]
    fn cmp_signedness() {
        assert!(CmpOp::SLt.eval(-1i32 as u32, 1));
        assert!(!CmpOp::ULt.eval(-1i32 as u32, 1));
        for op in [CmpOp::Eq, CmpOp::SLt, CmpOp::UGe, CmpOp::Ne] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
            assert_eq!(op.eval(3, 8), op.swapped().eval(8, 3));
            assert_eq!(op.eval(3, 8), !op.negated().eval(3, 8));
        }
    }

    #[test]
    fn val_constructors() {
        assert_eq!(Val::from(5), Val::Const(5));
        assert_eq!(Val::Const(5).as_const(), Some(5));
        assert_eq!(Val::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert_eq!(Val::Param(1).as_const(), None);
        assert_eq!(format!("{}", Val::Inst(InstId(3))), "%3");
        assert_eq!(format!("{}", Val::Param(0)), "$arg0");
    }
}
