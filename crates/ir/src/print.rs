//! Textual IR printer (for debugging, test assertions and documentation).

use crate::module::{Function, InstKind, Module, Term};
use crate::types::{InstId, Val};
use std::fmt::Write;

fn fmt_args(args: &[Val]) -> String {
    args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
}

/// Render one instruction as text.
pub fn inst_to_string(f: &Function, id: InstId) -> String {
    let k = f.inst(id);
    let lhs = if k.has_result() { format!("{id} = ") } else { String::new() };
    let rhs = match k {
        InstKind::Bin { op, a, b } => format!("{op} {a}, {b}"),
        InstKind::Cmp { op, a, b } => format!("icmp {op} {a}, {b}"),
        InstKind::Ext { signed, from, v } => {
            format!("{} {from} {v}", if *signed { "sext" } else { "zext" })
        }
        InstKind::Load { ty, addr } => format!("load {ty}, {addr}"),
        InstKind::Store { ty, addr, val } => format!("store {ty} {val}, {addr}"),
        InstKind::Alloca { size, align, name } => {
            format!("alloca {size}, align {align} ; \"{name}\"")
        }
        InstKind::GlobalAddr { g } => format!("globaladdr {g}"),
        InstKind::FuncAddr { f } => format!("funcaddr {f}"),
        InstKind::Call { f, args } => format!("call {f}({})", fmt_args(args)),
        InstKind::CallInd { target, args } => {
            format!("call_ind {target}({})", fmt_args(args))
        }
        InstKind::CallExtRaw { ext, sp } => format!("callext_raw #{ext} sp={sp}"),
        InstKind::CallExt { ext, args } => format!("callext #{ext}({})", fmt_args(args)),
        InstKind::Select { c, a, b } => format!("select {c}, {a}, {b}"),
        InstKind::Phi { incomings } => {
            let parts: Vec<String> = incomings.iter().map(|(b, v)| format!("[{b}: {v}]")).collect();
            format!("phi {}", parts.join(", "))
        }
        InstKind::Copy { v } => format!("copy {v}"),
    };
    format!("{lhs}{rhs}")
}

fn term_to_string(t: &Term) -> String {
    match t {
        Term::Br(b) => format!("br {b}"),
        Term::CondBr { c, t, f } => format!("condbr {c}, {t}, {f}"),
        Term::Switch { v, cases, default } => {
            let parts: Vec<String> = cases.iter().map(|(c, b)| format!("{c}: {b}")).collect();
            format!("switch {v} [{}] default {default}", parts.join(", "))
        }
        Term::Ret(Some(v)) => format!("ret {v}"),
        Term::Ret(None) => "ret".to_string(),
        Term::Trap(c) => format!("trap {c}"),
        Term::Unreachable => "unreachable".to_string(),
    }
}

/// Render one function as text, reachable blocks only, in RPO.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let addr = f.orig_addr.map(|a| format!(" @ {a:#x}")).unwrap_or_default();
    let _ = writeln!(out, "fn {}({} params){addr} {{", f.name, f.num_params);
    for b in f.rpo() {
        let block = &f.blocks[b.index()];
        let tag = block.orig_addr.map(|a| format!(" ; {a:#x}")).unwrap_or_default();
        let _ = writeln!(out, "{b}:{tag}");
        for &i in &block.insts {
            let _ = writeln!(out, "  {}", inst_to_string(f, i));
        }
        let _ = writeln!(out, "  {}", term_to_string(&block.term));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a whole module as text.
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    for (i, g) in m.globals.iter().enumerate() {
        let fixed = g.fixed_addr.map(|a| format!(" @ {a:#x}")).unwrap_or_default();
        let _ = writeln!(out, "global @g{i} \"{}\" size={}{fixed}", g.name, g.size);
    }
    for (i, e) in m.externs.iter().enumerate() {
        let _ = writeln!(out, "extern #{i} = {e}");
    }
    for f in &m.funcs {
        out.push('\n');
        out.push_str(&function_to_string(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Global, GlobalKind};
    use crate::types::{BinOp, Ty};

    #[test]
    fn prints_module() {
        let mut m = Module::new();
        m.add_global(Global {
            name: "data".into(),
            size: 16,
            init: vec![],
            fixed_addr: Some(0x400000),
            kind: GlobalKind::Data,
        });
        m.extern_index("printf");
        let mut f = Function::new("main");
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) },
        );
        let _s = f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Const(0x400000), val: Val::Inst(a) },
        );
        f.blocks[0].term = Term::Ret(Some(Val::Inst(a)));
        m.add_func(f);
        let text = module_to_string(&m);
        assert!(text.contains("global @g0 \"data\" size=16 @ 0x400000"));
        assert!(text.contains("extern #0 = printf"));
        assert!(text.contains("%0 = add 1, 2"));
        assert!(text.contains("store i32 %0, 4194304"));
        assert!(text.contains("ret %0"));
    }
}
