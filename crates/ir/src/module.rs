//! IR containers: modules, functions, blocks and instructions.

use crate::types::{BinOp, BlockId, CmpOp, FuncId, GlobalId, InstId, Ty, Val};

/// Distinguishes lifter-created globals so refinement passes can find them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalKind {
    /// Ordinary data (e.g. the original binary's data segment).
    Data,
    /// A virtual CPU register cell (one per machine register).
    VcpuReg(u8),
    /// The emulated stack byte array (paper Fig. 1).
    EmuStack,
}

/// A module-level global variable.
#[derive(Debug, Clone)]
pub struct Global {
    /// Name (for printing).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents (zero-filled if shorter than `size`).
    pub init: Vec<u8>,
    /// Fixed load address, if the global must live at a specific place
    /// (the original data segment keeps its address so absolute pointers
    /// embedded in lifted code stay valid).
    pub fixed_addr: Option<u32>,
    /// What the global represents.
    pub kind: GlobalKind,
}

/// An instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Binary ALU operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// Comparison producing 0/1.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// Zero-extending (`signed == false`) or sign-extending load of the low
    /// `from` bytes of a value.
    Ext {
        /// Interpret low bits as signed.
        signed: bool,
        /// Source width.
        from: Ty,
        /// Operand.
        v: Val,
    },
    /// Load `ty` bytes at `addr` (zero-extended to 32 bits).
    Load {
        /// Access width.
        ty: Ty,
        /// Address.
        addr: Val,
    },
    /// Store the low `ty` bytes of `val` to `addr`. No result.
    Store {
        /// Access width.
        ty: Ty,
        /// Address.
        addr: Val,
        /// Value to store.
        val: Val,
    },
    /// Reserve `size` bytes of stack in this function's frame; the result
    /// is the address. Symbolization introduces these (one per recovered
    /// stack variable).
    Alloca {
        /// Object size in bytes.
        size: u32,
        /// Required alignment (power of two).
        align: u32,
        /// Debug name.
        name: String,
    },
    /// Address of a global.
    GlobalAddr {
        /// The global.
        g: GlobalId,
    },
    /// Address of a function (for indirect-call tables). Evaluates to the
    /// function's original entry address.
    FuncAddr {
        /// The function.
        f: FuncId,
    },
    /// Direct call.
    Call {
        /// Callee.
        f: FuncId,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Indirect call through a code address (resolved via the module's
    /// address→function map).
    CallInd {
        /// Target code address.
        target: Val,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Call of an external with *unrecovered* arguments: the callee reads
    /// them from memory at `sp` (BinRec's stack switching, §5.2). The
    /// variadic-call refinement replaces these with [`InstKind::CallExt`].
    CallExtRaw {
        /// Import index.
        ext: u16,
        /// Stack pointer at the call (arguments at `[sp]`, `[sp+4]`, ...).
        sp: Val,
    },
    /// Call of an external with explicit arguments.
    CallExt {
        /// Import index.
        ext: u16,
        /// Arguments.
        args: Vec<Val>,
    },
    /// `c ? a : b` (c compared against 0).
    Select {
        /// Condition.
        c: Val,
        /// Value if nonzero.
        a: Val,
        /// Value if zero.
        b: Val,
    },
    /// SSA phi node.
    Phi {
        /// `(predecessor block, incoming value)` pairs.
        incomings: Vec<(BlockId, Val)>,
    },
    /// Identity (used as a placeholder during transforms; DCE removes it).
    Copy {
        /// The forwarded value.
        v: Val,
    },
}

impl InstKind {
    /// `true` if the instruction produces a value some other instruction
    /// may use.
    pub fn has_result(&self) -> bool {
        !matches!(self, InstKind::Store { .. })
    }

    /// `true` if the instruction has side effects and must not be removed
    /// even when its result is unused.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. }
                | InstKind::Call { .. }
                | InstKind::CallInd { .. }
                | InstKind::CallExtRaw { .. }
                | InstKind::CallExt { .. }
        )
    }

    /// `true` if removing the instruction can change observable behaviour
    /// through memory or control (loads are included: a hoisted/deleted
    /// load is fine for DCE but not for reordering passes).
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            InstKind::Call { .. }
                | InstKind::CallInd { .. }
                | InstKind::CallExtRaw { .. }
                | InstKind::CallExt { .. }
        )
    }

    /// Visit every value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Val)) {
        match self {
            InstKind::Bin { a, b, .. } | InstKind::Cmp { a, b, .. } => {
                f(*a);
                f(*b);
            }
            InstKind::Ext { v, .. } | InstKind::Copy { v } => f(*v),
            InstKind::Load { addr, .. } => f(*addr),
            InstKind::Store { addr, val, .. } => {
                f(*addr);
                f(*val);
            }
            InstKind::Alloca { .. } | InstKind::GlobalAddr { .. } | InstKind::FuncAddr { .. } => {}
            InstKind::Call { args, .. } | InstKind::CallExt { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::CallInd { target, args } => {
                f(*target);
                for a in args {
                    f(*a);
                }
            }
            InstKind::CallExtRaw { sp, .. } => f(*sp),
            InstKind::Select { c, a, b } => {
                f(*c);
                f(*a);
                f(*b);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
        }
    }

    /// Visit every value operand mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Val)) {
        match self {
            InstKind::Bin { a, b, .. } | InstKind::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Ext { v, .. } | InstKind::Copy { v } => f(v),
            InstKind::Load { addr, .. } => f(addr),
            InstKind::Store { addr, val, .. } => {
                f(addr);
                f(val);
            }
            InstKind::Alloca { .. } | InstKind::GlobalAddr { .. } | InstKind::FuncAddr { .. } => {}
            InstKind::Call { args, .. } | InstKind::CallExt { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::CallInd { target, args } => {
                f(target);
                for a in args {
                    f(a);
                }
            }
            InstKind::CallExtRaw { sp, .. } => f(sp),
            InstKind::Select { c, a, b } => {
                f(c);
                f(a);
                f(b);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way branch on `c != 0`.
    CondBr {
        /// Condition.
        c: Val,
        /// Target if nonzero.
        t: BlockId,
        /// Target if zero.
        f: BlockId,
    },
    /// Multi-way branch on an exact value match.
    Switch {
        /// Scrutinee.
        v: Val,
        /// `(value, target)` cases.
        cases: Vec<(i32, BlockId)>,
        /// Fallback target.
        default: BlockId,
    },
    /// Return from the function.
    Ret(Option<Val>),
    /// Abort execution (recompiled guard for untraced paths).
    Trap(u8),
    /// Statically unreachable.
    Unreachable,
}

impl Term {
    /// Visit every successor block.
    pub fn for_each_succ(&self, mut f: impl FnMut(BlockId)) {
        match self {
            Term::Br(b) => f(*b),
            Term::CondBr { t, f: fl, .. } => {
                f(*t);
                f(*fl);
            }
            Term::Switch { cases, default, .. } => {
                for (_, b) in cases {
                    f(*b);
                }
                f(*default);
            }
            Term::Ret(_) | Term::Trap(_) | Term::Unreachable => {}
        }
    }

    /// Visit every successor block mutably.
    pub fn for_each_succ_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Term::Br(b) => f(b),
            Term::CondBr { t, f: fl, .. } => {
                f(t);
                f(fl);
            }
            Term::Switch { cases, default, .. } => {
                for (_, b) in cases {
                    f(b);
                }
                f(default);
            }
            Term::Ret(_) | Term::Trap(_) | Term::Unreachable => {}
        }
    }

    /// Visit every value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Val)) {
        match self {
            Term::CondBr { c, .. } => f(*c),
            Term::Switch { v, .. } => f(*v),
            Term::Ret(Some(v)) => f(*v),
            _ => {}
        }
    }

    /// Visit every value operand mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Val)) {
        match self {
            Term::CondBr { c, .. } => f(c),
            Term::Switch { v, .. } => f(v),
            Term::Ret(Some(v)) => f(v),
            _ => {}
        }
    }
}

/// A basic block: an instruction list and a terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
    /// The terminator.
    pub term: Term,
    /// Address of the original machine block this was lifted from, if any.
    pub orig_addr: Option<u32>,
}

impl Block {
    /// An empty block ending in [`Term::Unreachable`].
    pub fn new() -> Block {
        Block { insts: Vec::new(), term: Term::Unreachable, orig_addr: None }
    }
}

impl Default for Block {
    fn default() -> Block {
        Block::new()
    }
}

/// A function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Entry address of the machine function this was lifted from.
    pub orig_addr: Option<u32>,
    /// Number of 32-bit parameters.
    pub num_params: u32,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks (indexed by [`BlockId`]). Unreferenced blocks may linger
    /// after transforms; reachability is what matters.
    pub blocks: Vec<Block>,
    /// Instruction arena (indexed by [`InstId`]). Entries removed from all
    /// blocks are simply orphaned.
    pub insts: Vec<InstKind>,
}

impl Function {
    /// An empty function with one (entry) block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            orig_addr: None,
            num_params: 0,
            entry: BlockId(0),
            blocks: vec![Block::new()],
            insts: Vec::new(),
        }
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Add an instruction to the arena (not yet placed in a block).
    pub fn add_inst(&mut self, kind: InstKind) -> InstId {
        self.insts.push(kind);
        InstId(self.insts.len() as u32 - 1)
    }

    /// Append an instruction to the end of `block`.
    pub fn push_inst(&mut self, block: BlockId, kind: InstKind) -> InstId {
        let id = self.add_inst(kind);
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// The instruction kind of `id`.
    pub fn inst(&self, id: InstId) -> &InstKind {
        &self.insts[id.index()]
    }

    /// Mutable access to the instruction kind of `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut InstKind {
        &mut self.insts[id.index()]
    }

    /// Replace every use of `from` with `to` in instructions and
    /// terminators. Returns the number of uses replaced.
    pub fn replace_all_uses(&mut self, from: Val, to: Val) -> usize {
        let mut n = 0;
        for kind in &mut self.insts {
            kind.for_each_operand_mut(|v| {
                if *v == from {
                    *v = to;
                    n += 1;
                }
            });
        }
        for block in &mut self.blocks {
            block.term.for_each_operand_mut(|v| {
                if *v == from {
                    *v = to;
                    n += 1;
                }
            });
        }
        n
    }

    /// Blocks reachable from the entry, in reverse postorder.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack (functions can be large).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        let succs: Vec<Vec<BlockId>> = self
            .blocks
            .iter()
            .map(|b| {
                let mut s = Vec::new();
                b.term.for_each_succ(|x| s.push(x));
                s
            })
            .collect();
        while let Some((b, i)) = stack.pop() {
            if i < succs[b.index()].len() {
                stack.push((b, i + 1));
                let s = succs[b.index()][i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Predecessor lists for every block (unreachable blocks included as
    /// predecessors only if they branch somewhere).
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            b.term.for_each_succ(|s| preds[s.index()].push(BlockId(i as u32)));
        }
        preds
    }

    /// Number of instruction uses of each instruction result.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.insts.len()];
        let mut bump = |v: Val| {
            if let Val::Inst(i) = v {
                counts[i.index()] += 1;
            }
        };
        for b in &self.blocks {
            for &i in &b.insts {
                self.insts[i.index()].for_each_operand(&mut bump);
            }
            b.term.for_each_operand(&mut bump);
        }
        counts
    }
}

/// A whole program in IR form.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions.
    pub funcs: Vec<Function>,
    /// Globals.
    pub globals: Vec<Global>,
    /// Imported external function names (indexed by the `ext` field of
    /// call instructions).
    pub externs: Vec<String>,
    /// The function executed first.
    pub entry: Option<FuncId>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Add a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Add a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        self.globals.push(g);
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// The function with original entry address `addr`, if any.
    pub fn func_by_addr(&self, addr: u32) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.orig_addr == Some(addr)).map(|i| FuncId(i as u32))
    }

    /// The function named `name`, if any.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Find or add an extern by name, returning its index.
    pub fn extern_index(&mut self, name: &str) -> u16 {
        if let Some(i) = self.externs.iter().position(|e| e == name) {
            return i as u16;
        }
        self.externs.push(name.to_string());
        self.externs.len() as u16 - 1
    }

    /// Total instruction count across all reachable blocks (diagnostics).
    pub fn inst_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.rpo().iter().map(|b| f.blocks[b.index()].insts.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BinOp;

    fn diamond() -> Function {
        // entry -> (t, f) -> join
        let mut f = Function::new("diamond");
        let t = f.add_block();
        let e = f.add_block();
        let join = f.add_block();
        let c = f.push_inst(
            f.entry,
            InstKind::Cmp { op: CmpOp::Eq, a: Val::Param(0), b: Val::Const(0) },
        );
        f.blocks[f.entry.index()].term = Term::CondBr { c: Val::Inst(c), t, f: e };
        f.blocks[t.index()].term = Term::Br(join);
        f.blocks[e.index()].term = Term::Br(join);
        let phi = f.push_inst(
            join,
            InstKind::Phi { incomings: vec![(t, Val::Const(1)), (e, Val::Const(2))] },
        );
        f.blocks[join.index()].term = Term::Ret(Some(Val::Inst(phi)));
        f.num_params = 1;
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = f.rpo();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn preds_of_join() {
        let f = diamond();
        let preds = f.preds();
        assert_eq!(preds[3].len(), 2);
        assert_eq!(preds[f.entry.index()].len(), 0);
    }

    #[test]
    fn replace_all_uses_rewrites_everything() {
        let mut f = diamond();
        f.replace_all_uses(Val::Const(2), Val::Const(99));
        let InstKind::Phi { incomings } = f.inst(InstId(1)) else { panic!() };
        assert!(incomings.iter().any(|(_, v)| *v == Val::Const(99)));
    }

    #[test]
    fn use_counts_count_terminator_uses() {
        let f = diamond();
        let counts = f.use_counts();
        assert_eq!(counts[0], 1); // cmp used by condbr
        assert_eq!(counts[1], 1); // phi used by ret
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let mut f = Function::new("main");
        f.orig_addr = Some(0x1000);
        let id = m.add_func(f);
        assert_eq!(m.func_by_addr(0x1000), Some(id));
        assert_eq!(m.func_by_name("main"), Some(id));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.extern_index("printf"), 0);
        assert_eq!(m.extern_index("memcpy"), 1);
        assert_eq!(m.extern_index("printf"), 0);
    }

    #[test]
    fn side_effect_classification() {
        assert!(InstKind::Store { ty: Ty::I32, addr: Val::Const(0), val: Val::Const(0) }
            .has_side_effect());
        assert!(
            !InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) }.has_side_effect()
        );
        assert!(InstKind::Call { f: FuncId(0), args: vec![] }.is_call());
        assert!(
            !InstKind::Store { ty: Ty::I32, addr: Val::Const(0), val: Val::Const(0) }.has_result()
        );
    }
}
