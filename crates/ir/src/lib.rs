//! # wyt-ir — the compiler-level intermediate representation
//!
//! The reproduction's analogue of LLVM IR: an SSA IR with explicit memory
//! (`alloca`/`load`/`store`), module-level globals, direct, indirect and
//! external calls, phis, and a total 32-bit integer semantics.
//!
//! Three design points follow the paper directly:
//!
//! - **Lifted programs live here.** The lifter translates machine code into
//!   this IR using the emulation approach of §2.1 (virtual CPU registers as
//!   globals, the emulated stack as a byte-array global); WYTIWYG's
//!   refinements then transform it in place.
//! - **Instrumentation is a [`interp::Hooks`] implementation.** The paper
//!   instruments LLVM IR and links a runtime; we interpret the IR and hand
//!   every executed operation, with per-value shadow metadata, to the
//!   analysis (see [`interp`]).
//! - **A [`verify`] pass** enforces SSA dominance after every transform,
//!   which is what keeps a multi-stage refinement pipeline honest.
//!
//! ```
//! use wyt_ir::{Function, InstKind, Module, Term, Val, BinOp};
//! let mut m = Module::new();
//! let mut f = Function::new("answer");
//! let v = f.push_inst(f.entry, InstKind::Bin { op: BinOp::Add, a: Val::Const(40), b: Val::Const(2) });
//! f.blocks[0].term = Term::Ret(Some(Val::Inst(v)));
//! let id = m.add_func(f);
//! m.entry = Some(id);
//! wyt_ir::verify::verify_module(&m)?;
//! let out = wyt_ir::interp::Interp::new(&m, Vec::new(), wyt_ir::interp::NoHooks).run();
//! assert_eq!(out.exit_code, 42);
//! # Ok::<(), wyt_ir::verify::VerifyError>(())
//! ```

pub mod interp;
mod module;
pub mod print;
mod types;
pub mod verify;

pub use module::{Block, Function, Global, GlobalKind, InstKind, Module, Term};
pub use types::{BinOp, BlockId, CmpOp, FuncId, GlobalId, InstId, Ty, Val};
