//! A hooked IR interpreter.
//!
//! This is the reproduction's analogue of "instrument the lifted IR and
//! link the instrumentation runtime into it" (paper §3, §4.2.1): instead of
//! weaving calls into the program text, the interpreter invokes a [`Hooks`]
//! implementation at every operation, passing concrete values together with
//! optional *shadows* — opaque metadata ids owned by the hook, playing the
//! role of the paper's per-value `PointerInfo` (§4.2.1) and of the symbolic
//! register tokens of the saved-register analysis (§4.1).
//!
//! The interpreter executes with an explicit frame stack (no host
//! recursion), shares the [`wyt_emu::Memory`] model with the machine
//! emulator, and calls the same external-function handlers, so a lifted
//! program and its original binary observe identical I/O.

use crate::module::{Global, InstKind, Module, Term};
use crate::types::{BinOp, BlockId, CmpOp, FuncId, InstId, Ty, Val};
use std::collections::HashMap;
use std::fmt;
use wyt_emu::{dispatch, ExtId, ExtIo, ExtOutcome, Memory};
use wyt_isa::{GuardKind, TrapCode};
use wyt_obs::MemStats;

/// Opaque per-value metadata id, owned by the [`Hooks`] implementation.
pub type Shadow = u32;

/// A `(concrete value, shadow)` pair as seen by hooks.
pub type Tagged = (u32, Option<Shadow>);

/// Base address for globals without a fixed address.
pub const GLOBAL_DYN_BASE: u32 = 0x0300_0000;
/// Top of the native stack used for `alloca` (grows down). Distinct from
/// the machine stack so lifted two-stack programs look like paper Fig. 1.
pub const NATIVE_STACK_TOP: u32 = 0x0e00_0000;

/// Size of the native-stack window used for access classification:
/// addresses in `(NATIVE_STACK_TOP - NATIVE_STACK_CLASSIFY_WINDOW,
/// NATIVE_STACK_TOP]` count as symbolized-slot (alloca) traffic. 64 MiB
/// reaches far below any real alloca depth while staying above every
/// other region.
pub const NATIVE_STACK_CLASSIFY_WINDOW: u32 = 1 << 26;

/// How an external call's arguments are delivered.
#[derive(Debug, Clone, Copy)]
pub enum ExtArgs<'a> {
    /// Unrecovered: the callee reads `[sp]`, `[sp+4]`, ... (stack
    /// switching).
    Raw {
        /// Stack pointer value at the call.
        sp: u32,
        /// Shadow of the stack pointer value.
        sp_shadow: Option<Shadow>,
    },
    /// Recovered: explicit argument values.
    Explicit(&'a [Tagged]),
}

/// Dynamic-analysis callbacks. Every method has a no-op default; an
/// analysis implements the subset it needs.
#[allow(unused_variables)]
pub trait Hooks {
    /// A function is entered. `callsite` is `None` for the program entry.
    fn fn_enter(
        &mut self,
        f: FuncId,
        callsite: Option<(FuncId, InstId)>,
        args: &[Tagged],
        mem: &Memory,
    ) {
    }
    /// A function returns.
    fn fn_exit(&mut self, f: FuncId, ret: Option<Tagged>, mem: &Memory) {}
    /// A binary operation produced `res`. Return the result's shadow.
    fn bin(
        &mut self,
        f: FuncId,
        inst: InstId,
        op: BinOp,
        a: Tagged,
        b: Tagged,
        res: u32,
    ) -> Option<Shadow> {
        None
    }
    /// A comparison executed (pointer comparisons `link` variables, §4.2.2).
    fn cmp(&mut self, f: FuncId, inst: InstId, op: CmpOp, a: Tagged, b: Tagged) {}
    /// A load produced `val`. Return the loaded value's shadow.
    fn load(&mut self, f: FuncId, inst: InstId, ty: Ty, addr: Tagged, val: u32) -> Option<Shadow> {
        None
    }
    /// A store executed.
    fn store(&mut self, f: FuncId, inst: InstId, ty: Ty, addr: Tagged, val: Tagged) {}
    /// An alloca produced address `addr`.
    fn alloca(&mut self, f: FuncId, inst: InstId, addr: u32) -> Option<Shadow> {
        None
    }
    /// A value is copied verbatim (phi, select, copy). Maps the chosen
    /// input's shadow to the result's shadow (the paper's `copy` op).
    fn transparent(&mut self, s: Option<Shadow>) -> Option<Shadow> {
        s
    }
    /// About to transfer control to a callee (before `fn_enter`).
    fn call_pre(&mut self, caller: FuncId, inst: InstId, callee: FuncId, mem: &Memory) {}
    /// An external call is about to run.
    fn ext_call(&mut self, f: FuncId, inst: InstId, ext: ExtId, args: &ExtArgs<'_>, mem: &Memory) {}
    /// An external call returned `ret`. Return the result's shadow.
    fn ext_ret(
        &mut self,
        f: FuncId,
        inst: InstId,
        ext: ExtId,
        args: &ExtArgs<'_>,
        ret: u32,
        mem: &Memory,
    ) -> Option<Shadow> {
        None
    }
}

/// A [`Hooks`] implementation that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// A fatal interpretation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Signed division by zero or overflow.
    DivideError(FuncId, InstId),
    /// Step budget exhausted.
    Fuel,
    /// Indirect call/branch to an address with no lifted function.
    BadIndirect(u32),
    /// A `trap` terminator executed (untraced path reached).
    Trap(u8),
    /// `abort()` called.
    Aborted,
    /// `exit(code)` called (internal unwinding marker; surfaced as a clean
    /// exit by [`Interp::run`]).
    Exit(i32),
    /// Module has no entry function.
    NoEntry,
    /// Extern index does not resolve to an implemented external.
    UnknownExtern(u16),
    /// `unreachable` executed.
    Unreachable(FuncId, BlockId),
    /// An instruction referenced an out-of-range index (global, function,
    /// block) — malformed IR reached the interpreter.
    BadIndex(&'static str, u32),
    /// A phi at a branch target had no incoming for the source block.
    MissingBlockArg(FuncId, BlockId),
    /// The frame stack was empty where a frame was required.
    FrameUnderflow,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivideError(func, i) => write!(f, "divide error in {func} at {i}"),
            InterpError::Fuel => write!(f, "interpreter fuel exhausted"),
            InterpError::BadIndirect(a) => write!(f, "indirect transfer to unknown address {a:#x}"),
            InterpError::Trap(c) => write!(f, "trap {c} (untraced path)"),
            InterpError::Aborted => write!(f, "abort() called"),
            InterpError::Exit(c) => write!(f, "exit({c}) called"),
            InterpError::NoEntry => write!(f, "module has no entry function"),
            InterpError::UnknownExtern(e) => write!(f, "unknown extern #{e}"),
            InterpError::Unreachable(func, b) => write!(f, "unreachable executed in {func} {b}"),
            InterpError::BadIndex(what, i) => write!(f, "out-of-range {what} index {i}"),
            InterpError::MissingBlockArg(func, b) => {
                write!(f, "phi in {func} {b} has no incoming for the branching block")
            }
            InterpError::FrameUnderflow => write!(f, "frame stack underflow"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Attribution of a guard trap raised during interpretation: which
/// function reached which kind of untraced site. Populated alongside
/// [`InterpError::Trap`] (for a guard [`TrapCode`]) and
/// [`InterpError::BadIndirect`] — the IR-level counterpart of the
/// machine's `Image::guard_sites` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardHit {
    /// The function containing the untraced site.
    pub func: FuncId,
    /// What kind of untraced site fired.
    pub kind: GuardKind,
}

/// Result of interpreting a module.
#[derive(Debug, Clone)]
pub struct InterpOutput {
    /// Exit code (0 on error).
    pub exit_code: i32,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// The error that ended execution, if any.
    pub error: Option<InterpError>,
    /// Guard attribution, when `error` is a guard trap or a bad indirect
    /// transfer.
    pub guard: Option<GuardHit>,
    /// Executed instruction count.
    pub steps: u64,
    /// Memory-access telemetry. Load/store totals are always counted;
    /// the stack-region classification is populated only when the
    /// `wyt-obs` sink was enabled at construction or an emulated-stack
    /// range was configured.
    pub mem: MemStats,
}

impl InterpOutput {
    /// `true` if execution finished without error.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Assign an address to every global: fixed addresses are respected, the
/// rest are laid out from [`GLOBAL_DYN_BASE`]. Shared with the backend so
/// interpreted and recompiled programs agree on the address space.
pub fn layout_globals(globals: &[Global]) -> Vec<u32> {
    let mut next = GLOBAL_DYN_BASE;
    globals
        .iter()
        .map(|g| match g.fixed_addr {
            Some(a) => a,
            None => {
                let a = (next + 15) & !15;
                next = a + g.size.max(1);
                a
            }
        })
        .collect()
}

struct Frame {
    func: FuncId,
    block: BlockId,
    /// Block the previous transfer came from (for phis).
    prev_block: Option<BlockId>,
    idx: usize,
    vals: Vec<u32>,
    shadows: Vec<Option<Shadow>>,
    args: Vec<u32>,
    arg_shadows: Vec<Option<Shadow>>,
    /// Instruction in the *caller* that receives the return value.
    ret_dest: Option<InstId>,
    /// Native stack pointer to restore on return.
    nsp_save: u32,
}

/// The interpreter. Construct with [`Interp::new`], then [`Interp::run`].
pub struct Interp<'m, H: Hooks> {
    module: &'m Module,
    /// Resolved addresses of every global.
    pub global_addrs: Vec<u32>,
    func_by_addr: HashMap<u32, FuncId>,
    ext_ids: Vec<Option<ExtId>>,
    /// Memory (shared layout with the machine emulator).
    pub mem: Memory,
    /// I/O state.
    pub io: ExtIo,
    /// The analysis hooks.
    pub hooks: H,
    nsp: u32,
    fuel: u64,
    steps: u64,
    mem_stats: MemStats,
    /// Attribution of the guard trap that ended the run, if one did.
    guard_hit: Option<GuardHit>,
    /// Emulated-stack global's address range, when the caller wants
    /// residual-stack classification.
    emu_range: Option<(u32, u32)>,
    /// Snapshot of `wyt_obs::enabled()` at construction; gates the
    /// per-access classification so a disabled sink costs one branch.
    classify: bool,
}

impl<'m, H: Hooks> Interp<'m, H> {
    /// Prepare to interpret `module` with the given input and hooks.
    pub fn new(module: &'m Module, input: Vec<u8>, hooks: H) -> Interp<'m, H> {
        let global_addrs = layout_globals(&module.globals);
        let mut mem = Memory::new();
        for (g, &addr) in module.globals.iter().zip(&global_addrs) {
            if !g.init.is_empty() {
                mem.write_bytes(addr, &g.init);
            }
        }
        let mut func_by_addr = HashMap::new();
        for (i, f) in module.funcs.iter().enumerate() {
            if let Some(a) = f.orig_addr {
                func_by_addr.insert(a, FuncId(i as u32));
            }
        }
        let ext_ids = module.externs.iter().map(|n| ExtId::from_name(n)).collect();
        Interp {
            module,
            global_addrs,
            func_by_addr,
            ext_ids,
            mem,
            io: ExtIo::new(input),
            hooks,
            nsp: NATIVE_STACK_TOP,
            fuel: 500_000_000,
            steps: 0,
            mem_stats: MemStats::default(),
            guard_hit: None,
            emu_range: None,
            classify: wyt_obs::enabled(),
        }
    }

    /// Override the step budget (default 500 million).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Classify accesses in `[lo, hi)` as emulated-stack traffic
    /// (callers pass the lifter's emulated-stack global range). Implies
    /// classification even if the obs sink was disabled at construction.
    pub fn set_emu_stack_range(&mut self, lo: u32, hi: u32) {
        self.emu_range = Some((lo, hi));
        self.classify = true;
    }

    /// Memory telemetry accumulated so far (for callers driving
    /// [`Interp::run_from`] directly).
    pub fn mem_stats(&self) -> MemStats {
        self.mem_stats
    }

    #[inline]
    fn note_mem(&mut self, addr: u32, is_store: bool) {
        if is_store {
            self.mem_stats.stores += 1;
        } else {
            self.mem_stats.loads += 1;
        }
        if !self.classify {
            return;
        }
        let native =
            addr <= NATIVE_STACK_TOP && addr > NATIVE_STACK_TOP - NATIVE_STACK_CLASSIFY_WINDOW;
        let emu = matches!(self.emu_range, Some((lo, hi)) if addr >= lo && addr < hi);
        self.mem_stats.native_slot += native as u64;
        self.mem_stats.emu_stack += emu as u64;
        self.mem_stats.stack_total += (native || emu) as u64;
    }

    fn new_frame(
        &self,
        f: FuncId,
        args: Vec<u32>,
        arg_shadows: Vec<Option<Shadow>>,
        ret_dest: Option<InstId>,
    ) -> Result<Frame, InterpError> {
        let func =
            self.module.funcs.get(f.index()).ok_or(InterpError::BadIndex("function", f.0))?;
        Ok(Frame {
            func: f,
            block: func.entry,
            prev_block: None,
            idx: 0,
            vals: vec![0; func.insts.len()],
            shadows: vec![None; func.insts.len()],
            args,
            arg_shadows,
            ret_dest,
            nsp_save: self.nsp,
        })
    }

    fn eval(&self, fr: &Frame, v: Val) -> u32 {
        match v {
            Val::Inst(i) => fr.vals[i.index()],
            Val::Param(p) => fr.args.get(p as usize).copied().unwrap_or(0),
            Val::Const(c) => c as u32,
        }
    }

    fn shadow(&self, fr: &Frame, v: Val) -> Option<Shadow> {
        match v {
            Val::Inst(i) => fr.shadows[i.index()],
            Val::Param(p) => fr.arg_shadows.get(p as usize).copied().flatten(),
            Val::Const(_) => None,
        }
    }

    fn tagged(&self, fr: &Frame, v: Val) -> Tagged {
        (self.eval(fr, v), self.shadow(fr, v))
    }

    /// Run the module's entry function to completion.
    pub fn run(&mut self) -> InterpOutput {
        let Some(entry) = self.module.entry else {
            return InterpOutput {
                exit_code: 0,
                output: Vec::new(),
                error: Some(InterpError::NoEntry),
                guard: None,
                steps: 0,
                mem: MemStats::default(),
            };
        };
        let code = self.run_from(entry, &[]);
        let output = std::mem::take(&mut self.io.output);
        let out = match code {
            Ok(c) => InterpOutput {
                exit_code: c,
                output,
                error: None,
                guard: None,
                steps: self.steps,
                mem: self.mem_stats,
            },
            Err(e) => InterpOutput {
                exit_code: 0,
                output,
                error: Some(e),
                guard: self.guard_hit,
                steps: self.steps,
                mem: self.mem_stats,
            },
        };
        self.flush_obs(&out);
        out
    }

    /// Report run totals and the trap class to the global obs sink.
    fn flush_obs(&self, out: &InterpOutput) {
        if !wyt_obs::enabled() {
            return;
        }
        wyt_obs::counter("interp.runs", 1);
        wyt_obs::counter("interp.steps", out.steps);
        wyt_obs::counter("interp.loads", self.mem_stats.loads);
        wyt_obs::counter("interp.stores", self.mem_stats.stores);
        wyt_obs::counter("interp.stack.native_slot", self.mem_stats.native_slot);
        wyt_obs::counter("interp.stack.emulated", self.mem_stats.emu_stack);
        let class = match &out.error {
            None => "interp.trap.exit",
            Some(InterpError::Fuel) => "interp.trap.fuel",
            Some(InterpError::DivideError(..)) => "interp.trap.divide",
            Some(InterpError::Aborted) => "interp.trap.abort",
            Some(InterpError::Trap(c)) => match TrapCode::guard_kind(*c) {
                Some(GuardKind::UntracedBranch) => "interp.trap.guard.branch",
                Some(GuardKind::UntracedIndirect) => "interp.trap.guard.indirect",
                None => "interp.trap.other",
            },
            // An indirect call to an unlifted address is the IR-level form
            // of the backend's dispatch-miss guard.
            Some(InterpError::BadIndirect(_)) => "interp.trap.guard.indirect",
            Some(_) => "interp.trap.other",
        };
        wyt_obs::counter(class, 1);
    }

    /// Run a specific function with explicit arguments (used by tests and
    /// by analyses that replay single functions). `exit(code)` anywhere in
    /// the callee is surfaced as a normal return of `code`.
    pub fn run_from(&mut self, entry: FuncId, args: &[u32]) -> Result<i32, InterpError> {
        match self.run_inner(entry, args) {
            Err(InterpError::Exit(code)) => Ok(code),
            other => other,
        }
    }

    fn run_inner(&mut self, entry: FuncId, args: &[u32]) -> Result<i32, InterpError> {
        let mut frames: Vec<Frame> = Vec::new();
        let first = self.new_frame(entry, args.to_vec(), vec![None; args.len()], None)?;
        let first_args: Vec<Tagged> = args.iter().map(|&a| (a, None)).collect();
        self.hooks.fn_enter(entry, None, &first_args, &self.mem);
        frames.push(first);

        'outer: loop {
            let Some(fr) = frames.last_mut() else {
                return Err(InterpError::FrameUnderflow);
            };
            let func = &self.module.funcs[fr.func.index()];
            let Some(block) = func.blocks.get(fr.block.index()) else {
                return Err(InterpError::BadIndex("block", fr.block.0));
            };

            if fr.idx >= block.insts.len() {
                // Terminator.
                self.steps += 1;
                if self.steps > self.fuel {
                    return Err(InterpError::Fuel);
                }
                let term = block.term.clone();
                match term {
                    Term::Br(b) => self.branch(frames.last_mut().unwrap(), b)?,
                    Term::CondBr { c, t, f } => {
                        let fr = frames.last_mut().unwrap();
                        let cv = self.eval(fr, c);
                        let target = if cv != 0 { t } else { f };
                        self.branch(frames.last_mut().unwrap(), target)?;
                    }
                    Term::Switch { v, cases, default } => {
                        let fr = frames.last_mut().unwrap();
                        let val = self.eval(fr, v) as i32;
                        let target = cases
                            .iter()
                            .find(|(c, _)| *c == val)
                            .map(|(_, b)| *b)
                            .unwrap_or(default);
                        self.branch(frames.last_mut().unwrap(), target)?;
                    }
                    Term::Ret(v) => {
                        let fr = frames.last().unwrap();
                        let rv = v.map(|v| self.tagged(fr, v));
                        self.hooks.fn_exit(fr.func, rv, &self.mem);
                        let done = frames.pop().ok_or(InterpError::FrameUnderflow)?;
                        self.nsp = done.nsp_save;
                        match frames.last_mut() {
                            None => return Ok(rv.map(|(v, _)| v as i32).unwrap_or(0)),
                            Some(caller) => {
                                if let Some(dest) = done.ret_dest {
                                    let (v, s) = rv.unwrap_or((0, None));
                                    caller.vals[dest.index()] = v;
                                    caller.shadows[dest.index()] = self.hooks.transparent(s);
                                }
                                // Caller's idx was already advanced past the
                                // call when the frame was pushed.
                            }
                        }
                    }
                    Term::Trap(c) => {
                        let fr = frames.last().unwrap();
                        if let Some(kind) = TrapCode::guard_kind(c) {
                            self.guard_hit = Some(GuardHit { func: fr.func, kind });
                        }
                        return Err(InterpError::Trap(c));
                    }
                    Term::Unreachable => {
                        let fr = frames.last().unwrap();
                        return Err(InterpError::Unreachable(fr.func, fr.block));
                    }
                }
                continue 'outer;
            }

            let inst_id = block.insts[fr.idx];
            self.steps += 1;
            if self.steps > self.fuel {
                return Err(InterpError::Fuel);
            }
            let kind = func.inst(inst_id).clone();
            let cur_func = fr.func;

            match kind {
                InstKind::Bin { op, a, b } => {
                    let fr = frames.last_mut().unwrap();
                    let ta = self.tagged(fr, a);
                    let tb = self.tagged(fr, b);
                    let Some(res) = op.eval(ta.0, tb.0) else {
                        return Err(InterpError::DivideError(cur_func, inst_id));
                    };
                    let s = self.hooks.bin(cur_func, inst_id, op, ta, tb, res);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = res;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::Cmp { op, a, b } => {
                    let fr = frames.last_mut().unwrap();
                    let ta = self.tagged(fr, a);
                    let tb = self.tagged(fr, b);
                    let res = op.eval(ta.0, tb.0) as u32;
                    self.hooks.cmp(cur_func, inst_id, op, ta, tb);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = res;
                    fr.shadows[inst_id.index()] = None;
                    fr.idx += 1;
                }
                InstKind::Ext { signed, from, v } => {
                    let fr = frames.last_mut().unwrap();
                    let x = self.eval(fr, v) & from.mask();
                    let res = if signed {
                        let bits = from.bytes() * 8;
                        (((x as i32) << (32 - bits)) >> (32 - bits)) as u32
                    } else {
                        x
                    };
                    fr.vals[inst_id.index()] = res;
                    fr.shadows[inst_id.index()] = None;
                    fr.idx += 1;
                }
                InstKind::Load { ty, addr } => {
                    let fr = frames.last_mut().unwrap();
                    let ta = self.tagged(fr, addr);
                    self.note_mem(ta.0, false);
                    let val = self.mem.read_sized(ta.0, to_isa_size(ty));
                    let s = self.hooks.load(cur_func, inst_id, ty, ta, val);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = val;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::Store { ty, addr, val } => {
                    let fr = frames.last_mut().unwrap();
                    let ta = self.tagged(fr, addr);
                    let tv = self.tagged(fr, val);
                    self.note_mem(ta.0, true);
                    self.mem.write_sized(ta.0, tv.0, to_isa_size(ty));
                    self.hooks.store(cur_func, inst_id, ty, ta, tv);
                    frames.last_mut().unwrap().idx += 1;
                }
                InstKind::Alloca { size, align, .. } => {
                    let a = align.max(4);
                    self.nsp = (self.nsp - size.max(1)) & !(a - 1);
                    let addr = self.nsp;
                    let s = self.hooks.alloca(cur_func, inst_id, addr);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = addr;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::GlobalAddr { g } => {
                    let addr = self
                        .global_addrs
                        .get(g.index())
                        .copied()
                        .ok_or(InterpError::BadIndex("global", g.0))?;
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = addr;
                    fr.shadows[inst_id.index()] = None;
                    fr.idx += 1;
                }
                InstKind::FuncAddr { f } => {
                    let addr = self
                        .module
                        .funcs
                        .get(f.index())
                        .ok_or(InterpError::BadIndex("function", f.0))?
                        .orig_addr
                        .unwrap_or(0);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = addr;
                    fr.shadows[inst_id.index()] = None;
                    fr.idx += 1;
                }
                InstKind::Call { f, ref args } => {
                    self.do_call(&mut frames, cur_func, inst_id, f, args)?;
                }
                InstKind::CallInd { target, ref args } => {
                    let fr = frames.last().unwrap();
                    let t = self.eval(fr, target);
                    let Some(&f) = self.func_by_addr.get(&t) else {
                        // An indirect call to an unlifted address is the
                        // IR-level form of the backend's dispatch-miss
                        // guard: attribute it the same way.
                        self.guard_hit =
                            Some(GuardHit { func: cur_func, kind: GuardKind::UntracedIndirect });
                        return Err(InterpError::BadIndirect(t));
                    };
                    self.do_call(&mut frames, cur_func, inst_id, f, args)?;
                }
                InstKind::CallExtRaw { ext, sp } => {
                    let fr = frames.last().unwrap();
                    let tsp = self.tagged(fr, sp);
                    let ext_id = self.resolve_ext(ext)?;
                    let ea = ExtArgs::Raw { sp: tsp.0, sp_shadow: tsp.1 };
                    self.hooks.ext_call(cur_func, inst_id, ext_id, &ea, &self.mem);
                    let mut staged = [0u32; 16];
                    for (i, slot) in staged.iter_mut().enumerate() {
                        *slot = self.mem.read_u32(tsp.0.wrapping_add(4 * i as u32));
                    }
                    let ret = self.do_ext(ext_id, &staged)?;
                    let s = self.hooks.ext_ret(cur_func, inst_id, ext_id, &ea, ret, &self.mem);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = ret;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::CallExt { ext, ref args } => {
                    let fr = frames.last().unwrap();
                    let targs: Vec<Tagged> = args.iter().map(|a| self.tagged(fr, *a)).collect();
                    let ext_id = self.resolve_ext(ext)?;
                    let ea = ExtArgs::Explicit(&targs);
                    self.hooks.ext_call(cur_func, inst_id, ext_id, &ea, &self.mem);
                    let argv: Vec<u32> = targs.iter().map(|(v, _)| *v).collect();
                    let ret = self.do_ext(ext_id, &argv)?;
                    let s = self.hooks.ext_ret(cur_func, inst_id, ext_id, &ea, ret, &self.mem);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = ret;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::Select { c, a, b } => {
                    let fr = frames.last_mut().unwrap();
                    let cv = self.eval(fr, c);
                    let chosen = if cv != 0 { a } else { b };
                    let (v, s) = self.tagged(fr, chosen);
                    let s = self.hooks.transparent(s);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = v;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
                InstKind::Phi { .. } => {
                    // Phis are evaluated en bloc at branch time; reaching one
                    // here means it already holds its value.
                    frames.last_mut().unwrap().idx += 1;
                }
                InstKind::Copy { v } => {
                    let fr = frames.last_mut().unwrap();
                    let (val, s) = self.tagged(fr, v);
                    let s = self.hooks.transparent(s);
                    let fr = frames.last_mut().unwrap();
                    fr.vals[inst_id.index()] = val;
                    fr.shadows[inst_id.index()] = s;
                    fr.idx += 1;
                }
            }
        }
    }

    fn resolve_ext(&self, ext: u16) -> Result<ExtId, InterpError> {
        self.ext_ids.get(ext as usize).copied().flatten().ok_or(InterpError::UnknownExtern(ext))
    }

    fn do_ext(&mut self, ext: ExtId, argv: &[u32]) -> Result<u32, InterpError> {
        let mut src: &[u32] = argv;
        match dispatch(ext, &mut self.mem, &mut self.io, &mut src) {
            ExtOutcome::Ret { value, .. } => Ok(value),
            // exit() unwinds the whole frame stack; run()/run_from() turn
            // it into a clean exit with the given code.
            ExtOutcome::Exit(code) => Err(InterpError::Exit(code)),
            ExtOutcome::Abort => Err(InterpError::Aborted),
        }
    }

    fn do_call(
        &mut self,
        frames: &mut Vec<Frame>,
        caller: FuncId,
        inst_id: InstId,
        callee: FuncId,
        args: &[Val],
    ) -> Result<(), InterpError> {
        let fr = frames.last_mut().unwrap();
        let targs: Vec<Tagged> = args.iter().map(|a| self.tagged(fr, *a)).collect();
        // Advance the caller past the call before pushing the callee.
        frames.last_mut().unwrap().idx += 1;
        self.hooks.call_pre(caller, inst_id, callee, &self.mem);
        let vals: Vec<u32> = targs.iter().map(|(v, _)| *v).collect();
        let shadows: Vec<Option<Shadow>> = targs.iter().map(|(_, s)| *s).collect();
        let frame = self.new_frame(callee, vals, shadows, Some(inst_id))?;
        self.hooks.fn_enter(callee, Some((caller, inst_id)), &targs, &self.mem);
        frames.push(frame);
        Ok(())
    }

    /// Transfer control within the current frame, evaluating phi nodes of
    /// the target block (two-phase: read all, then write all). A phi with
    /// no incoming for the source block is malformed IR and errors rather
    /// than silently keeping a stale value.
    fn branch(&mut self, fr: &mut Frame, target: BlockId) -> Result<(), InterpError> {
        let func = &self.module.funcs[fr.func.index()];
        let from = fr.block;
        let tb = func.blocks.get(target.index()).ok_or(InterpError::BadIndex("block", target.0))?;
        let mut updates: Vec<(InstId, u32, Option<Shadow>)> = Vec::new();
        for &i in &tb.insts {
            match func.inst(i) {
                InstKind::Phi { incomings } => {
                    let Some((_, v)) = incomings.iter().find(|(p, _)| *p == from) else {
                        return Err(InterpError::MissingBlockArg(fr.func, target));
                    };
                    let val = self.eval(fr, *v);
                    let s = self.shadow(fr, *v);
                    updates.push((i, val, s));
                }
                _ => break,
            }
        }
        for (i, v, s) in updates {
            fr.vals[i.index()] = v;
            fr.shadows[i.index()] = self.hooks.transparent(s);
        }
        fr.prev_block = Some(from);
        fr.block = target;
        fr.idx = 0;
        Ok(())
    }
}

fn to_isa_size(ty: Ty) -> wyt_isa::Size {
    match ty {
        Ty::I8 => wyt_isa::Size::B,
        Ty::I16 => wyt_isa::Size::W,
        Ty::I32 => wyt_isa::Size::D,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, GlobalKind};
    use crate::types::GlobalId;

    fn run_entry(m: &Module) -> InterpOutput {
        Interp::new(m, Vec::new(), NoHooks).run()
    }

    fn simple_module(build: impl FnOnce(&mut Function)) -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main");
        build(&mut f);
        let id = m.add_func(f);
        m.entry = Some(id);
        m
    }

    #[test]
    fn arithmetic_and_ret() {
        let m = simple_module(|f| {
            let a = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Const(20), b: Val::Const(22) },
            );
            f.blocks[0].term = Term::Ret(Some(Val::Inst(a)));
        });
        let out = run_entry(&m);
        assert!(out.ok());
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn loop_with_phi() {
        // i = 0; acc = 0; while (i != 5) { acc += i; i += 1 } ret acc
        let m = simple_module(|f| {
            let header = f.add_block();
            let body = f.add_block();
            let exit = f.add_block();
            f.blocks[f.entry.index()].term = Term::Br(header);

            let phi_i = f.push_inst(header, InstKind::Phi { incomings: vec![] });
            let phi_acc = f.push_inst(header, InstKind::Phi { incomings: vec![] });
            let c = f.push_inst(
                header,
                InstKind::Cmp { op: CmpOp::Eq, a: Val::Inst(phi_i), b: Val::Const(5) },
            );
            f.blocks[header.index()].term = Term::CondBr { c: Val::Inst(c), t: exit, f: body };

            let acc2 = f.push_inst(
                body,
                InstKind::Bin { op: BinOp::Add, a: Val::Inst(phi_acc), b: Val::Inst(phi_i) },
            );
            let i2 = f.push_inst(
                body,
                InstKind::Bin { op: BinOp::Add, a: Val::Inst(phi_i), b: Val::Const(1) },
            );
            f.blocks[body.index()].term = Term::Br(header);

            let InstKind::Phi { incomings } = f.inst_mut(phi_i) else { panic!() };
            *incomings = vec![(BlockId(0), Val::Const(0)), (body, Val::Inst(i2))];
            let InstKind::Phi { incomings } = f.inst_mut(phi_acc) else { panic!() };
            *incomings = vec![(BlockId(0), Val::Const(0)), (body, Val::Inst(acc2))];

            f.blocks[exit.index()].term = Term::Ret(Some(Val::Inst(phi_acc)));
        });
        crate::verify::verify_module(&m).unwrap();
        let out = run_entry(&m);
        assert!(out.ok());
        assert_eq!(out.exit_code, 10);
    }

    #[test]
    fn calls_and_allocas() {
        let mut m = Module::new();
        // callee(x) { return x * 2 }
        let mut callee = Function::new("double");
        callee.num_params = 1;
        let r = callee.push_inst(
            callee.entry,
            InstKind::Bin { op: BinOp::Mul, a: Val::Param(0), b: Val::Const(2) },
        );
        callee.blocks[0].term = Term::Ret(Some(Val::Inst(r)));
        let callee_id = m.add_func(callee);

        // main: p = alloca 4; *p = 21; v = load p; ret double(v)
        let mut main = Function::new("main");
        let p =
            main.push_inst(main.entry, InstKind::Alloca { size: 4, align: 4, name: "x".into() });
        main.push_inst(
            main.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(p), val: Val::Const(21) },
        );
        let v = main.push_inst(main.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(p) });
        let call =
            main.push_inst(main.entry, InstKind::Call { f: callee_id, args: vec![Val::Inst(v)] });
        main.blocks[0].term = Term::Ret(Some(Val::Inst(call)));
        let main_id = m.add_func(main);
        m.entry = Some(main_id);

        crate::verify::verify_module(&m).unwrap();
        let out = run_entry(&m);
        assert!(out.ok());
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn globals_fixed_and_dynamic() {
        let mut m = Module::new();
        let fixed = m.add_global(Global {
            name: "fixed".into(),
            size: 4,
            init: 7i32.to_le_bytes().to_vec(),
            fixed_addr: Some(0x0040_0000),
            kind: GlobalKind::Data,
        });
        let dynamic = m.add_global(Global {
            name: "dyn".into(),
            size: 4,
            init: vec![],
            fixed_addr: None,
            kind: GlobalKind::Data,
        });
        let mut f = Function::new("main");
        let ga = f.push_inst(f.entry, InstKind::GlobalAddr { g: fixed });
        let v = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(ga) });
        let da = f.push_inst(f.entry, InstKind::GlobalAddr { g: dynamic });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(da), val: Val::Inst(v) },
        );
        let v2 = f.push_inst(f.entry, InstKind::Load { ty: Ty::I32, addr: Val::Inst(da) });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(v2)));
        let id = m.add_func(f);
        m.entry = Some(id);

        let mut interp = Interp::new(&m, Vec::new(), NoHooks);
        assert_eq!(interp.global_addrs[0], 0x0040_0000);
        assert!(interp.global_addrs[1] >= GLOBAL_DYN_BASE);
        let out = interp.run();
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn externals_and_exit() {
        let mut m = Module::new();
        let printf = m.extern_index("printf");
        let exit = m.extern_index("exit");
        let data = m.add_global(Global {
            name: "fmt".into(),
            size: 6,
            init: b"n=%d\n\0".to_vec(),
            fixed_addr: None,
            kind: GlobalKind::Data,
        });
        let mut f = Function::new("main");
        let ga = f.push_inst(f.entry, InstKind::GlobalAddr { g: data });
        f.push_inst(
            f.entry,
            InstKind::CallExt { ext: printf, args: vec![Val::Inst(ga), Val::Const(9)] },
        );
        f.push_inst(f.entry, InstKind::CallExt { ext: exit, args: vec![Val::Const(3)] });
        f.blocks[0].term = Term::Ret(None);
        let id = m.add_func(f);
        m.entry = Some(id);
        let out = run_entry(&m);
        assert!(out.ok(), "{:?}", out.error);
        assert_eq!(out.exit_code, 3);
        assert_eq!(out.output, b"n=9\n");
    }

    #[test]
    fn trap_and_unreachable() {
        let m = simple_module(|f| {
            f.blocks[0].term = Term::Trap(7);
        });
        assert_eq!(run_entry(&m).error, Some(InterpError::Trap(7)));

        let m = simple_module(|f| {
            f.blocks[0].term = Term::Unreachable;
        });
        assert!(matches!(run_entry(&m).error, Some(InterpError::Unreachable(..))));
    }

    #[test]
    fn divide_error() {
        let m = simple_module(|f| {
            let d = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::DivS, a: Val::Const(1), b: Val::Const(0) },
            );
            f.blocks[0].term = Term::Ret(Some(Val::Inst(d)));
        });
        assert!(matches!(run_entry(&m).error, Some(InterpError::DivideError(..))));
    }

    #[test]
    fn fuel_limit() {
        let m = simple_module(|f| {
            f.blocks[0].term = Term::Br(BlockId(0));
        });
        let mut i = Interp::new(&m, Vec::new(), NoHooks);
        i.set_fuel(100);
        assert_eq!(i.run().error, Some(InterpError::Fuel));
    }

    #[test]
    fn fuel_boundary_is_exact() {
        // Same contract as wyt-emu's `fuel_boundary_is_exact`: `fuel` is
        // the maximum number of retired steps, so a run of exactly S steps
        // completes with fuel == S and reports Fuel with fuel == S - 1.
        let m = simple_module(|f| {
            let a = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) },
            );
            let b = f.push_inst(
                f.entry,
                InstKind::Bin { op: BinOp::Mul, a: Val::Inst(a), b: Val::Const(3) },
            );
            f.blocks[0].term = Term::Ret(Some(Val::Inst(b)));
        });

        let unbounded = run_entry(&m);
        assert!(unbounded.ok());
        let s = unbounded.steps;
        assert_eq!(s, 3, "two insts plus the terminator");

        let mut exact = Interp::new(&m, Vec::new(), NoHooks);
        exact.set_fuel(s);
        let out = exact.run();
        assert!(out.ok(), "fuel == step count must complete: {:?}", out.error);
        assert_eq!(out.steps, s);

        let mut starved = Interp::new(&m, Vec::new(), NoHooks);
        starved.set_fuel(s - 1);
        let out = starved.run();
        assert_eq!(out.error, Some(InterpError::Fuel));
    }

    #[test]
    fn fuel_zero_retires_nothing() {
        let m = simple_module(|f| {
            f.blocks[0].term = Term::Ret(Some(Val::Const(0)));
        });
        let mut i = Interp::new(&m, Vec::new(), NoHooks);
        i.set_fuel(0);
        assert_eq!(i.run().error, Some(InterpError::Fuel));
    }

    #[test]
    fn hooks_see_shadows_flow() {
        // A hook that tags the result of the first add and checks the tag
        // arrives at the store.
        #[derive(Default)]
        struct Tagger {
            tagged_store_seen: bool,
        }
        impl Hooks for Tagger {
            fn bin(
                &mut self,
                _f: FuncId,
                _i: InstId,
                op: BinOp,
                _a: Tagged,
                _b: Tagged,
                _r: u32,
            ) -> Option<Shadow> {
                if op == BinOp::Add {
                    Some(77)
                } else {
                    None
                }
            }
            fn store(&mut self, _f: FuncId, _i: InstId, _ty: Ty, _addr: Tagged, val: Tagged) {
                if val.1 == Some(77) {
                    self.tagged_store_seen = true;
                }
            }
        }
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "x".into(),
            size: 4,
            init: vec![],
            fixed_addr: None,
            kind: GlobalKind::Data,
        });
        let mut f = Function::new("main");
        let a = f.push_inst(
            f.entry,
            InstKind::Bin { op: BinOp::Add, a: Val::Const(1), b: Val::Const(2) },
        );
        let c = f.push_inst(f.entry, InstKind::Copy { v: Val::Inst(a) });
        let ga = f.push_inst(f.entry, InstKind::GlobalAddr { g });
        f.push_inst(
            f.entry,
            InstKind::Store { ty: Ty::I32, addr: Val::Inst(ga), val: Val::Inst(c) },
        );
        f.blocks[0].term = Term::Ret(None);
        let id = m.add_func(f);
        m.entry = Some(id);
        let mut interp = Interp::new(&m, Vec::new(), Tagger::default());
        let out = interp.run();
        assert!(out.ok());
        assert!(interp.hooks.tagged_store_seen, "shadow should flow through copy to store");
    }

    #[test]
    fn malformed_ir_errors_instead_of_panicking() {
        // A phi with no incoming for the branching block is a structured
        // error, not a stale value or a panic.
        let m = simple_module(|f| {
            let tgt = f.add_block();
            f.blocks[0].term = Term::Br(tgt);
            let phi = f.push_inst(tgt, InstKind::Phi { incomings: vec![] });
            f.blocks[tgt.index()].term = Term::Ret(Some(Val::Inst(phi)));
        });
        assert!(matches!(run_entry(&m).error, Some(InterpError::MissingBlockArg(..))));

        // An out-of-range global index errors.
        let m = simple_module(|f| {
            let ga = f.push_inst(f.entry, InstKind::GlobalAddr { g: GlobalId(99) });
            f.blocks[0].term = Term::Ret(Some(Val::Inst(ga)));
        });
        assert_eq!(run_entry(&m).error, Some(InterpError::BadIndex("global", 99)));

        // An out-of-range function index errors.
        let m = simple_module(|f| {
            let fa = f.push_inst(f.entry, InstKind::FuncAddr { f: FuncId(42) });
            f.blocks[0].term = Term::Ret(Some(Val::Inst(fa)));
        });
        assert_eq!(run_entry(&m).error, Some(InterpError::BadIndex("function", 42)));

        // A branch to a non-existent block errors.
        let m = simple_module(|f| {
            f.blocks[0].term = Term::Br(BlockId(7));
        });
        assert_eq!(run_entry(&m).error, Some(InterpError::BadIndex("block", 7)));

        // A call to a non-existent function errors.
        let m = simple_module(|f| {
            let c = f.push_inst(f.entry, InstKind::Call { f: FuncId(9), args: vec![] });
            f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        });
        assert_eq!(run_entry(&m).error, Some(InterpError::BadIndex("function", 9)));
    }

    #[test]
    fn indirect_call_resolves_by_address() {
        let mut m = Module::new();
        let mut callee = Function::new("target");
        callee.orig_addr = Some(0x1234);
        callee.blocks[0].term = Term::Ret(Some(Val::Const(5)));
        let callee_id = m.add_func(callee);
        let mut f = Function::new("main");
        let fa = f.push_inst(f.entry, InstKind::FuncAddr { f: callee_id });
        let c = f.push_inst(f.entry, InstKind::CallInd { target: Val::Inst(fa), args: vec![] });
        f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        let id = m.add_func(f);
        m.entry = Some(id);
        let out = run_entry(&m);
        assert!(out.ok());
        assert_eq!(out.exit_code, 5);

        // Unknown address errors.
        let m2 = simple_module(|f| {
            let c =
                f.push_inst(f.entry, InstKind::CallInd { target: Val::Const(0xbad), args: vec![] });
            f.blocks[0].term = Term::Ret(Some(Val::Inst(c)));
        });
        assert_eq!(run_entry(&m2).error, Some(InterpError::BadIndirect(0xbad)));
    }
}
