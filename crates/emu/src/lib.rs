//! # wyt-emu — concrete execution substrate
//!
//! The emulator plays the role of QEMU/S2E in the paper's toolchain: it
//! executes [`wyt_isa::image::Image`] binaries with faithful machine
//! semantics, reports every control transfer to a pluggable [`TraceSink`]
//! (the input to CFG recovery), services calls to an emulated C library
//! ([`ext`]), and charges a deterministic cycle cost per instruction.
//! Cycle counts are the reproduction's "runtime": the paper uses wall-clock
//! performance purely as a proxy for IR quality, and a deterministic cost
//! model preserves the comparisons while making them exactly reproducible.
//!
//! ```
//! use wyt_isa::{asm::Asm, Inst};
//! let mut a = Asm::new();
//! a.emit(Inst::Mov {
//!     size: wyt_isa::Size::D,
//!     dst: wyt_isa::Operand::Reg(wyt_isa::Reg::Eax),
//!     src: wyt_isa::Operand::Imm(7),
//! });
//! a.emit(Inst::Halt);
//! let mut img = wyt_isa::image::Image::new();
//! let asm = a.finish(img.text_base);
//! img.text = asm.bytes;
//! img.entry = img.text_base;
//! let result = wyt_emu::run_image(&img, Vec::new());
//! assert_eq!(result.exit_code, 7);
//! ```

pub mod batch;
pub mod ext;
mod machine;
mod memory;

pub use batch::EdgeCache;
pub use ext::{dispatch, parse_format, ArgSource, ExtId, ExtIo, ExtOutcome, FmtArg};
pub use machine::{
    run_image, Flags, Machine, NullSink, RunResult, TraceSink, TransferKind, Trap, RETURN_SENTINEL,
};
pub use memory::{Memory, PAGE_SIZE};
