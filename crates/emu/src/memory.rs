//! Sparse paged memory for the emulated 32-bit address space.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u32 = 1 << PAGE_BITS;

/// A sparse, zero-initialized 32-bit address space.
///
/// Pages are allocated on first touch; untouched memory reads as zero.
/// Both the machine emulator and the IR interpreter execute against this
/// type, so a lifted program literally shares the address-space model of
/// the binary it was lifted from (the paper's Fig. 1 process image).
#[derive(Debug, Clone)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
    /// Maximum resident pages before writes are discarded and
    /// [`Memory::cap_hit`] latches. A hostile program sweeping the 4 GiB
    /// address space would otherwise allocate a page per write.
    page_cap: usize,
    /// Sticky flag: a write needed a new page beyond `page_cap`. The
    /// write went to a scratch page (so every access stays infallible);
    /// the machine checks this each step and raises a typed trap.
    cap_hit: bool,
    /// Overflow scratch page, lazily allocated on the first over-cap
    /// write. Never read back through `page`.
    scratch: Option<Box<[u8; PAGE_SIZE as usize]>>,
}

/// Default resident-page ceiling: 64 Ki pages = 256 MiB, far above any
/// legitimate in-tree workload but small enough that a hostile image
/// cannot exhaust host memory.
pub const DEFAULT_PAGE_CAP: usize = 1 << 16;

impl Default for Memory {
    fn default() -> Memory {
        Memory { pages: HashMap::new(), page_cap: DEFAULT_PAGE_CAP, cap_hit: false, scratch: None }
    }
}

impl Memory {
    /// An empty (all-zero) address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Lower (or raise) the resident-page ceiling. Existing pages stay.
    pub fn set_page_cap(&mut self, pages: usize) {
        self.page_cap = pages;
    }

    /// `true` once a write has been dropped because the address space
    /// exceeded the page cap. Sticky.
    pub fn cap_hit(&self) -> bool {
        self.cap_hit
    }

    /// Number of currently resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes beyond which any bulk operation is guaranteed to blow the
    /// page cap; callers clamp their loops to this to bound time as
    /// well as space.
    pub fn cap_bytes(&self) -> u64 {
        (self.page_cap as u64 + 2) << PAGE_BITS
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE as usize] {
        let key = addr >> PAGE_BITS;
        if !self.pages.contains_key(&key) && self.pages.len() >= self.page_cap {
            // Over the cap: latch the flag and absorb the write into
            // the scratch page so callers never observe a fault here.
            self.cap_hit = true;
            return self.scratch.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        }
        self.pages.entry(key).or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.page_mut(addr)[(addr & (PAGE_SIZE - 1)) as usize] = v;
    }

    /// Read a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Write a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        let b = v.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Read a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + 4 <= PAGE_SIZE as usize {
            match self.page(addr) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Write a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        let b = v.to_le_bytes();
        if off + 4 <= PAGE_SIZE as usize {
            let p = self.page_mut(addr);
            p[off..off + 4].copy_from_slice(&b);
        } else {
            for (i, byte) in b.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *byte);
            }
        }
    }

    /// Read a little-endian 64-bit value (the `vmov` register width).
    pub fn read_u64(&self, addr: u32) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr.wrapping_add(4)) as u64) << 32)
    }

    /// Write a little-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u32, v: u64) {
        self.write_u32(addr, v as u32);
        self.write_u32(addr.wrapping_add(4), (v >> 32) as u32);
    }

    /// Read a sized value (1, 2 or 4 bytes), zero-extended.
    pub fn read_sized(&self, addr: u32, size: wyt_isa::Size) -> u32 {
        match size {
            wyt_isa::Size::B => self.read_u8(addr) as u32,
            wyt_isa::Size::W => self.read_u16(addr) as u32,
            wyt_isa::Size::D => self.read_u32(addr),
        }
    }

    /// Write the low `size` bytes of `v`.
    pub fn write_sized(&mut self, addr: u32, v: u32, size: wyt_isa::Size) {
        match size {
            wyt_isa::Size::B => self.write_u8(addr, v as u8),
            wyt_isa::Size::W => self.write_u16(addr, v as u16),
            wyt_isa::Size::D => self.write_u32(addr, v),
        }
    }

    /// Copy `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i))).collect()
    }

    /// Read a NUL-terminated C string (capped at 1 MiB to bound runaway
    /// reads of unterminated data).
    pub fn read_cstr(&self, addr: u32) -> Vec<u8> {
        let mut out = Vec::new();
        let mut a = addr;
        while out.len() < (1 << 20) {
            let b = self.read_u8(a);
            if b == 0 {
                break;
            }
            out.push(b);
            a = a.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_isa::Size;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xdead_beef), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xbeef);
        m.write_u32(30, 0xdead_beef);
        m.write_u64(40, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xbeef);
        assert_eq!(m.read_u32(30), 0xdead_beef);
        assert_eq!(m.read_u64(40), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn page_boundary_crossing() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 2;
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.read_u16(addr), 0x3344);
        assert_eq!(m.read_u16(addr + 2), 0x1122);
    }

    #[test]
    fn sized_access_masks() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0xffff_ffff);
        m.write_sized(0x100, 0x12, Size::B);
        assert_eq!(m.read_u32(0x100), 0xffff_ff12);
        assert_eq!(m.read_sized(0x100, Size::W), 0xff12);
    }

    #[test]
    fn page_cap_latches_instead_of_allocating() {
        let mut m = Memory::new();
        m.set_page_cap(2);
        m.write_u8(0, 1);
        m.write_u8(PAGE_SIZE, 2);
        assert!(!m.cap_hit());
        assert_eq!(m.resident_pages(), 2);
        // Third page: the write is absorbed, the flag latches, nothing
        // new is resident.
        m.write_u8(PAGE_SIZE * 2, 3);
        assert!(m.cap_hit());
        assert_eq!(m.resident_pages(), 2);
        // Earlier pages still read back; the dropped write reads zero.
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(PAGE_SIZE * 2), 0);
        // Writes to already-resident pages still land.
        m.write_u8(1, 9);
        assert_eq!(m.read_u8(1), 9);
    }

    #[test]
    fn cstr_reads_until_nul() {
        let mut m = Memory::new();
        m.write_bytes(0x200, b"hello\0world");
        assert_eq!(m.read_cstr(0x200), b"hello");
        assert_eq!(m.read_cstr(0x206), b"world");
    }
}
