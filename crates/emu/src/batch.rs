//! Sink-side batching helpers for trace consumers.
//!
//! Every hot loop replays the same few control transfers millions of
//! times, and a set-backed recorder pays a tree probe for each replay.
//! [`EdgeCache`] is a tiny last-N ring the sink consults first: an edge
//! seen in the last N transfers is guaranteed to already be in the
//! consumer's edge *set*, so re-recording it is a no-op the sink can
//! skip entirely. Because the downstream store has set semantics the
//! cache never needs invalidation — a hit only ever suppresses a
//! redundant insert, so the merged trace is byte-identical with or
//! without the cache.

use crate::machine::TransferKind;

/// Ring size: big enough to hold the edge working set of a nested hot
/// loop, small enough that the linear probe stays in one cache line's
/// worth of entries.
const CACHE_EDGES: usize = 16;

/// A last-N cache of `(from, to, kind)` transfer records (see module
/// docs). `Default` starts empty.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    ring: [(u32, u32, TransferKind); CACHE_EDGES],
    len: usize,
    cursor: usize,
    hits: u64,
}

impl Default for EdgeCache {
    fn default() -> EdgeCache {
        EdgeCache { ring: [(0, 0, TransferKind::Jump); CACHE_EDGES], len: 0, cursor: 0, hits: 0 }
    }
}

impl EdgeCache {
    /// Note one transfer. Returns `true` when the edge was *not* among
    /// the last N seen — the caller must record it; `false` means it was
    /// recorded moments ago and the (set-semantics) store already has it.
    pub fn note(&mut self, from: u32, to: u32, kind: TransferKind) -> bool {
        let e = (from, to, kind);
        if self.ring[..self.len].contains(&e) {
            self.hits += 1;
            return false;
        }
        self.ring[self.cursor] = e;
        self.cursor = (self.cursor + 1) % CACHE_EDGES;
        self.len = (self.len + 1).min(CACHE_EDGES);
        true
    }

    /// Transfers suppressed as recently-seen duplicates.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_hit_and_fresh_edges_miss() {
        let mut c = EdgeCache::default();
        assert!(c.note(10, 20, TransferKind::Jump));
        assert!(!c.note(10, 20, TransferKind::Jump));
        assert!(c.note(10, 20, TransferKind::Call), "kind is part of the key");
        assert!(c.note(10, 24, TransferKind::Jump), "target is part of the key");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn eviction_after_capacity_distinct_edges() {
        let mut c = EdgeCache::default();
        assert!(c.note(0, 1, TransferKind::Jump));
        for i in 1..=CACHE_EDGES as u32 {
            assert!(c.note(i, i + 1, TransferKind::Jump));
        }
        // The first edge was evicted; re-noting it is a miss again.
        assert!(c.note(0, 1, TransferKind::Jump));
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn hot_loop_working_set_stays_cached() {
        let mut c = EdgeCache::default();
        let loop_edges = [
            (100, 120, TransferKind::CondTaken),
            (130, 100, TransferKind::Jump),
            (120, 130, TransferKind::CondFall),
        ];
        let mut inserts = 0;
        for _ in 0..1000 {
            for &(f, t, k) in &loop_edges {
                if c.note(f, t, k) {
                    inserts += 1;
                }
            }
        }
        assert_eq!(inserts, loop_edges.len(), "steady state skips the store");
        assert_eq!(c.hits(), 999 * loop_edges.len() as u64);
    }
}
