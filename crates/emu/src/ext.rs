//! The emulated C library.
//!
//! Externals are host-implemented functions reachable through an image's
//! import table. They are shared between the machine emulator and the IR
//! interpreter (lifted and recompiled programs call the *same* handlers),
//! so differences in measured runtime come from generated code only.
//!
//! The set corresponds to the external-function database of the paper's
//! §5.3: it includes representatives of every effect class the WYTIWYG
//! runtime has to model (`memset` ⇒ `Clear`, `memcpy` ⇒ `Copy`, `strchr` ⇒
//! `Derive`, `read_bytes` ⇒ `ObjectSize`, strings ⇒ `ZeroTerminated`,
//! `printf` ⇒ `FormatStr`).

use crate::memory::Memory;
use std::fmt;

/// Identifier of an emulated external function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtId {
    /// `int printf(const char *fmt, ...)` — variadic; arguments described
    /// by the format string.
    Printf,
    /// `int putchar(int c)`.
    Putchar,
    /// `int puts(const char *s)`.
    Puts,
    /// `int getchar(void)` — reads the run's input stream, -1 at EOF.
    Getchar,
    /// `int read_bytes(void *buf, int n)` — `fread`-like bulk input; returns
    /// the number of bytes stored.
    ReadBytes,
    /// `void *malloc(int n)`.
    Malloc,
    /// `void *calloc(int n, int sz)`.
    Calloc,
    /// `void free(void *p)` — a no-op in the bump allocator.
    Free,
    /// `void *realloc(void *p, int n)`.
    Realloc,
    /// `void *memcpy(void *dst, const void *src, int n)`.
    Memcpy,
    /// `void *memset(void *p, int c, int n)`.
    Memset,
    /// `void *memmove(void *dst, const void *src, int n)`.
    Memmove,
    /// `int strlen(const char *s)`.
    Strlen,
    /// `char *strcpy(char *dst, const char *src)`.
    Strcpy,
    /// `int strcmp(const char *a, const char *b)`.
    Strcmp,
    /// `char *strchr(const char *s, int c)` — returns a pointer *derived*
    /// from its argument.
    Strchr,
    /// `void exit(int code)`.
    Exit,
    /// `void abort(void)`.
    Abort,
}

impl ExtId {
    /// All externals.
    pub const ALL: [ExtId; 18] = [
        ExtId::Printf,
        ExtId::Putchar,
        ExtId::Puts,
        ExtId::Getchar,
        ExtId::ReadBytes,
        ExtId::Malloc,
        ExtId::Calloc,
        ExtId::Free,
        ExtId::Realloc,
        ExtId::Memcpy,
        ExtId::Memset,
        ExtId::Memmove,
        ExtId::Strlen,
        ExtId::Strcpy,
        ExtId::Strcmp,
        ExtId::Strchr,
        ExtId::Exit,
        ExtId::Abort,
    ];

    /// The import-table name of the external.
    pub fn name(self) -> &'static str {
        match self {
            ExtId::Printf => "printf",
            ExtId::Putchar => "putchar",
            ExtId::Puts => "puts",
            ExtId::Getchar => "getchar",
            ExtId::ReadBytes => "read_bytes",
            ExtId::Malloc => "malloc",
            ExtId::Calloc => "calloc",
            ExtId::Free => "free",
            ExtId::Realloc => "realloc",
            ExtId::Memcpy => "memcpy",
            ExtId::Memset => "memset",
            ExtId::Memmove => "memmove",
            ExtId::Strlen => "strlen",
            ExtId::Strcpy => "strcpy",
            ExtId::Strcmp => "strcmp",
            ExtId::Strchr => "strchr",
            ExtId::Exit => "exit",
            ExtId::Abort => "abort",
        }
    }

    /// Resolve an import-table name.
    pub fn from_name(name: &str) -> Option<ExtId> {
        ExtId::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// Number of *fixed* (named) arguments. `printf` has one fixed argument
    /// plus varargs described by the format string.
    pub fn fixed_args(self) -> usize {
        match self {
            ExtId::Printf => 1,
            ExtId::Putchar => 1,
            ExtId::Puts => 1,
            ExtId::Getchar => 0,
            ExtId::ReadBytes => 2,
            ExtId::Malloc => 1,
            ExtId::Calloc => 2,
            ExtId::Free => 1,
            ExtId::Realloc => 2,
            ExtId::Memcpy => 3,
            ExtId::Memset => 3,
            ExtId::Memmove => 3,
            ExtId::Strlen => 1,
            ExtId::Strcpy => 2,
            ExtId::Strcmp => 2,
            ExtId::Strchr => 2,
            ExtId::Exit => 1,
            ExtId::Abort => 0,
        }
    }

    /// `true` for functions with a variable argument list.
    pub fn is_variadic(self) -> bool {
        matches!(self, ExtId::Printf)
    }
}

impl fmt::Display for ExtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The kind of one `printf`-style conversion argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmtArg {
    /// `%d` — signed decimal.
    Int,
    /// `%u` — unsigned decimal.
    Uint,
    /// `%x` — lowercase hex.
    Hex,
    /// `%c` — a character.
    Char,
    /// `%s` — a NUL-terminated string pointer.
    Str,
}

/// Parse the conversions of a `printf` format string.
///
/// Supports `%[0][width]{d,u,x,c,s}` and the literal `%%`. This is the same
/// routine WYTIWYG's variadic-call refinement uses to recover exact
/// signatures at call sites (paper §5.2).
pub fn parse_format(fmt: &[u8]) -> Vec<FmtArg> {
    let mut args = Vec::new();
    let mut i = 0;
    while i < fmt.len() {
        if fmt[i] == b'%' {
            i += 1;
            while i < fmt.len() && (fmt[i] == b'0' || fmt[i].is_ascii_digit()) {
                i += 1;
            }
            if i < fmt.len() {
                match fmt[i] {
                    b'd' => args.push(FmtArg::Int),
                    b'u' => args.push(FmtArg::Uint),
                    b'x' => args.push(FmtArg::Hex),
                    b'c' => args.push(FmtArg::Char),
                    b's' => args.push(FmtArg::Str),
                    b'%' => {}
                    _ => {}
                }
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    args
}

/// I/O and allocator state shared by a program run.
#[derive(Debug, Clone)]
pub struct ExtIo {
    /// Input stream consumed by `getchar`/`read_bytes`.
    pub input: Vec<u8>,
    /// Read cursor into `input`.
    pub input_pos: usize,
    /// Everything the program printed.
    pub output: Vec<u8>,
    /// Bump-allocator frontier for `malloc`.
    pub heap_next: u32,
}

impl ExtIo {
    /// A fresh I/O state with the given input stream.
    pub fn new(input: Vec<u8>) -> ExtIo {
        ExtIo { input, input_pos: 0, output: Vec::new(), heap_next: wyt_isa::image::HEAP_BASE }
    }
}

impl Default for ExtIo {
    fn default() -> ExtIo {
        ExtIo::new(Vec::new())
    }
}

/// Source of call arguments: index 0 is the first argument. The machine
/// emulator reads them from the stack; the IR interpreter supplies explicit
/// values once calls have been refined.
pub trait ArgSource {
    /// The `i`-th 32-bit argument.
    fn arg(&mut self, i: usize) -> u32;
}

impl ArgSource for &[u32] {
    fn arg(&mut self, i: usize) -> u32 {
        // Arguments past the supplied list read as zero: a call site with
        // an under-recovered arity must degrade deterministically (and be
        // caught by behavioral validation), not abort the host process.
        self.get(i).copied().unwrap_or(0)
    }
}

/// Result of dispatching an external call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtOutcome {
    /// Normal return: value and extra cycle cost.
    Ret {
        /// Return value placed in `eax`.
        value: u32,
        /// Cycle cost charged for the call's internal work.
        cost: u64,
    },
    /// The program called `exit(code)`.
    Exit(i32),
    /// The program called `abort()`.
    Abort,
}

fn ret(value: u32, cost: u64) -> ExtOutcome {
    ExtOutcome::Ret { value, cost }
}

fn format_one(out: &mut Vec<u8>, spec: FmtArg, width: usize, zero: bool, v: u32, mem: &Memory) {
    let body = match spec {
        FmtArg::Int => format!("{}", v as i32).into_bytes(),
        FmtArg::Uint => format!("{v}").into_bytes(),
        FmtArg::Hex => format!("{v:x}").into_bytes(),
        FmtArg::Char => vec![v as u8],
        FmtArg::Str => mem.read_cstr(v),
    };
    if body.len() < width {
        let pad = if zero && !matches!(spec, FmtArg::Str | FmtArg::Char) { b'0' } else { b' ' };
        out.extend(std::iter::repeat(pad).take(width - body.len()));
    }
    out.extend_from_slice(&body);
}

fn do_printf(mem: &Memory, io: &mut ExtIo, args: &mut dyn ArgSource) -> (u32, u64) {
    let fmt_ptr = args.arg(0);
    let fmt = mem.read_cstr(fmt_ptr);
    let mut out = Vec::new();
    let mut next_arg = 1usize;
    let mut i = 0;
    while i < fmt.len() {
        if fmt[i] == b'%' {
            i += 1;
            let zero = i < fmt.len() && fmt[i] == b'0';
            if zero {
                i += 1;
            }
            let mut width = 0usize;
            while i < fmt.len() && fmt[i].is_ascii_digit() {
                width = width * 10 + (fmt[i] - b'0') as usize;
                i += 1;
            }
            if i < fmt.len() {
                let spec = match fmt[i] {
                    b'd' => Some(FmtArg::Int),
                    b'u' => Some(FmtArg::Uint),
                    b'x' => Some(FmtArg::Hex),
                    b'c' => Some(FmtArg::Char),
                    b's' => Some(FmtArg::Str),
                    b'%' => {
                        out.push(b'%');
                        None
                    }
                    other => {
                        out.push(b'%');
                        out.push(other);
                        None
                    }
                };
                if let Some(spec) = spec {
                    let v = args.arg(next_arg);
                    next_arg += 1;
                    format_one(&mut out, spec, width, zero, v, mem);
                }
                i += 1;
            }
        } else {
            out.push(fmt[i]);
            i += 1;
        }
    }
    let cost = 4 + out.len() as u64;
    let n = out.len() as u32;
    io.output.extend_from_slice(&out);
    (n, cost)
}

/// Execute the external `ext`.
///
/// Reads arguments from `args`, performs the effect against `mem`/`io`, and
/// returns the outcome. The cycle `cost` in [`ExtOutcome::Ret`] is charged
/// identically whether the caller is a native binary, a lifted program or a
/// recompiled binary.
pub fn dispatch(
    ext: ExtId,
    mem: &mut Memory,
    io: &mut ExtIo,
    args: &mut dyn ArgSource,
) -> ExtOutcome {
    match ext {
        ExtId::Printf => {
            let (n, cost) = do_printf(mem, io, args);
            ret(n, cost)
        }
        ExtId::Putchar => {
            let c = args.arg(0);
            io.output.push(c as u8);
            ret(c, 2)
        }
        ExtId::Puts => {
            let s = mem.read_cstr(args.arg(0));
            let cost = 2 + s.len() as u64;
            io.output.extend_from_slice(&s);
            io.output.push(b'\n');
            ret(0, cost)
        }
        ExtId::Getchar => {
            if io.input_pos < io.input.len() {
                let b = io.input[io.input_pos];
                io.input_pos += 1;
                ret(b as u32, 2)
            } else {
                ret(-1i32 as u32, 2)
            }
        }
        ExtId::ReadBytes => {
            let buf = args.arg(0);
            let n = args.arg(1) as usize;
            let avail = io.input.len() - io.input_pos.min(io.input.len());
            let take = n.min(avail);
            for i in 0..take {
                mem.write_u8(buf.wrapping_add(i as u32), io.input[io.input_pos + i]);
            }
            io.input_pos += take;
            ret(take as u32, 2 + (take as u64 / 4))
        }
        ExtId::Malloc => {
            let n = args.arg(0);
            ret(alloc(io, mem, n), 6)
        }
        ExtId::Calloc => {
            let total = args.arg(0).wrapping_mul(args.arg(1));
            // The bump allocator never reuses memory, and fresh pages read
            // as zero, so calloc is just malloc.
            ret(alloc(io, mem, total), 6 + total as u64 / 8)
        }
        ExtId::Free => ret(0, 2),
        ExtId::Realloc => {
            let old = args.arg(0);
            let n = args.arg(1);
            if old == 0 {
                return ret(alloc(io, mem, n), 6);
            }
            // `old_size` comes from guest-writable memory; clamp it like
            // any other hostile length before driving the copy loop.
            let old_size = clamp_len(mem, mem.read_u32(old.wrapping_sub(4)));
            let new = alloc(io, mem, n);
            let copy = old_size.min(n);
            for i in 0..copy {
                let b = mem.read_u8(old.wrapping_add(i));
                mem.write_u8(new.wrapping_add(i), b);
            }
            ret(new, 6 + copy as u64 / 4)
        }
        ExtId::Memcpy | ExtId::Memmove => {
            let dst = args.arg(0);
            let src = args.arg(1);
            let n = clamp_len(mem, args.arg(2));
            // The paged model copies byte-wise; memmove-safe by buffering.
            let bytes = mem.read_bytes(src, n);
            mem.write_bytes(dst, &bytes);
            ret(dst, 2 + n as u64 / 4)
        }
        ExtId::Memset => {
            let dst = args.arg(0);
            let c = args.arg(1) as u8;
            let n = clamp_len(mem, args.arg(2));
            for i in 0..n {
                mem.write_u8(dst.wrapping_add(i), c);
            }
            ret(dst, 2 + n as u64 / 4)
        }
        ExtId::Strlen => {
            let s = mem.read_cstr(args.arg(0));
            ret(s.len() as u32, 2 + s.len() as u64 / 4)
        }
        ExtId::Strcpy => {
            let dst = args.arg(0);
            let s = mem.read_cstr(args.arg(1));
            mem.write_bytes(dst, &s);
            mem.write_u8(dst.wrapping_add(s.len() as u32), 0);
            ret(dst, 2 + s.len() as u64 / 4)
        }
        ExtId::Strcmp => {
            let a = mem.read_cstr(args.arg(0));
            let b = mem.read_cstr(args.arg(1));
            let r = match a.cmp(&b) {
                std::cmp::Ordering::Less => -1i32,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            ret(r as u32, 2 + a.len().min(b.len()) as u64 / 4)
        }
        ExtId::Strchr => {
            let p = args.arg(0);
            let c = args.arg(1) as u8;
            let s = mem.read_cstr(p);
            let r = match s.iter().position(|&b| b == c) {
                Some(i) => p.wrapping_add(i as u32),
                None if c == 0 => p.wrapping_add(s.len() as u32),
                None => 0,
            };
            ret(r, 2 + s.len() as u64 / 4)
        }
        ExtId::Exit => ExtOutcome::Exit(args.arg(0) as i32),
        ExtId::Abort => ExtOutcome::Abort,
    }
}

/// Clamp a guest-supplied byte count for a bulk operation. Any length
/// beyond [`Memory::cap_bytes`] is guaranteed to latch the page cap
/// mid-operation (the machine then raises `Trap::MemLimit`), so the
/// tail carries no observable effect — clamping bounds host time and
/// allocation without changing guest-visible behaviour.
fn clamp_len(mem: &Memory, n: u32) -> u32 {
    u32::try_from((n as u64).min(mem.cap_bytes())).unwrap_or(u32::MAX)
}

/// Bump-allocate `n` bytes (8-byte aligned) with a hidden size header, so
/// `realloc` can find the old length. Arithmetic wraps with the 32-bit
/// guest address space — a hostile allocation size must not overflow
/// host arithmetic.
fn alloc(io: &mut ExtIo, mem: &mut Memory, n: u32) -> u32 {
    let header = io.heap_next;
    mem.write_u32(header, n);
    let ptr = header.wrapping_add(4);
    let size = ((n as u64 + 4 + 7) & !7) as u32;
    io.heap_next = header.wrapping_add(size.max(8));
    ptr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(ext: ExtId, mem: &mut Memory, io: &mut ExtIo, args: &[u32]) -> ExtOutcome {
        let mut a = args;
        dispatch(ext, mem, io, &mut a)
    }

    #[test]
    fn name_roundtrip() {
        for e in ExtId::ALL {
            assert_eq!(ExtId::from_name(e.name()), Some(e));
        }
        assert_eq!(ExtId::from_name("nonsense"), None);
    }

    #[test]
    fn format_parser() {
        assert_eq!(
            parse_format(b"x=%d s=%s %% %04x %c %u"),
            vec![FmtArg::Int, FmtArg::Str, FmtArg::Hex, FmtArg::Char, FmtArg::Uint]
        );
        assert_eq!(parse_format(b"no args"), vec![]);
    }

    #[test]
    fn printf_formats() {
        let mut mem = Memory::new();
        let mut io = ExtIo::default();
        mem.write_bytes(0x1000, b"v=%d h=%04x c=%c s=%s %%\0");
        mem.write_bytes(0x2000, b"str\0");
        let out = call(
            ExtId::Printf,
            &mut mem,
            &mut io,
            &[0x1000, (-5i32) as u32, 0xab, b'Q' as u32, 0x2000],
        );
        assert!(matches!(out, ExtOutcome::Ret { .. }));
        assert_eq!(io.output, b"v=-5 h=00ab c=Q s=str %");
    }

    #[test]
    fn getchar_and_read_bytes() {
        let mut mem = Memory::new();
        let mut io = ExtIo::new(b"abcdef".to_vec());
        assert_eq!(
            call(ExtId::Getchar, &mut mem, &mut io, &[]),
            ExtOutcome::Ret { value: b'a' as u32, cost: 2 }
        );
        let out = call(ExtId::ReadBytes, &mut mem, &mut io, &[0x3000, 10]);
        assert_eq!(out, ExtOutcome::Ret { value: 5, cost: 3 });
        assert_eq!(mem.read_bytes(0x3000, 5), b"bcdef");
        assert_eq!(
            call(ExtId::Getchar, &mut mem, &mut io, &[]),
            ExtOutcome::Ret { value: u32::MAX, cost: 2 }
        );
    }

    #[test]
    fn malloc_realloc_preserves_contents() {
        let mut mem = Memory::new();
        let mut io = ExtIo::default();
        let ExtOutcome::Ret { value: p, .. } = call(ExtId::Malloc, &mut mem, &mut io, &[8]) else {
            panic!()
        };
        assert_eq!(p % 4, 0);
        mem.write_u32(p, 0x1234_5678);
        let ExtOutcome::Ret { value: q, .. } = call(ExtId::Realloc, &mut mem, &mut io, &[p, 64])
        else {
            panic!()
        };
        assert_ne!(p, q);
        assert_eq!(mem.read_u32(q), 0x1234_5678);
    }

    #[test]
    fn string_functions() {
        let mut mem = Memory::new();
        let mut io = ExtIo::default();
        mem.write_bytes(0x100, b"hello\0");
        assert_eq!(
            call(ExtId::Strlen, &mut mem, &mut io, &[0x100]),
            ExtOutcome::Ret { value: 5, cost: 3 }
        );
        call(ExtId::Strcpy, &mut mem, &mut io, &[0x200, 0x100]);
        assert_eq!(mem.read_cstr(0x200), b"hello");
        let ExtOutcome::Ret { value, .. } = call(ExtId::Strcmp, &mut mem, &mut io, &[0x100, 0x200])
        else {
            panic!()
        };
        assert_eq!(value, 0);
        let ExtOutcome::Ret { value: at, .. } =
            call(ExtId::Strchr, &mut mem, &mut io, &[0x100, b'l' as u32])
        else {
            panic!()
        };
        assert_eq!(at, 0x102);
    }

    #[test]
    fn exit_and_abort() {
        let mut mem = Memory::new();
        let mut io = ExtIo::default();
        assert_eq!(call(ExtId::Exit, &mut mem, &mut io, &[3]), ExtOutcome::Exit(3));
        assert_eq!(call(ExtId::Abort, &mut mem, &mut io, &[]), ExtOutcome::Abort);
    }

    #[test]
    fn memset_and_memcpy() {
        let mut mem = Memory::new();
        let mut io = ExtIo::default();
        call(ExtId::Memset, &mut mem, &mut io, &[0x500, 0xaa, 8]);
        assert_eq!(mem.read_u64(0x500), 0xaaaa_aaaa_aaaa_aaaa);
        call(ExtId::Memcpy, &mut mem, &mut io, &[0x600, 0x500, 8]);
        assert_eq!(mem.read_u64(0x600), 0xaaaa_aaaa_aaaa_aaaa);
    }
}
