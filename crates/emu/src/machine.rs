//! The machine emulator: fetch/decode/execute with tracing hooks and a
//! deterministic cycle cost model.

use crate::ext::{dispatch, ExtId, ExtIo, ExtOutcome};
use crate::memory::Memory;
use std::fmt;
use wyt_isa::image::{Image, STACK_TOP};
use wyt_isa::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
use wyt_obs::MemStats;

/// Size of the machine-stack window used for access classification:
/// addresses in `(STACK_TOP - STACK_CLASSIFY_WINDOW, STACK_TOP]` count as
/// native stack-slot traffic. 64 MiB reaches far below any real frame
/// depth while staying above the heap.
pub const STACK_CLASSIFY_WINDOW: u32 = 1 << 26;

/// Sentinel return address pushed below the entry frame; `ret`-ing to it
/// ends the program with `eax` as the exit code.
pub const RETURN_SENTINEL: u32 = 0xffff_fff0;

/// Kind of an observed control transfer (what the paper's binary tracer
/// records, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransferKind {
    /// Unconditional direct jump.
    Jump,
    /// Conditional branch, taken.
    CondTaken,
    /// Conditional branch, fallthrough.
    CondFall,
    /// Indirect jump (jump table).
    IndJump,
    /// Direct call.
    Call,
    /// Indirect call.
    IndCall,
    /// Return.
    Ret,
}

impl TransferKind {
    /// Smallest variant in `Ord` order — lower bound for edge-set range
    /// queries keyed `(from, to, kind)`.
    pub const MIN: TransferKind = TransferKind::Jump;
    /// Largest variant in `Ord` order — upper bound for edge-set range
    /// queries keyed `(from, to, kind)`.
    pub const MAX: TransferKind = TransferKind::Ret;

    /// `true` for [`TransferKind::Call`] and [`TransferKind::IndCall`].
    pub fn is_call(self) -> bool {
        matches!(self, TransferKind::Call | TransferKind::IndCall)
    }
}

/// Receiver for dynamic trace events.
pub trait TraceSink {
    /// A control transfer from the instruction at `from` to `to`.
    fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
        let _ = (from, to, kind);
    }
    /// An external call at `pc` to import `idx`, with the stack pointer at
    /// the time of the call (arguments live at `[esp]`, `[esp+4]`, ...).
    fn ext_call(&mut self, pc: u32, idx: u16, esp: u32) {
        let _ = (pc, idx, esp);
    }
}

/// A [`TraceSink`] that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Machine flags (subset of EFLAGS).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Carry flag.
    pub cf: bool,
}

impl Flags {
    /// Evaluate a condition code against the flags.
    pub fn cond(&self, cc: Cc) -> bool {
        match cc {
            Cc::E => self.zf,
            Cc::Ne => !self.zf,
            Cc::L => self.sf != self.of,
            Cc::Le => self.zf || self.sf != self.of,
            Cc::G => !self.zf && self.sf == self.of,
            Cc::Ge => self.sf == self.of,
            Cc::B => self.cf,
            Cc::Be => self.cf || self.zf,
            Cc::A => !self.cf && !self.zf,
            Cc::Ae => !self.cf,
            Cc::S => self.sf,
            Cc::Ns => !self.sf,
        }
    }
}

/// A fatal execution condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The program counter left the text segment.
    BadPc(u32),
    /// Undecodable bytes at the program counter.
    BadDecode(u32),
    /// Signed division by zero or overflow.
    DivideError(u32),
    /// Call to an import the host does not implement.
    UnknownImport(u32, u16),
    /// The instruction budget was exhausted (runaway program).
    OutOfFuel,
    /// The program exceeded the resident-memory ceiling (address-space
    /// sweep); `pc` is the instruction whose write blew the cap.
    MemLimit(u32),
    /// The program called `abort()`.
    Aborted,
    /// An explicit [`Inst::Trap`] executed (recompiler guard on an
    /// untraced path).
    TrapInst { pc: u32, code: u8 },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::BadPc(pc) => write!(f, "pc {pc:#x} outside text"),
            Trap::BadDecode(pc) => write!(f, "bad instruction at {pc:#x}"),
            Trap::DivideError(pc) => write!(f, "divide error at {pc:#x}"),
            Trap::UnknownImport(pc, idx) => write!(f, "unknown import {idx} at {pc:#x}"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
            Trap::MemLimit(pc) => write!(f, "memory ceiling exceeded at {pc:#x}"),
            Trap::Aborted => write!(f, "abort() called"),
            Trap::TrapInst { pc, code } => write!(f, "trap {code} at {pc:#x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Exit code (0 if the program trapped).
    pub exit_code: i32,
    /// The trap that ended the run, if it did not exit cleanly.
    pub trap: Option<Trap>,
    /// Deterministic cycle count — the reproduction's "runtime".
    pub cycles: u64,
    /// Number of retired instructions.
    pub inst_count: u64,
    /// Memory-access telemetry. Load/store totals are always counted;
    /// the stack-region classification is populated only when the
    /// `wyt-obs` sink was enabled when the machine was built (it costs
    /// range checks on the hot path).
    pub mem: MemStats,
    /// Bytes written to the output stream.
    pub output: Vec<u8>,
}

impl RunResult {
    /// `true` if the program exited without trapping.
    pub fn ok(&self) -> bool {
        self.trap.is_none()
    }
}

enum Status {
    Running,
    Exited(i32),
}

/// The emulator. Owns the memory image, register file and I/O state of one
/// program execution.
pub struct Machine<'img> {
    img: &'img Image,
    /// Decoded-instruction cache indexed by text offset.
    icache: Vec<Option<(Inst, u8)>>,
    ext_ids: Vec<Option<ExtId>>,
    /// General purpose registers.
    pub regs: [u32; 8],
    /// The 64-bit vector register backing `vmov`.
    pub vreg: u64,
    /// Condition flags.
    pub flags: Flags,
    /// Program counter.
    pub pc: u32,
    /// Memory.
    pub mem: Memory,
    /// I/O and heap state.
    pub io: ExtIo,
    cycles: u64,
    inst_count: u64,
    fuel: u64,
    cycle_budget: u64,
    mem_stats: MemStats,
    /// Emulated-stack global's address range in this image, when the
    /// caller wants residual-stack classification (recompiled binaries
    /// keep the global at a fixed address).
    emu_range: Option<(u32, u32)>,
    /// Snapshot of `wyt_obs::enabled()` at construction; gates the
    /// per-access classification so a disabled sink costs one branch.
    classify: bool,
}

impl fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("regs", &self.regs)
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl<'img> Machine<'img> {
    /// Prepare a machine to run `img` with the given input stream.
    ///
    /// The data segment is loaded, `esp` points at the top of the stack
    /// with the [`RETURN_SENTINEL`] pushed, and `pc` is the entry point.
    pub fn new(img: &'img Image, input: Vec<u8>) -> Machine<'img> {
        let mut mem = Memory::new();
        mem.write_bytes(img.data_base, &img.data);
        let mut regs = [0u32; 8];
        let sp = STACK_TOP - 4;
        mem.write_u32(sp, RETURN_SENTINEL);
        regs[Reg::Esp.index()] = sp;
        let ext_ids = img.imports.iter().map(|n| ExtId::from_name(n)).collect();
        Machine {
            icache: vec![None; img.text.len()],
            img,
            ext_ids,
            regs,
            vreg: 0,
            flags: Flags::default(),
            pc: img.entry,
            mem,
            io: ExtIo::new(input),
            cycles: 0,
            inst_count: 0,
            fuel: 500_000_000,
            cycle_budget: u64::MAX,
            mem_stats: MemStats::default(),
            emu_range: None,
            classify: wyt_obs::enabled(),
        }
    }

    /// Override the instruction budget (default 500 million).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Cap total *cycles* as well as retired instructions (default
    /// unlimited). Bulk external calls (`memset`, `memcpy`, ...) charge
    /// cycles proportional to the bytes they touch but retire only one
    /// instruction, so a fuel budget alone does not bound a hostile
    /// program's work; harnesses executing untrusted images set this.
    pub fn set_cycle_budget(&mut self, cycles: u64) {
        self.cycle_budget = cycles;
    }

    /// Classify accesses in `[lo, hi)` as emulated-stack traffic (used
    /// when running recompiled images, whose emulated-stack global keeps
    /// its fixed address). Implies classification even if the obs sink
    /// was disabled at construction.
    pub fn set_emu_stack_range(&mut self, lo: u32, hi: u32) {
        self.emu_range = Some((lo, hi));
        self.classify = true;
    }

    #[inline]
    fn note_mem(&mut self, addr: u32, is_store: bool) {
        if is_store {
            self.mem_stats.stores += 1;
        } else {
            self.mem_stats.loads += 1;
        }
        if !self.classify {
            return;
        }
        let native = addr <= STACK_TOP && addr > STACK_TOP - STACK_CLASSIFY_WINDOW;
        let emu = matches!(self.emu_range, Some((lo, hi)) if addr >= lo && addr < hi);
        self.mem_stats.native_slot += native as u64;
        self.mem_stats.emu_stack += emu as u64;
        self.mem_stats.stack_total += (native || emu) as u64;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn inst_count(&self) -> u64 {
        self.inst_count
    }

    fn reg_read(&self, r: Reg, size: Size) -> u32 {
        self.regs[r.index()] & size.mask()
    }

    fn reg_write(&mut self, r: Reg, v: u32, size: Size) {
        // Sub-register writes leave the upper bits stale (x86 semantics,
        // and the root cause of the paper's "false derives", §4.2.3).
        let mask = size.mask();
        let slot = &mut self.regs[r.index()];
        *slot = (*slot & !mask) | (v & mask);
    }

    fn ea(&self, m: &Mem) -> u32 {
        let mut a = m.disp as u32;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.regs[b.index()]);
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.regs[i.index()].wrapping_mul(s as u32));
        }
        a
    }

    fn read_operand(&mut self, op: &Operand, size: Size) -> (u32, u64) {
        match op {
            Operand::Reg(r) => (self.reg_read(*r, size), 0),
            Operand::Imm(i) => ((*i as u32) & size.mask(), 0),
            Operand::Mem(m) => {
                let a = self.ea(m);
                self.note_mem(a, false);
                (self.mem.read_sized(a, size), 2)
            }
        }
    }

    fn write_operand(&mut self, op: &Operand, v: u32, size: Size) -> u64 {
        match op {
            Operand::Reg(r) => {
                self.reg_write(*r, v, size);
                0
            }
            // INVARIANT: `wyt_isa::decode` rejects immediate
            // destinations (`BadField("destination")`), and the machine
            // only executes decoded bytes, so this arm is unreachable
            // for any input.
            Operand::Imm(_) => unreachable!("write to immediate operand"),
            Operand::Mem(m) => {
                let a = self.ea(m);
                self.note_mem(a, true);
                self.mem.write_sized(a, v, size);
                2
            }
        }
    }

    fn set_flags_logic(&mut self, res: u32, size: Size) {
        let bits = size.bytes() * 8;
        let res = res & size.mask();
        self.flags.zf = res == 0;
        self.flags.sf = (res >> (bits - 1)) & 1 == 1;
        self.flags.of = false;
        self.flags.cf = false;
    }

    fn set_flags_add(&mut self, a: u32, b: u32, size: Size) -> u32 {
        let mask = size.mask();
        let bits = size.bytes() * 8;
        let (a, b) = (a & mask, b & mask);
        let res = a.wrapping_add(b) & mask;
        self.flags.zf = res == 0;
        self.flags.sf = (res >> (bits - 1)) & 1 == 1;
        self.flags.cf = (a as u64 + b as u64) > mask as u64;
        let sa = (a >> (bits - 1)) & 1;
        let sb = (b >> (bits - 1)) & 1;
        let sr = (res >> (bits - 1)) & 1;
        self.flags.of = sa == sb && sr != sa;
        res
    }

    fn set_flags_sub(&mut self, a: u32, b: u32, size: Size) -> u32 {
        let mask = size.mask();
        let bits = size.bytes() * 8;
        let (a, b) = (a & mask, b & mask);
        let res = a.wrapping_sub(b) & mask;
        self.flags.zf = res == 0;
        self.flags.sf = (res >> (bits - 1)) & 1 == 1;
        self.flags.cf = a < b;
        let sa = (a >> (bits - 1)) & 1;
        let sb = (b >> (bits - 1)) & 1;
        let sr = (res >> (bits - 1)) & 1;
        self.flags.of = sa != sb && sr != sa;
        res
    }

    fn push(&mut self, v: u32) {
        let sp = self.regs[Reg::Esp.index()].wrapping_sub(4);
        self.regs[Reg::Esp.index()] = sp;
        self.note_mem(sp, true);
        self.mem.write_u32(sp, v);
    }

    fn pop(&mut self) -> u32 {
        let sp = self.regs[Reg::Esp.index()];
        self.note_mem(sp, false);
        let v = self.mem.read_u32(sp);
        self.regs[Reg::Esp.index()] = sp.wrapping_add(4);
        v
    }

    fn fetch(&mut self) -> Result<(Inst, u8), Trap> {
        if !self.img.contains_code(self.pc) {
            return Err(Trap::BadPc(self.pc));
        }
        let off = (self.pc - self.img.text_base) as usize;
        if let Some(hit) = self.icache[off] {
            return Ok(hit);
        }
        match wyt_isa::decode(&self.img.text[off..]) {
            Ok((inst, len)) => {
                let entry = (inst, len as u8);
                self.icache[off] = Some(entry);
                Ok(entry)
            }
            Err(_) => Err(Trap::BadDecode(self.pc)),
        }
    }

    fn step<S: TraceSink>(&mut self, sink: &mut S) -> Result<Status, Trap> {
        if self.inst_count >= self.fuel || self.cycles >= self.cycle_budget {
            return Err(Trap::OutOfFuel);
        }
        let (inst, len) = self.fetch()?;
        let pc = self.pc;
        let next = pc.wrapping_add(len as u32);
        self.inst_count += 1;
        let mut cost: u64 = 1;
        let mut new_pc = next;

        match inst {
            Inst::Nop => {}
            Inst::Halt => {
                self.cycles += 1;
                return Ok(Status::Exited(self.regs[Reg::Eax.index()] as i32));
            }
            Inst::Mov { size, dst, src } => {
                let (v, c1) = self.read_operand(&src, size);
                let c2 = self.write_operand(&dst, v, size);
                cost += c1 + c2;
            }
            Inst::Movzx { from, dst, src } => {
                let (v, c1) = self.read_operand(&src, from);
                self.reg_write(dst, v, Size::D);
                cost += c1;
            }
            Inst::Movsx { from, dst, src } => {
                let (v, c1) = self.read_operand(&src, from);
                let bits = from.bytes() * 8;
                let sext = ((v as i32) << (32 - bits)) >> (32 - bits);
                self.reg_write(dst, sext as u32, Size::D);
                cost += c1;
            }
            Inst::Lea { dst, mem } => {
                let a = self.ea(&mem);
                self.reg_write(dst, a, Size::D);
            }
            Inst::Alu { op, size, dst, src } => {
                let (b, c1) = self.read_operand(&src, size);
                let (a, c2) = self.read_operand(&dst, size);
                let res = match op {
                    AluOp::Add => self.set_flags_add(a, b, size),
                    AluOp::Sub => self.set_flags_sub(a, b, size),
                    AluOp::And => {
                        let r = a & b;
                        self.set_flags_logic(r, size);
                        r
                    }
                    AluOp::Or => {
                        let r = a | b;
                        self.set_flags_logic(r, size);
                        r
                    }
                    AluOp::Xor => {
                        let r = a ^ b;
                        self.set_flags_logic(r, size);
                        r
                    }
                };
                let c3 = self.write_operand(&dst, res, size);
                cost += c1 + c2.max(c3); // a mem dst is read+written once
            }
            Inst::Cmp { size, a, b } => {
                let (bv, c1) = self.read_operand(&b, size);
                let (av, c2) = self.read_operand(&a, size);
                self.set_flags_sub(av, bv, size);
                cost += c1 + c2;
            }
            Inst::Test { size, a, b } => {
                let (bv, c1) = self.read_operand(&b, size);
                let (av, c2) = self.read_operand(&a, size);
                self.set_flags_logic(av & bv, size);
                cost += c1 + c2;
            }
            Inst::Imul { dst, src } => {
                let (b, c1) = self.read_operand(&src, Size::D);
                let a = self.reg_read(dst, Size::D);
                self.reg_write(dst, a.wrapping_mul(b), Size::D);
                cost += 2 + c1;
            }
            Inst::ImulI { dst, src, imm } => {
                let (a, c1) = self.read_operand(&src, Size::D);
                self.reg_write(dst, a.wrapping_mul(imm as u32), Size::D);
                cost += 2 + c1;
            }
            Inst::Idiv { src } => {
                let (d, c1) = self.read_operand(&src, Size::D);
                let a = self.regs[Reg::Eax.index()] as i32;
                let d = d as i32;
                if d == 0 || (a == i32::MIN && d == -1) {
                    return Err(Trap::DivideError(pc));
                }
                self.regs[Reg::Eax.index()] = (a / d) as u32;
                self.regs[Reg::Edx.index()] = (a % d) as u32;
                cost += 11 + c1;
            }
            Inst::Neg { size, dst } => {
                let (a, c1) = self.read_operand(&dst, size);
                let res = self.set_flags_sub(0, a, size);
                let c2 = self.write_operand(&dst, res, size);
                cost += c1.max(c2);
            }
            Inst::Not { size, dst } => {
                let (a, c1) = self.read_operand(&dst, size);
                let c2 = self.write_operand(&dst, !a, size);
                cost += c1.max(c2);
            }
            Inst::Shift { op, size, dst, amount } => {
                let amt = match amount {
                    ShiftAmount::Imm(i) => i as u32,
                    ShiftAmount::Cl => self.regs[Reg::Ecx.index()] & 0xff,
                } & 31;
                let (a, c1) = self.read_operand(&dst, size);
                let bits = size.bytes() * 8;
                let res = match op {
                    ShiftOp::Shl => a.wrapping_shl(amt),
                    ShiftOp::Shr => (a & size.mask()).wrapping_shr(amt),
                    ShiftOp::Sar => {
                        let sext = ((a as i32) << (32 - bits)) >> (32 - bits);
                        (sext >> amt.min(31)) as u32
                    }
                } & size.mask();
                if amt != 0 {
                    let masked = res & size.mask();
                    self.flags.zf = masked == 0;
                    self.flags.sf = (masked >> (bits - 1)) & 1 == 1;
                }
                let c2 = self.write_operand(&dst, res, size);
                cost += c1.max(c2);
            }
            Inst::Push { src } => {
                let (v, c1) = self.read_operand(&src, Size::D);
                self.push(v);
                cost += 2 + c1;
            }
            Inst::Pop { dst } => {
                let v = self.pop();
                let c1 = self.write_operand(&dst, v, Size::D);
                cost += 2 + c1;
            }
            Inst::Call { target } => {
                self.push(next);
                sink.transfer(pc, target, TransferKind::Call);
                new_pc = target;
                cost += 3;
            }
            Inst::CallInd { target } => {
                let (t, c1) = self.read_operand(&target, Size::D);
                self.push(next);
                sink.transfer(pc, t, TransferKind::IndCall);
                new_pc = t;
                cost += 4 + c1;
            }
            Inst::CallExt { idx } => {
                let Some(ext) = self.ext_ids.get(idx as usize).copied().flatten() else {
                    return Err(Trap::UnknownImport(pc, idx));
                };
                let esp = self.regs[Reg::Esp.index()];
                sink.ext_call(pc, idx, esp);
                // Split borrows: argument reads and handler effects both
                // touch memory, so stage the arguments eagerly.
                let outcome = {
                    let mut staged = [0u32; 16];
                    for (i, slot) in staged.iter_mut().enumerate() {
                        *slot = self.mem.read_u32(esp.wrapping_add(4 * i as u32));
                    }
                    let mut src: &[u32] = &staged;
                    dispatch(ext, &mut self.mem, &mut self.io, &mut src)
                };
                match outcome {
                    ExtOutcome::Ret { value, cost: c } => {
                        self.regs[Reg::Eax.index()] = value;
                        cost += 5 + c;
                    }
                    ExtOutcome::Exit(code) => {
                        self.cycles += cost + 5;
                        return Ok(Status::Exited(code));
                    }
                    ExtOutcome::Abort => return Err(Trap::Aborted),
                }
            }
            Inst::Ret { pop } => {
                let ra = self.pop();
                let sp = self.regs[Reg::Esp.index()];
                self.regs[Reg::Esp.index()] = sp.wrapping_add(pop as u32);
                cost += 3;
                if ra == RETURN_SENTINEL {
                    self.cycles += cost;
                    return Ok(Status::Exited(self.regs[Reg::Eax.index()] as i32));
                }
                sink.transfer(pc, ra, TransferKind::Ret);
                new_pc = ra;
            }
            Inst::Jmp { target } => {
                sink.transfer(pc, target, TransferKind::Jump);
                new_pc = target;
            }
            Inst::JmpInd { target } => {
                let (t, c1) = self.read_operand(&target, Size::D);
                sink.transfer(pc, t, TransferKind::IndJump);
                new_pc = t;
                cost += 1 + c1;
            }
            Inst::Jcc { cc, target } => {
                if self.flags.cond(cc) {
                    sink.transfer(pc, target, TransferKind::CondTaken);
                    new_pc = target;
                } else {
                    sink.transfer(pc, next, TransferKind::CondFall);
                }
            }
            Inst::Setcc { cc, dst } => {
                let v = self.flags.cond(cc) as u32;
                self.reg_write(dst, v, Size::B);
            }
            Inst::Leave => {
                self.regs[Reg::Esp.index()] = self.regs[Reg::Ebp.index()];
                let v = self.pop();
                self.regs[Reg::Ebp.index()] = v;
                cost += 2;
            }
            Inst::VmovLd { mem } => {
                let a = self.ea(&mem);
                self.note_mem(a, false);
                self.vreg = self.mem.read_u64(a);
                cost += 2;
            }
            Inst::VmovSt { mem } => {
                let a = self.ea(&mem);
                self.note_mem(a, true);
                self.mem.write_u64(a, self.vreg);
                cost += 2;
            }
            Inst::Trap { code } => return Err(Trap::TrapInst { pc, code }),
        }

        if self.mem.cap_hit() {
            return Err(Trap::MemLimit(pc));
        }
        self.cycles += cost;
        self.pc = new_pc;
        Ok(Status::Running)
    }

    /// Run to completion, reporting trace events to `sink`.
    pub fn run_with<S: TraceSink>(&mut self, sink: &mut S) -> RunResult {
        loop {
            let (exit_code, trap) = match self.step(sink) {
                Ok(Status::Running) => continue,
                Ok(Status::Exited(code)) => (code, None),
                Err(trap) => (0, Some(trap)),
            };
            self.flush_obs(trap.as_ref());
            return RunResult {
                exit_code,
                trap,
                cycles: self.cycles,
                inst_count: self.inst_count,
                mem: self.mem_stats,
                output: std::mem::take(&mut self.io.output),
            };
        }
    }

    /// Report run totals and the trap class to the global obs sink.
    fn flush_obs(&self, trap: Option<&Trap>) {
        if !wyt_obs::enabled() {
            return;
        }
        wyt_obs::counter("emu.runs", 1);
        wyt_obs::counter("emu.retired", self.inst_count);
        wyt_obs::counter("emu.cycles", self.cycles);
        wyt_obs::counter("emu.loads", self.mem_stats.loads);
        wyt_obs::counter("emu.stores", self.mem_stats.stores);
        wyt_obs::counter("emu.stack.native_slot", self.mem_stats.native_slot);
        wyt_obs::counter("emu.stack.emulated", self.mem_stats.emu_stack);
        let class = match trap {
            None => "emu.trap.exit",
            Some(Trap::OutOfFuel) => "emu.trap.fuel",
            Some(Trap::MemLimit(_)) => "emu.trap.memlimit",
            Some(Trap::DivideError(_)) => "emu.trap.divide",
            Some(Trap::Aborted) => "emu.trap.abort",
            Some(Trap::TrapInst { code, .. }) => match wyt_isa::TrapCode::guard_kind(*code) {
                Some(wyt_isa::GuardKind::UntracedBranch) => "emu.trap.guard.branch",
                Some(wyt_isa::GuardKind::UntracedIndirect) => "emu.trap.guard.indirect",
                None => "emu.trap.other",
            },
            Some(_) => "emu.trap.other",
        };
        wyt_obs::counter(class, 1);
    }

    /// Run to completion without tracing.
    pub fn run(&mut self) -> RunResult {
        self.run_with(&mut NullSink)
    }
}

/// Convenience: run `img` on `input` and return the result.
pub fn run_image(img: &Image, input: Vec<u8>) -> RunResult {
    Machine::new(img, input).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_isa::asm::Asm;
    use wyt_isa::image::Image;

    fn image_of(asm: Asm) -> Image {
        let mut img = Image::new();
        let out = asm.finish(img.text_base);
        img.text = out.bytes;
        img.entry = img.text_base;
        img
    }

    fn movri(r: Reg, v: i32) -> Inst {
        Inst::Mov { size: Size::D, dst: Operand::Reg(r), src: Operand::Imm(v) }
    }

    #[test]
    fn loop_and_flags() {
        // ecx = 5; eax = 0; loop: eax += ecx; ecx -= 1; jne loop; halt
        let mut a = Asm::new();
        a.emit(movri(Reg::Ecx, 5));
        a.emit(movri(Reg::Eax, 0));
        let top = a.here();
        a.emit(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Reg(Reg::Ecx),
        });
        a.emit(Inst::Alu {
            op: AluOp::Sub,
            size: Size::D,
            dst: Operand::Reg(Reg::Ecx),
            src: Operand::Imm(1),
        });
        a.jcc(Cc::Ne, top);
        a.emit(Inst::Halt);
        let img = image_of(a);
        let r = run_image(&img, vec![]);
        assert!(r.ok());
        assert_eq!(r.exit_code, 15);
        assert!(r.cycles > 0 && r.inst_count > 0);
    }

    #[test]
    fn call_ret_and_stack() {
        // main: push 41; call f; halt      f: mov eax,[esp+4]; add eax,1; ret
        let mut a = Asm::new();
        let f = a.fresh_label();
        a.emit(Inst::Push { src: Operand::Imm(41) });
        a.call(f);
        a.emit(Inst::Halt);
        a.bind(f);
        a.emit(Inst::Mov {
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Mem(Mem::base_disp(Reg::Esp, 4)),
        });
        a.emit(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(1),
        });
        a.emit(Inst::Ret { pop: 0 });
        let r = run_image(&image_of(a), vec![]);
        assert!(r.ok(), "{:?}", r.trap);
        assert_eq!(r.exit_code, 42);
    }

    #[test]
    fn subregister_write_keeps_upper_bits() {
        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 0x11223344u32 as i32));
        a.emit(Inst::Mov { size: Size::B, dst: Operand::Reg(Reg::Eax), src: Operand::Imm(0x99) });
        a.emit(Inst::Halt);
        let r = run_image(&image_of(a), vec![]);
        assert_eq!(r.exit_code as u32, 0x1122_3399);
    }

    #[test]
    fn movsx_movzx() {
        let mut a = Asm::new();
        a.emit(movri(Reg::Ebx, 0x80)); // sign bit of a byte
        a.emit(Inst::Movsx { from: Size::B, dst: Reg::Eax, src: Operand::Reg(Reg::Ebx) });
        a.emit(Inst::Movzx { from: Size::B, dst: Reg::Ecx, src: Operand::Reg(Reg::Ebx) });
        a.emit(Inst::Alu {
            op: AluOp::Sub,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Reg(Reg::Ecx),
        });
        a.emit(Inst::Halt);
        let r = run_image(&image_of(a), vec![]);
        assert_eq!(r.exit_code, (-0x80i32) - 0x80);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        for (a_val, b_val, cc, expect) in [
            (-1i32, 1i32, Cc::L, 1),
            (-1, 1, Cc::B, 0), // unsigned: 0xffffffff is not below 1
            (2, 2, Cc::Le, 1),
            (3, 2, Cc::A, 1),
        ] {
            let mut a = Asm::new();
            a.emit(movri(Reg::Eax, a_val));
            a.emit(Inst::Cmp { size: Size::D, a: Operand::Reg(Reg::Eax), b: Operand::Imm(b_val) });
            a.emit(Inst::Setcc { cc, dst: Reg::Edx });
            a.emit(Inst::Movzx { from: Size::B, dst: Reg::Eax, src: Operand::Reg(Reg::Edx) });
            a.emit(Inst::Halt);
            let r = run_image(&image_of(a), vec![]);
            assert_eq!(r.exit_code, expect, "cmp {a_val},{b_val} set{cc}");
        }
    }

    #[test]
    fn idiv_and_divide_error() {
        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 17));
        a.emit(movri(Reg::Ebx, 5));
        a.emit(Inst::Idiv { src: Operand::Reg(Reg::Ebx) });
        a.emit(Inst::Halt);
        let r = run_image(&image_of(a), vec![]);
        assert_eq!(r.exit_code, 3);

        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 1));
        a.emit(movri(Reg::Ebx, 0));
        a.emit(Inst::Idiv { src: Operand::Reg(Reg::Ebx) });
        a.emit(Inst::Halt);
        let r = run_image(&image_of(a), vec![]);
        assert!(matches!(r.trap, Some(Trap::DivideError(_))));
    }

    #[test]
    fn leave_matches_prologue() {
        // push ebp; mov ebp,esp; sub esp,16; leave; halt — esp restored
        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 0));
        a.emit(Inst::Push { src: Operand::Reg(Reg::Ebp) });
        a.emit(Inst::Mov {
            size: Size::D,
            dst: Operand::Reg(Reg::Ebp),
            src: Operand::Reg(Reg::Esp),
        });
        a.emit(Inst::Alu {
            op: AluOp::Sub,
            size: Size::D,
            dst: Operand::Reg(Reg::Esp),
            src: Operand::Imm(16),
        });
        a.emit(Inst::Leave);
        a.emit(Inst::Halt);
        let img = image_of(a);
        let mut m = Machine::new(&img, vec![]);
        let sp0 = m.regs[Reg::Esp.index()];
        let r = m.run();
        assert!(r.ok());
        assert_eq!(m.regs[Reg::Esp.index()], sp0);
    }

    #[test]
    fn vmov_moves_8_bytes() {
        let mut img = Image::new();
        img.data = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut a = Asm::new();
        a.emit(Inst::VmovLd { mem: Mem::abs(img.data_base as i32) });
        a.emit(Inst::VmovSt { mem: Mem::abs(img.data_base as i32 + 8) });
        a.emit(Inst::Mov {
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Mem(Mem::abs(img.data_base as i32 + 12)),
        });
        a.emit(Inst::Halt);
        let out = a.finish(img.text_base);
        img.text = out.bytes;
        img.entry = img.text_base;
        let r = run_image(&img, vec![]);
        assert_eq!(r.exit_code as u32, u32::from_le_bytes([5, 6, 7, 8]));
    }

    #[test]
    fn ext_call_printf() {
        let mut img = Image::new();
        img.imports = vec!["printf".into()];
        img.data = b"n=%d\n\0".to_vec();
        let mut a = Asm::new();
        a.emit(Inst::Push { src: Operand::Imm(7) });
        a.emit(Inst::Push { src: Operand::Imm(img.data_base as i32) });
        a.emit(Inst::CallExt { idx: 0 });
        a.emit(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Operand::Reg(Reg::Esp),
            src: Operand::Imm(8),
        });
        a.emit(movri(Reg::Eax, 0));
        a.emit(Inst::Halt);
        let out = a.finish(img.text_base);
        img.text = out.bytes;
        img.entry = img.text_base;
        let r = run_image(&img, vec![]);
        assert!(r.ok());
        assert_eq!(r.output, b"n=7\n");
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut a = Asm::new();
        let top = a.here();
        a.jmp(top);
        let img = image_of(a);
        let mut m = Machine::new(&img, vec![]);
        m.set_fuel(1000);
        let r = m.run();
        assert_eq!(r.trap, Some(Trap::OutOfFuel));
    }

    #[test]
    fn cycle_budget_bounds_bulk_ext_work() {
        // One `memset` retires a single call instruction but charges
        // cycles proportional to the bytes it touches; a cycle budget
        // catches the work where an instruction budget cannot.
        let mut img = Image::new();
        img.imports = vec!["memset".into()];
        img.data = vec![0u8; 4096];
        let mut a = Asm::new();
        let top = a.here();
        a.emit(Inst::Push { src: Operand::Imm(4096) });
        a.emit(Inst::Push { src: Operand::Imm(0) });
        a.emit(Inst::Push { src: Operand::Imm(img.data_base as i32) });
        a.emit(Inst::CallExt { idx: 0 });
        a.emit(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Operand::Reg(Reg::Esp),
            src: Operand::Imm(12),
        });
        a.jmp(top);
        let out = a.finish(img.text_base);
        img.text = out.bytes;
        img.entry = img.text_base;
        let mut m = Machine::new(&img, vec![]);
        m.set_fuel(u64::MAX);
        m.set_cycle_budget(100_000);
        let r = m.run();
        assert_eq!(r.trap, Some(Trap::OutOfFuel));
        assert!(r.cycles < 110_000, "budget overshoot: {}", r.cycles);
    }

    #[test]
    fn fuel_boundary_is_exact() {
        // `fuel` is the maximum number of *retired* instructions: a program
        // that retires exactly N instructions completes with fuel == N and
        // traps OutOfFuel with fuel == N - 1. The IR interpreter's fuel
        // tests pin the same contract so the differential oracle can treat
        // the budgets uniformly.
        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 1));
        a.emit(movri(Reg::Ecx, 2));
        a.emit(movri(Reg::Edx, 3));
        a.emit(Inst::Halt);
        let img = image_of(a);

        let unbounded = run_image(&img, vec![]);
        assert!(unbounded.ok());
        let n = unbounded.inst_count;
        assert_eq!(n, 4);

        let mut exact = Machine::new(&img, vec![]);
        exact.set_fuel(n);
        let r = exact.run();
        assert!(r.ok(), "fuel == retired count must complete: {:?}", r.trap);
        assert_eq!(r.inst_count, n);

        let mut starved = Machine::new(&img, vec![]);
        starved.set_fuel(n - 1);
        let r = starved.run();
        assert_eq!(r.trap, Some(Trap::OutOfFuel));
        assert_eq!(r.inst_count, n - 1, "trap must fire before retiring inst N");
    }

    #[test]
    fn fuel_zero_retires_nothing() {
        let mut a = Asm::new();
        a.emit(Inst::Halt);
        let img = image_of(a);
        let mut m = Machine::new(&img, vec![]);
        m.set_fuel(0);
        let r = m.run();
        assert_eq!(r.trap, Some(Trap::OutOfFuel));
        assert_eq!(r.inst_count, 0);
    }

    #[test]
    fn address_space_sweep_traps_mem_limit() {
        // eax = 0; loop: mov [eax], al; eax += PAGE_SIZE; jmp loop —
        // touches a fresh page every iteration, which must hit the
        // resident-page ceiling as a typed trap, not exhaust host RAM.
        let mut a = Asm::new();
        a.emit(movri(Reg::Eax, 0));
        let top = a.here();
        a.emit(Inst::Mov {
            size: Size::B,
            dst: Operand::Mem(Mem::base_disp(Reg::Eax, 0)),
            src: Operand::Reg(Reg::Eax),
        });
        a.emit(Inst::Alu {
            op: AluOp::Add,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(crate::memory::PAGE_SIZE as i32),
        });
        a.jmp(top);
        let img = image_of(a);
        let mut m = Machine::new(&img, vec![]);
        m.mem.set_page_cap(64);
        let r = m.run();
        assert!(matches!(r.trap, Some(Trap::MemLimit(_))), "{:?}", r.trap);
        assert!(m.mem.resident_pages() <= 64);
    }

    #[test]
    fn trace_sink_sees_transfers() {
        #[derive(Default)]
        struct Rec(Vec<(u32, u32, TransferKind)>);
        impl TraceSink for Rec {
            fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
                self.0.push((from, to, kind));
            }
        }
        let mut a = Asm::new();
        let f = a.fresh_label();
        a.call(f);
        a.emit(Inst::Halt);
        a.bind(f);
        a.emit(Inst::Ret { pop: 0 });
        let img = image_of(a);
        let mut m = Machine::new(&img, vec![]);
        let mut rec = Rec::default();
        let r = m.run_with(&mut rec);
        assert!(r.ok());
        assert_eq!(rec.0.len(), 2);
        assert_eq!(rec.0[0].2, TransferKind::Call);
        assert_eq!(rec.0[1].2, TransferKind::Ret);
    }

    #[test]
    fn trap_instruction() {
        let mut a = Asm::new();
        a.emit(Inst::Trap { code: 9 });
        let img = image_of(a);
        let r = run_image(&img, vec![]);
        assert!(matches!(r.trap, Some(Trap::TrapInst { code: 9, .. })));
    }
}
