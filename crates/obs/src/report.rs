//! Structured per-recompilation telemetry: the [`PipelineReport`] that
//! `wyt_core::recompile` attaches to every `Recompiled`, mirroring the
//! paper's per-stage evidence (Fig. 7 / Table 1): how long each stage
//! took, how much IR it created or deleted, what the lifter saw, and how
//! much of the stack the refinements actually symbolized.

use crate::json::Json;
use crate::span::fmt_ns;

/// Size of an IR module at a stage boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrSize {
    /// Functions.
    pub funcs: u64,
    /// Basic blocks across all functions.
    pub blocks: u64,
    /// Instructions resident in blocks.
    pub insts: u64,
}

impl IrSize {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("funcs", Json::from(self.funcs)),
            ("blocks", Json::from(self.blocks)),
            ("insts", Json::from(self.insts)),
        ])
    }
}

/// One pipeline stage: wall time plus the IR size delta it caused.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage name (`lift`, `vararg`, ..., `lower`).
    pub name: &'static str,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Module size entering the stage.
    pub before: IrSize,
    /// Module size leaving the stage.
    pub after: IrSize,
}

impl StageStats {
    fn to_json(&self, with_timings: bool) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name)),
            ("wall_ns", Json::from(if with_timings { self.wall_ns } else { 0 })),
            ("before", self.before.to_json()),
            ("after", self.after.to_json()),
        ])
    }
}

/// What the lifter observed — the trace/CFG/function-recovery counts that
/// used to be discarded on the pipeline floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiftCounts {
    /// Distinct traced control-transfer edges.
    pub trace_edges: u64,
    /// Distinct traced external-call sites.
    pub trace_ext_calls: u64,
    /// Machine CFG blocks reconstructed.
    pub cfg_blocks: u64,
    /// Machine CFG edges reconstructed.
    pub cfg_edges: u64,
    /// Functions recovered.
    pub funcs_recovered: u64,
    /// Tail-call edges identified during function recovery.
    pub tail_calls: u64,
}

impl LiftCounts {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_edges", Json::from(self.trace_edges)),
            ("trace_ext_calls", Json::from(self.trace_ext_calls)),
            ("cfg_blocks", Json::from(self.cfg_blocks)),
            ("cfg_edges", Json::from(self.cfg_edges)),
            ("funcs_recovered", Json::from(self.funcs_recovered)),
            ("tail_calls", Json::from(self.tail_calls)),
        ])
    }
}

/// Memory-access counters for one execution, classified by address
/// region. Maintained by both execution engines (`wyt_emu::Machine` and
/// `wyt_ir::interp::Interp`).
///
/// `native_slot` and `emu_stack` are each maintained by their own range
/// check, and `stack_total` by an independent membership check, so the
/// identity `stack_total == native_slot + emu_stack` is a real invariant
/// of the classification — not true by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Accesses to real stack slots (the machine stack, or interpreter
    /// alloca storage) — symbolized accesses, after recovery.
    pub native_slot: u64,
    /// Accesses to the emulated-stack region — residual un-symbolized
    /// stack traffic.
    pub emu_stack: u64,
    /// Accesses that hit either stack region.
    pub stack_total: u64,
}

impl MemStats {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.native_slot += other.native_slot;
        self.emu_stack += other.emu_stack;
        self.stack_total += other.stack_total;
    }

    /// Loads plus stores.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("loads", Json::from(self.loads)),
            ("stores", Json::from(self.stores)),
            ("native_slot", Json::from(self.native_slot)),
            ("emu_stack", Json::from(self.emu_stack)),
            ("stack_total", Json::from(self.stack_total)),
        ])
    }
}

/// Aggregate execution telemetry for a set of runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Runs aggregated.
    pub runs: u64,
    /// Instructions retired / interpreter steps.
    pub retired: u64,
    /// Memory counters summed over the runs.
    pub mem: MemStats,
}

impl ExecStats {
    /// Fold one run into the aggregate.
    pub fn add_run(&mut self, retired: u64, mem: &MemStats) {
        self.runs += 1;
        self.retired += retired;
        self.mem.merge(mem);
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("runs", Json::from(self.runs)),
            ("retired", Json::from(self.retired)),
            ("mem", self.mem.to_json()),
        ])
    }
}

/// Symbolization coverage, measured by re-running the symbolized (but not
/// yet re-optimized) module on the traced inputs: every dynamic stack
/// reference is either an alloca access (symbolized) or an access that
/// still goes through the emulated-stack global (residual).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageStats {
    /// Dynamic stack references hitting recovered allocas.
    pub symbolized: u64,
    /// Dynamic stack references still hitting the emulated stack.
    pub residual: u64,
    /// All dynamic stack references observed (independent count).
    pub total: u64,
    /// Traced inputs replayed.
    pub runs: u64,
}

impl CoverageStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("symbolized", Json::from(self.symbolized)),
            ("residual", Json::from(self.residual)),
            ("total", Json::from(self.total)),
            ("runs", Json::from(self.runs)),
        ])
    }
}

/// Recovery quality for one lifted function (paper Fig. 7's raw
/// material).
#[derive(Debug, Clone)]
pub struct FuncQuality {
    /// IR function index.
    pub func: u32,
    /// Function name.
    pub name: String,
    /// Callee-saved registers recovered for this function.
    pub saved_regs: u64,
    /// Stack variables recovered into the layout.
    pub vars: u64,
    /// Stack-passed arguments in the recovered signature.
    pub stack_args: u64,
    /// Register-passed arguments in the recovered signature.
    pub reg_args: u64,
}

impl FuncQuality {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("func", Json::from(u64::from(self.func))),
            ("name", Json::from(self.name.as_str())),
            ("saved_regs", Json::from(self.saved_regs)),
            ("vars", Json::from(self.vars)),
            ("stack_args", Json::from(self.stack_args)),
            ("reg_args", Json::from(self.reg_args)),
        ])
    }
}

/// Recovery-quality metrics mirroring the paper's evaluation axes.
#[derive(Debug, Clone, Default)]
pub struct QualityStats {
    /// External call sites whose signatures (incl. variadic) were
    /// recovered and rewritten to explicit arguments.
    pub vararg_sites: u64,
    /// Direct stack references folded to canonical `sp0 + offset` base
    /// pointers.
    pub base_ptrs_folded: u64,
    /// Stack variables recovered across all functions.
    pub vars_recovered: u64,
    /// Instructions taking the emulated-stack global's address before
    /// symbolization.
    pub emu_refs_before: u64,
    /// ... and remaining after symbolization (residual roots).
    pub emu_refs_after: u64,
    /// Per-function breakdown, ordered by function index.
    pub funcs: Vec<FuncQuality>,
    /// Dynamic symbolization coverage (collected only when the obs sink
    /// is enabled — it costs one replay per traced input).
    pub coverage: Option<CoverageStats>,
}

impl QualityStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("vararg_sites", Json::from(self.vararg_sites)),
            ("base_ptrs_folded", Json::from(self.base_ptrs_folded)),
            ("vars_recovered", Json::from(self.vars_recovered)),
            ("emu_refs_before", Json::from(self.emu_refs_before)),
            ("emu_refs_after", Json::from(self.emu_refs_after)),
            (
                "coverage",
                match &self.coverage {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
            ("funcs", Json::Arr(self.funcs.iter().map(FuncQuality::to_json).collect())),
        ])
    }
}

/// One function demoted down the degradation ladder: which rung it ended
/// on and why the pipeline gave up on the rung above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// IR function index.
    pub func: u32,
    /// Function name.
    pub name: String,
    /// Ladder rung the function landed on (`"spfold-only"` or
    /// `"emulated-stack"`).
    pub rung: &'static str,
    /// Human-readable demotion reason (the stage error or validation
    /// mismatch that triggered it).
    pub reason: String,
}

impl Degradation {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("func", Json::from(u64::from(self.func))),
            ("name", Json::from(self.name.as_str())),
            ("rung", Json::from(self.rung)),
            ("reason", Json::from(self.reason.as_str())),
        ])
    }
}

/// One guard trap observed while running the recompiled image on a
/// held-out input: which input fired it, and the attribution the guard
/// side table produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardEvent {
    /// Healing round (1-based) in which the guard fired.
    pub round: u64,
    /// Index of the offending input within the held-out set.
    pub input: u64,
    /// IR function index the guard site belongs to.
    pub func: u32,
    /// Function name.
    pub name: String,
    /// Site kind: `"branch"` or `"indirect"`.
    pub kind: String,
    /// Machine address of the trap instruction in the recompiled image.
    pub pc: u32,
}

impl GuardEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("round", Json::from(self.round)),
            ("input", Json::from(self.input)),
            ("func", Json::from(u64::from(self.func))),
            ("name", Json::from(self.name.as_str())),
            ("kind", Json::from(self.kind.as_str())),
            ("pc", Json::from(u64::from(self.pc))),
        ])
    }
}

/// What a self-healing run did: how many re-trace/re-lift rounds it
/// took, which guard sites fired, and how much prior work it reused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealingReport {
    /// Healing rounds executed (0 if no guard ever fired).
    pub rounds: u64,
    /// `true` if every held-out input ran cleanly in the end.
    pub converged: bool,
    /// Guard sites healed (re-traced and covered by a later image).
    pub sites_healed: u64,
    /// Guard sites the loop gave up on (no new coverage, or rounds
    /// exhausted).
    pub sites_unhealed: u64,
    /// Lifted functions in the final module (synthetic entry excluded).
    pub funcs_total: u64,
    /// Functions re-lifted in at least one round.
    pub funcs_relifted: u64,
    /// Functions whose refinement facts were reused unchanged across
    /// every round they survived.
    pub funcs_reused: u64,
    /// Every guard trap observed, in firing order.
    pub events: Vec<GuardEvent>,
}

impl HealingReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rounds", Json::from(self.rounds)),
            ("converged", Json::Bool(self.converged)),
            ("sites_healed", Json::from(self.sites_healed)),
            ("sites_unhealed", Json::from(self.sites_unhealed)),
            ("funcs_total", Json::from(self.funcs_total)),
            ("funcs_relifted", Json::from(self.funcs_relifted)),
            ("funcs_reused", Json::from(self.funcs_reused)),
            ("events", Json::Arr(self.events.iter().map(GuardEvent::to_json).collect())),
        ])
    }
}

/// Utilization of one `wyt-par` worker over a recompilation: how many
/// tasks it executed, how often it stole work, and how its wall time
/// split between running tasks and waiting for them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (0 = the calling thread).
    pub worker: u32,
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Successful steals from sibling workers.
    pub steals: u64,
    /// Nanoseconds spent inside tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent outside tasks (claiming, stealing, waiting).
    pub idle_ns: u64,
}

impl WorkerStat {
    /// `busy / (busy + idle)`, or 0 for a worker that recorded nothing.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    /// `{worker, tasks, steals, busy_ns, idle_ns}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", Json::from(u64::from(self.worker))),
            ("tasks", Json::from(self.tasks)),
            ("steals", Json::from(self.steals)),
            ("busy_ns", Json::from(self.busy_ns)),
            ("idle_ns", Json::from(self.idle_ns)),
        ])
    }
}

/// Everything one recompilation measured about itself.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Recompilation mode (`NoSymbolize` / `Wytiwyg`).
    pub mode: String,
    /// Re-optimization level (`Clean` / `Full`).
    pub opt: String,
    /// Stages in execution order.
    pub stages: Vec<StageStats>,
    /// Lifting-stage observation counts.
    pub lift: LiftCounts,
    /// Recovery-quality metrics.
    pub quality: QualityStats,
    /// Telemetry of the refinement executions driven by the pipeline
    /// itself (vararg observation, bounds tracing, coverage replay).
    pub exec: ExecStats,
    /// Functions demoted down the degradation ladder, ordered by function
    /// index. Empty on a clean recompilation.
    pub degradations: Vec<Degradation>,
    /// Self-healing telemetry; `None` for a plain (non-healing)
    /// recompilation.
    pub healing: Option<HealingReport>,
    /// Per-worker executor utilization over this recompilation
    /// (empty when nothing was profiled). Wall-clock data, so it is
    /// timing-gated in [`PipelineReport::to_json`] and never appears in
    /// the deterministic form.
    pub workers: Vec<WorkerStat>,
}

impl PipelineReport {
    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sum of per-stage wall times.
    pub fn total_wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }

    /// Render as JSON. With `with_timings == false` every wall-clock
    /// field is zeroed, making the output deterministic for a fixed
    /// program and input set.
    pub fn to_json(&self, with_timings: bool) -> Json {
        Json::obj(vec![
            ("mode", Json::from(self.mode.as_str())),
            ("opt", Json::from(self.opt.as_str())),
            ("total_wall_ns", Json::from(if with_timings { self.total_wall_ns() } else { 0 })),
            ("stages", Json::Arr(self.stages.iter().map(|s| s.to_json(with_timings)).collect())),
            ("lift", self.lift.to_json()),
            ("quality", self.quality.to_json()),
            ("exec", self.exec.to_json()),
            (
                "degradations",
                Json::Arr(self.degradations.iter().map(Degradation::to_json).collect()),
            ),
            (
                "healing",
                match &self.healing {
                    Some(h) => h.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "par",
                if with_timings && !self.workers.is_empty() {
                    Json::obj(vec![(
                        "workers",
                        Json::Arr(self.workers.iter().map(WorkerStat::to_json).collect()),
                    )])
                } else {
                    // Worker busy/idle splits are wall-clock data: the
                    // deterministic form always renders null here so the
                    // serial-vs-parallel byte-identity gates stay exact.
                    Json::Null
                },
            ),
        ])
    }

    /// [`PipelineReport::to_json`] with timings zeroed: byte-for-byte
    /// reproducible for a fixed program and input set (snapshot tests pin
    /// this form).
    pub fn to_json_deterministic(&self) -> Json {
        self.to_json(false)
    }

    /// Human-readable stage tree.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline [{} / {}] — {} total\n",
            self.mode,
            self.opt,
            fmt_ns(self.total_wall_ns())
        ));
        let n = self.stages.len();
        for (i, s) in self.stages.iter().enumerate() {
            let tee = if i + 1 == n { "└─" } else { "├─" };
            let delta = s.after.insts as i64 - s.before.insts as i64;
            out.push_str(&format!(
                "{tee} {:<12} {:>10}   insts {:>5} → {:<5} ({:+})   blocks {} → {}   funcs {} → {}\n",
                s.name,
                fmt_ns(s.wall_ns),
                s.before.insts,
                s.after.insts,
                delta,
                s.before.blocks,
                s.after.blocks,
                s.before.funcs,
                s.after.funcs,
            ));
        }
        let l = &self.lift;
        out.push_str(&format!(
            "lift: {} trace edges, {} ext-call sites, {} cfg blocks / {} edges, {} funcs ({} tail calls)\n",
            l.trace_edges, l.trace_ext_calls, l.cfg_blocks, l.cfg_edges, l.funcs_recovered, l.tail_calls
        ));
        let q = &self.quality;
        out.push_str(&format!(
            "quality: {} vararg sites, {} base ptrs folded, {} vars, emu-stack roots {} → {}\n",
            q.vararg_sites,
            q.base_ptrs_folded,
            q.vars_recovered,
            q.emu_refs_before,
            q.emu_refs_after
        ));
        for f in &q.funcs {
            out.push_str(&format!(
                "  fn {:<20} saved regs {}, vars {}, args {}+{}r\n",
                f.name, f.saved_regs, f.vars, f.stack_args, f.reg_args
            ));
        }
        if let Some(c) = &q.coverage {
            out.push_str(&format!(
                "coverage: {} symbolized + {} residual = {} stack refs over {} run(s)\n",
                c.symbolized, c.residual, c.total, c.runs
            ));
        }
        if self.exec.runs > 0 {
            let m = &self.exec.mem;
            out.push_str(&format!(
                "exec: {} run(s), {} retired, {} loads / {} stores ({} native-slot, {} emu-stack)\n",
                self.exec.runs, self.exec.retired, m.loads, m.stores, m.native_slot, m.emu_stack
            ));
        }
        if !self.degradations.is_empty() {
            out.push_str(&format!("degraded: {} function(s)\n", self.degradations.len()));
            for d in &self.degradations {
                out.push_str(&format!("  fn {:<20} → {} ({})\n", d.name, d.rung, d.reason));
            }
        }
        if !self.workers.is_empty() {
            out.push_str(&format!("par: {} worker(s)\n", self.workers.len()));
            for w in &self.workers {
                out.push_str(&format!(
                    "  worker {:<3} {:>5} task(s), {:>4} steal(s), busy {} / idle {} ({:.0}% util)\n",
                    w.worker,
                    w.tasks,
                    w.steals,
                    fmt_ns(w.busy_ns),
                    fmt_ns(w.idle_ns),
                    w.utilization() * 100.0,
                ));
            }
        }
        if let Some(h) = &self.healing {
            out.push_str(&format!(
                "healing: {} round(s), {} healed / {} unhealed, relifted {} of {} funcs ({} reused){}\n",
                h.rounds,
                h.sites_healed,
                h.sites_unhealed,
                h.funcs_relifted,
                h.funcs_total,
                h.funcs_reused,
                if h.converged { "" } else { " — NOT converged" },
            ));
            for e in &h.events {
                out.push_str(&format!(
                    "  round {} input {}: {} guard at {:#x} in fn {}\n",
                    e.round, e.input, e.kind, e.pc, e.name
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        PipelineReport {
            mode: "Wytiwyg".into(),
            opt: "Full".into(),
            stages: vec![
                StageStats {
                    name: "lift",
                    wall_ns: 1000,
                    before: IrSize::default(),
                    after: IrSize { funcs: 2, blocks: 5, insts: 40 },
                },
                StageStats {
                    name: "optimize",
                    wall_ns: 2000,
                    before: IrSize { funcs: 2, blocks: 5, insts: 40 },
                    after: IrSize { funcs: 2, blocks: 4, insts: 22 },
                },
            ],
            lift: LiftCounts { trace_edges: 10, funcs_recovered: 2, ..Default::default() },
            quality: QualityStats {
                vararg_sites: 1,
                coverage: Some(CoverageStats { symbolized: 9, residual: 1, total: 10, runs: 1 }),
                ..Default::default()
            },
            exec: ExecStats::default(),
            degradations: Vec::new(),
            healing: None,
            workers: vec![WorkerStat {
                worker: 0,
                tasks: 4,
                steals: 1,
                busy_ns: 900,
                idle_ns: 100,
            }],
        }
    }

    #[test]
    fn worker_stats_are_timing_gated() {
        let r = sample();
        // Deterministic form: always null, whatever was profiled.
        assert!(matches!(r.to_json_deterministic().get("par"), Some(Json::Null)));
        // Timed form: full utilization section.
        let timed = r.to_json(true);
        let workers = timed.get("par").unwrap().get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].get("tasks").unwrap().as_u64(), Some(4));
        assert!((r.workers[0].utilization() - 0.9).abs() < 1e-9);
        assert!(r.render_pretty().contains("worker 0"));
    }

    #[test]
    fn deterministic_json_zeroes_timings() {
        let r = sample();
        let j = r.to_json_deterministic();
        assert_eq!(j.get("total_wall_ns").unwrap().as_u64(), Some(0));
        let stages = j.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages[0].get("wall_ns").unwrap().as_u64(), Some(0));
        // ...but the structural counts survive.
        assert_eq!(stages[1].get("after").unwrap().get("insts").unwrap().as_u64(), Some(22));
        // And the timed form keeps them.
        let timed = r.to_json(true);
        assert_eq!(timed.get("total_wall_ns").unwrap().as_u64(), Some(3000));
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = sample();
        let text = r.to_json(true).to_string();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("mode").unwrap().as_str(), Some("Wytiwyg"));
        assert_eq!(
            parsed.get("quality").unwrap().get("coverage").unwrap().get("total").unwrap().as_u64(),
            Some(10)
        );
    }

    #[test]
    fn pretty_render_mentions_each_stage() {
        let text = sample().render_pretty();
        assert!(text.contains("lift"));
        assert!(text.contains("optimize"));
        assert!(text.contains("coverage: 9 symbolized + 1 residual"));
    }

    #[test]
    fn degradations_serialize_and_render() {
        let mut r = sample();
        let j = r.to_json_deterministic();
        // The key is always present — an empty array on the clean path,
        // so `report --check` can assert the schema unconditionally.
        assert_eq!(j.get("degradations").unwrap().as_arr().unwrap().len(), 0);
        r.degradations.push(Degradation {
            func: 3,
            name: "fn_0x1000".into(),
            rung: "spfold-only",
            reason: "symbolize: raw external call survived".into(),
        });
        let j = r.to_json_deterministic();
        let arr = j.get("degradations").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("func").unwrap().as_u64(), Some(3));
        assert_eq!(arr[0].get("rung").unwrap().as_str(), Some("spfold-only"));
        let text = r.render_pretty();
        assert!(text.contains("degraded: 1 function(s)"));
        assert!(text.contains("spfold-only"));
    }

    #[test]
    fn healing_serializes_and_renders() {
        let mut r = sample();
        // The key is always present: null on a plain recompilation, so
        // `report --check` can assert the schema unconditionally.
        assert!(matches!(r.to_json_deterministic().get("healing"), Some(Json::Null)));
        r.healing = Some(HealingReport {
            rounds: 2,
            converged: true,
            sites_healed: 1,
            sites_unhealed: 0,
            funcs_total: 3,
            funcs_relifted: 2,
            funcs_reused: 1,
            events: vec![GuardEvent {
                round: 1,
                input: 0,
                func: 1,
                name: "main".into(),
                kind: "branch".into(),
                pc: 0x10_0040,
            }],
        });
        let j = r.to_json_deterministic();
        let h = j.get("healing").unwrap();
        assert_eq!(h.get("rounds").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("funcs_reused").unwrap().as_u64(), Some(1));
        let ev = &h.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("kind").unwrap().as_str(), Some("branch"));
        assert_eq!(ev.get("name").unwrap().as_str(), Some("main"));
        let text = r.render_pretty();
        assert!(text.contains("healing: 2 round(s), 1 healed / 0 unhealed"));
        assert!(text.contains("branch guard"));
        // Round-trips through the parser like the rest of the report.
        let parsed = crate::json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("healing").unwrap().get("sites_healed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn memstats_merge_and_accessors() {
        let mut a = MemStats { loads: 1, stores: 2, native_slot: 1, emu_stack: 1, stack_total: 2 };
        let b = MemStats { loads: 3, stores: 4, native_slot: 0, emu_stack: 2, stack_total: 2 };
        a.merge(&b);
        assert_eq!(a.accesses(), 10);
        assert_eq!(a.stack_total, 4);
        assert_eq!(a.native_slot + a.emu_stack, a.stack_total);
    }
}
