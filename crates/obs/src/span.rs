//! The monotonic clock wrapper and the RAII span guard.

use crate::sink;
use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

/// Process-global monotonic epoch; every timestamp in the sink is
/// nanoseconds since the first observation, so spans from different
/// threads are directly comparable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-global monotonic epoch.
pub fn mono_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

thread_local! {
    /// Nesting depth of live spans on this thread (for tree rendering).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An RAII timing span. [`Span::enter`] starts it, dropping it records
/// `(name, start, duration, depth)` into the global sink, and — when
/// the flight recorder is on — begin/end events into [`crate::trace`].
///
/// When every collector is disabled the guard is inert: no clock read,
/// no lock, just one relaxed atomic load and a branch.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    /// `None` when the sink was disabled at entry.
    start_ns: Option<u64>,
    /// The flight recorder was on at entry; emit the end event at drop.
    traced: bool,
    depth: u32,
}

impl Span {
    /// Start a span named `name` (no-op when every collector is
    /// disabled).
    pub fn enter(name: &'static str) -> Span {
        let state = sink::state();
        if state == 0 {
            return Span { name, start_ns: None, traced: false, depth: 0 };
        }
        let traced = state & sink::TRACE_ON != 0;
        if traced {
            crate::trace::begin(name);
        }
        if state & sink::SINK_ON == 0 {
            return Span { name, start_ns: None, traced, depth: 0 };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span { name, start_ns: Some(mono_ns()), traced, depth }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.traced {
            crate::trace::end(self.name);
        }
        let Some(start) = self.start_ns else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur = mono_ns().saturating_sub(start);
        sink::record_span(self.name, start, dur, self.depth);
    }
}

/// Human-scale nanosecond formatting (ns/µs/ms/s with 2 decimals).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_clock_is_monotonic() {
        let a = mono_ns();
        let b = mono_ns();
        assert!(b >= a);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
