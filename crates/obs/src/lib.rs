//! # wyt-obs — zero-dependency observability
//!
//! The measurement substrate for the whole recompiler: a lightweight
//! span/counter API feeding a process-global sink ([`sink`]), structured
//! per-recompilation telemetry ([`report::PipelineReport`]), and a
//! dependency-free JSON value type with writer and parser ([`json`]) so
//! bench runs and CI produce machine-diffable output.
//!
//! Design rules, in priority order:
//!
//! 1. **Disabled means free.** Every hot-path entry point
//!    ([`Span::enter`], [`counter`]) first checks one relaxed atomic and
//!    returns immediately when the sink is off — no clock reads, no lock,
//!    no allocation. Instrumented crates may therefore call these
//!    unconditionally.
//! 2. **No dependencies.** Like `wyt-testkit`, this crate must build
//!    `--offline` forever; JSON, the monotonic clock wrapper and the
//!    registry are all in-tree.
//! 3. **Deterministic reports.** [`report::PipelineReport`] orders every
//!    collection and can render itself with timings zeroed
//!    ([`report::PipelineReport::to_json_deterministic`]) so tests can pin
//!    its JSON byte-for-byte.
//!
//! Enabling: call [`set_enabled`] directly, or [`init_from_env`] which
//! reads the `WYT_OBS` environment variable (`json`, `pretty`, or `1`).

pub mod env;
pub mod hist;
pub mod json;
pub mod report;
pub mod sink;
pub mod span;
pub mod trace;

pub use env::{env_u64, env_usize, env_usize_opt};
pub use hist::Hist;
pub use json::{Json, JsonLimits, ParseError, ParseErrorKind};
pub use report::{
    CoverageStats, Degradation, ExecStats, FuncQuality, GuardEvent, HealingReport, IrSize,
    LiftCounts, MemStats, PipelineReport, QualityStats, StageStats, WorkerStat,
};
pub use sink::{
    counter, enabled, fold, init_from_env, observing, record_hist, reset, set_enabled, snapshot,
    with_local, OutputFormat, Snapshot, SpanRec,
};
pub use span::{fmt_ns, mono_ns, Span};

/// Lock a mutex, recovering the guard when the lock is poisoned.
///
/// With panic isolation (`wyt_par::supervise`) a task may unwind while
/// holding a shared lock; every value guarded this way is either
/// replaced wholesale or append-only telemetry, so the poisoned state
/// is still well-formed and the service must keep running rather than
/// cascade the panic into every later locker.
pub fn lock_ok<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
pub(crate) mod testalloc {
    //! A counting global allocator for the "disabled means free" test:
    //! every allocation on the calling thread bumps a thread-local, so
    //! a test can assert a code region allocated nothing without being
    //! perturbed by other test threads.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct Counting;

    // SAFETY: defers entirely to `System`; the counter is a plain
    // thread-local bump guarded by `try_with` against TLS teardown.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    /// Allocations made by the calling thread so far.
    pub fn allocations() -> u64 {
        ALLOCS.try_with(Cell::get).unwrap_or(0)
    }
}
