//! A minimal JSON value with writer and parser — enough for telemetry
//! emission and for CI to validate what was emitted, with no external
//! crates.
//!
//! Object member order is preserved (members are a `Vec`), which is what
//! makes report JSON byte-for-byte reproducible.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are written without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// Build an object from `(&str, Json)` pairs, preserving order.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Is this the `null` literal?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integer value, if this is a whole number (offsets in
    /// serialized stack layouts are negative for locals).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_into(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    /// Compact rendering (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_into(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

impl Json {
    /// Indented rendering (2 spaces).
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        write_into(&mut s, self, Some(2), 0);
        s
    }
}

/// Resource ceilings enforced while parsing untrusted JSON text.
///
/// Defaults match what the repo's own artifacts need with headroom
/// (depth 256 is exercised by `tests/obs_json.rs`); hostile documents
/// beyond either limit get a typed error instead of a stack overflow or
/// an unbounded allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonLimits {
    /// Maximum container nesting depth (arrays + objects combined).
    pub max_depth: usize,
    /// Maximum document size in bytes, checked before parsing starts.
    pub max_bytes: usize,
}

impl Default for JsonLimits {
    fn default() -> JsonLimits {
        JsonLimits { max_depth: 256, max_bytes: 64 << 20 }
    }
}

/// Why a parse was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed JSON text.
    Syntax(String),
    /// Container nesting exceeded [`JsonLimits::max_depth`].
    TooDeep {
        /// The configured depth limit.
        limit: usize,
    },
    /// The document exceeded [`JsonLimits::max_bytes`].
    TooLarge {
        /// The document size in bytes.
        size: usize,
        /// The configured size limit.
        limit: usize,
    },
}

/// A typed JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure (0 for whole-document rejections).
    pub pos: usize,
    /// The failure class.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Syntax(what) => {
                write!(f, "json parse error at byte {}: {what}", self.pos)
            }
            ParseErrorKind::TooDeep { limit } => {
                write!(f, "json parse error at byte {}: nesting deeper than {limit}", self.pos)
            }
            ParseErrorKind::TooLarge { size, limit } => {
                write!(f, "json parse error: document size {size} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    limits: JsonLimits,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T, ParseError> {
        Err(ParseError { pos: self.pos, kind: ParseErrorKind::Syntax(what.to_string()) })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let Some(hex) = self.bytes.get(self.pos + 1..self.pos + 5) else {
                                return self.err("truncated \\u escape");
                            };
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = code else {
                                return self.err("bad \\u escape");
                            };
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; input is `&str`, so a
                    // scalar always starts here.
                    let Some(c) = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|rest| rest.chars().next())
                    else {
                        return self.err("invalid utf-8 in string");
                    };
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return self.err("invalid utf-8 in number");
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(&format!("bad number `{text}`")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(ParseError {
                pos: self.pos,
                kind: ParseErrorKind::TooDeep { limit: self.limits.max_depth },
            });
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.enter()?;
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.enter()?;
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

/// Parse a JSON document under explicit resource limits.
///
/// This is the total frontend for untrusted text: it terminates, never
/// panics, and bounds both recursion depth and document size before
/// doing any work.
///
/// # Errors
/// A typed [`ParseError`]: syntax, depth, or size.
pub fn parse_limited(text: &str, limits: &JsonLimits) -> Result<Json, ParseError> {
    if text.len() > limits.max_bytes {
        return Err(ParseError {
            pos: 0,
            kind: ParseErrorKind::TooLarge { size: text.len(), limit: limits.max_bytes },
        });
    }
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0, limits: *limits };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data");
    }
    Ok(v)
}

/// Parse a JSON document under [`JsonLimits::default`].
///
/// # Errors
/// A description of the first syntax error, with its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    parse_limited(text, &JsonLimits::default()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let v = Json::obj(vec![
            ("s", Json::from("he\"llo\nworld")),
            ("n", Json::from(42u64)),
            ("f", Json::Num(1.5)),
            ("neg", Json::from(-7i64)),
            ("b", Json::Bool(true)),
            ("nil", Json::Null),
            ("arr", Json::Arr(vec![Json::from(1u64), Json::from("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let compact = v.to_string();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(7u64).to_string(), "7");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(v.to_string(), r#"{"z":null,"a":null}"#);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "s": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert!(v.get("missing").is_none());
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("-12").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_i64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truth", "1 2", "1e999", "nan"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_a_typed_error() {
        let limits = JsonLimits::default();
        let ok = format!("{}0{}", "[".repeat(limits.max_depth), "]".repeat(limits.max_depth));
        assert!(parse_limited(&ok, &limits).is_ok(), "depth == limit is accepted");
        let deep =
            format!("{}0{}", "[".repeat(limits.max_depth + 1), "]".repeat(limits.max_depth + 1));
        let err = parse_limited(&deep, &limits).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep { limit: limits.max_depth });
        // Unclosed-open bombs (the classic stack-overflow shape) are
        // caught by the same check.
        let bomb = "[".repeat(1 << 20);
        let err = parse_limited(&bomb, &limits).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep { limit: limits.max_depth });
        // Mixed object/array nesting counts against the same budget.
        let mixed = format!("{}0{}", "[{\"k\":".repeat(200), "}]".repeat(200));
        assert!(matches!(
            parse_limited(&mixed, &limits).unwrap_err().kind,
            ParseErrorKind::TooDeep { .. }
        ));
    }

    #[test]
    fn size_limit_is_a_typed_error() {
        let limits = JsonLimits { max_depth: 256, max_bytes: 16 };
        assert!(parse_limited("[1,2,3]", &limits).is_ok());
        let err = parse_limited("[1,2,3,4,5,6,7,8]", &limits).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooLarge { size: 17, limit: 16 });
        // The size check runs before any parsing work.
        assert!(parse_limited(&"x".repeat(17), &limits).is_err());
    }

    #[test]
    fn typed_errors_render_with_position() {
        let e = parse_limited("[1,", &JsonLimits::default()).unwrap_err();
        assert!(e.to_string().starts_with("json parse error at byte"), "{e}");
    }
}
