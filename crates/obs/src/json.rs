//! A minimal JSON value with writer and parser — enough for telemetry
//! emission and for CI to validate what was emitted, with no external
//! crates.
//!
//! Object member order is preserved (members are a `Vec`), which is what
//! makes report JSON byte-for-byte reproducible.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are written without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// Build an object from `(&str, Json)` pairs, preserving order.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Is this the `null` literal?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integer value, if this is a whole number (offsets in
    /// serialized stack layouts are negative for locals).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_into(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(out, val, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    /// Compact rendering (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_into(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

impl Json {
    /// Indented rendering (2 spaces).
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        write_into(&mut s, self, Some(2), 0);
        s
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// A description of the first syntax error, with its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let v = Json::obj(vec![
            ("s", Json::from("he\"llo\nworld")),
            ("n", Json::from(42u64)),
            ("f", Json::Num(1.5)),
            ("neg", Json::from(-7i64)),
            ("b", Json::Bool(true)),
            ("nil", Json::Null),
            ("arr", Json::Arr(vec![Json::from(1u64), Json::from("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let compact = v.to_string();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(7u64).to_string(), "7");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(v.to_string(), r#"{"z":null,"a":null}"#);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "s": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert!(v.get("missing").is_none());
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("-12").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_i64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truth", "1 2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
