//! The process-global sink: one enabled flag, one registry of counters
//! and span records.
//!
//! The flag is a single relaxed atomic so instrumentation sites in hot
//! loops (the emulator's fetch/execute loop, the IR interpreter) pay one
//! load and a predictable branch when observability is off. The registry
//! behind it is a plain mutex: it is only ever touched when enabled, and
//! contention stays negligible because parallel workers observe into
//! **thread-local scopes** instead: `wyt-par` wraps each task in
//! [`with_local`] and [`fold`]s the captured snapshots back into the
//! global registry in task order, keeping parallel observation streams
//! deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Registry {
    counters: BTreeMap<String, u64>,
    spans: Vec<SpanRec>,
}

impl Registry {
    const fn empty() -> Registry {
        Registry { counters: BTreeMap::new(), spans: Vec::new() }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::empty());

thread_local! {
    /// Innermost local observation scope on this thread, if any. When
    /// installed, counters and spans land here instead of the global
    /// registry (see [`with_local`]).
    static LOCAL: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name as passed to [`crate::Span::enter`].
    pub name: &'static str,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
}

/// Is the global sink collecting?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the global sink on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Requested output rendering, from the `WYT_OBS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `WYT_OBS` unset or unrecognized: sink stays off.
    Off,
    /// `WYT_OBS=json`: machine-readable reports.
    Json,
    /// `WYT_OBS=pretty` (or `1`): human-readable tree.
    Pretty,
}

/// Read `WYT_OBS`, enable the sink accordingly, and return the requested
/// format (`json` → JSON, `pretty`/`1` → tree, anything else → off).
pub fn init_from_env() -> OutputFormat {
    let fmt = match std::env::var("WYT_OBS").as_deref() {
        Ok("json") => OutputFormat::Json,
        Ok("pretty") | Ok("1") => OutputFormat::Pretty,
        _ => OutputFormat::Off,
    };
    set_enabled(fmt != OutputFormat::Off);
    fmt
}

/// Add `delta` to the named counter (no-op when disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let local = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            *reg.counters.entry(name.to_string()).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if !local {
        let mut reg = REGISTRY.lock().unwrap();
        *reg.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Record a completed span (called by [`crate::Span`]'s drop).
pub(crate) fn record_span(name: &'static str, start_ns: u64, dur_ns: u64, depth: u32) {
    if !enabled() {
        return;
    }
    let rec = SpanRec { name, start_ns, dur_ns, depth };
    let local = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.spans.push(rec.clone());
            true
        } else {
            false
        }
    });
    if !local {
        REGISTRY.lock().unwrap().spans.push(rec);
    }
}

/// Run `f` with a fresh **local** observation scope on this thread:
/// every counter and span it records is captured privately and returned
/// as a [`Snapshot`] instead of entering the global registry. Scopes
/// nest; the innermost wins. The caller decides when (and in what
/// order) to [`fold`] the snapshot back — `wyt-par` folds worker
/// snapshots in task-index order so parallel runs observe exactly what
/// the serial run would.
///
/// When the sink is disabled the snapshot comes back empty and `f` runs
/// with only the usual single-atomic overhead.
pub fn with_local<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    struct Scope {
        prev: Option<Registry>,
    }
    impl Drop for Scope {
        fn drop(&mut self) {
            // Restores the outer scope even if `f` unwinds.
            LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
        }
    }
    let mut scope = Scope { prev: LOCAL.with(|l| l.borrow_mut().replace(Registry::empty())) };
    let r = f();
    let mine = LOCAL
        .with(|l| std::mem::replace(&mut *l.borrow_mut(), scope.prev.take()))
        .expect("local observation scope vanished");
    std::mem::forget(scope); // already restored
    (r, Snapshot { counters: mine.counters, spans: mine.spans })
}

/// Merge a snapshot captured by [`with_local`] into the current sink:
/// the innermost local scope if one is installed on this thread,
/// otherwise the global registry. Counter values add; spans append in
/// the snapshot's order. No-op when disabled.
pub fn fold(snap: Snapshot) {
    if !enabled() {
        return;
    }
    let Snapshot { counters, spans } = snap;
    let mut pending = Some((counters, spans));
    LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            let (counters, spans) = pending.take().unwrap();
            merge(reg, counters, spans);
        }
    });
    if let Some((counters, spans)) = pending {
        merge(&mut REGISTRY.lock().unwrap(), counters, spans);
    }
}

fn merge(reg: &mut Registry, counters: BTreeMap<String, u64>, spans: Vec<SpanRec>) {
    for (k, v) in counters {
        *reg.counters.entry(k).or_insert(0) += v;
    }
    reg.spans.extend(spans);
}

/// A copy of everything the sink has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals, ordered by name.
    pub counters: BTreeMap<String, u64>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRec>,
}

impl Snapshot {
    /// Aggregate spans by name: `name → (total ns, count)`, ordered by
    /// name.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
        out
    }

    /// Render counters and aggregated spans as a JSON object.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let spans = self
            .span_totals()
            .into_iter()
            .map(|(name, (ns, n))| {
                (
                    name.to_string(),
                    Json::obj(vec![("total_ns", Json::from(ns)), ("count", Json::from(n))]),
                )
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("spans".into(), Json::Obj(spans)),
        ])
    }
}

/// Copy out the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().unwrap();
    Snapshot { counters: reg.counters.clone(), spans: reg.spans.clone() }
}

/// Clear the registry (the enabled flag is untouched).
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap();
    reg.counters.clear();
    reg.spans.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    /// The whole suite shares the process-global sink, so the tests that
    /// poke it run under one lock to avoid cross-talk.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sink_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        counter("x", 5);
        {
            let _s = Span::enter("quiet");
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "disabled counter must not accumulate");
        assert!(snap.spans.is_empty(), "disabled span must not record");
    }

    #[test]
    fn enabled_sink_accumulates_and_resets() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter("a", 2);
        counter("a", 3);
        counter("b", 1);
        {
            let _outer = Span::enter("outer");
            let _inner = Span::enter("inner");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters.get("a"), Some(&5));
        assert_eq!(snap.counters.get("b"), Some(&1));
        assert_eq!(snap.spans.len(), 2);
        // Inner completes first and sits one level deeper.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].depth, 1);
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].depth, 0);
        assert!(snap.spans[1].dur_ns >= snap.spans[0].dur_ns);
        let totals = snap.span_totals();
        assert_eq!(totals.get("outer").map(|t| t.1), Some(1));
        reset();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn local_scope_captures_and_folds() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter("global", 1);
        let ((), snap) = with_local(|| {
            counter("inner", 2);
            let _s = Span::enter("scoped");
        });
        // Nothing from the scope leaked into the registry...
        assert!(snapshot().counters.contains_key("global"));
        assert!(!snapshot().counters.contains_key("inner"));
        assert!(snapshot().spans.is_empty());
        // ...until the caller folds it, additively.
        assert_eq!(snap.counters.get("inner"), Some(&2));
        assert_eq!(snap.spans.len(), 1);
        fold(snap.clone());
        fold(snap);
        let merged = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(merged.counters.get("inner"), Some(&4));
        assert_eq!(merged.counters.get("global"), Some(&1));
        assert_eq!(merged.spans.len(), 2);
    }

    #[test]
    fn local_scopes_nest_innermost_wins() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let ((), outer) = with_local(|| {
            counter("outer", 1);
            let ((), inner) = with_local(|| counter("inner", 1));
            assert_eq!(inner.counters.get("inner"), Some(&1));
            assert!(!inner.counters.contains_key("outer"));
            // Folding inside an outer scope lands in the outer scope.
            fold(inner);
        });
        let empty = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(outer.counters.get("outer"), Some(&1));
        assert_eq!(outer.counters.get("inner"), Some(&1));
        assert!(empty.counters.is_empty(), "nothing reached the global registry");
    }

    #[test]
    fn disabled_local_scope_is_empty() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let ((), snap) = with_local(|| counter("x", 9));
        assert!(snap.counters.is_empty());
    }
}
