//! The process-global sink: one state word, one registry of counters,
//! span records and latency histograms.
//!
//! The state is a single relaxed atomic `u32` with one bit per
//! collector — bit 0 for this sink, bit 1 for the flight recorder
//! ([`crate::trace`]) — so instrumentation sites in hot loops (the
//! emulator's fetch/execute loop, the IR interpreter) pay one load and
//! a predictable branch when everything is off. The registry behind it
//! is a plain mutex: it is only ever touched when enabled, and
//! contention stays negligible because parallel workers observe into
//! **thread-local scopes** instead: `wyt-par` wraps each task in
//! [`with_local`] and [`fold`]s the captured snapshots back into the
//! global registry in task order, keeping parallel observation streams
//! deterministic. Trace events captured in a scope ride along in the
//! snapshot and are folded into the calling thread's ring by the same
//! mechanism, so the recorder inherits the determinism for free.

use crate::hist::Hist;
use crate::trace::TraceEvent;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// State bit: the counter/span/histogram sink is collecting.
pub(crate) const SINK_ON: u32 = 1;
/// State bit: the flight recorder ([`crate::trace`]) is collecting.
pub(crate) const TRACE_ON: u32 = 1 << 1;

static STATE: AtomicU32 = AtomicU32::new(0);

/// The combined collector state word (one relaxed load).
#[inline]
pub(crate) fn state() -> u32 {
    STATE.load(Ordering::Relaxed)
}

pub(crate) fn set_state_bit(bit: u32, on: bool) {
    if on {
        STATE.fetch_or(bit, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!bit, Ordering::Relaxed);
    }
}

struct Registry {
    counters: BTreeMap<String, u64>,
    spans: Vec<SpanRec>,
    hists: BTreeMap<String, Hist>,
    events: Vec<TraceEvent>,
}

impl Registry {
    const fn empty() -> Registry {
        Registry {
            counters: BTreeMap::new(),
            spans: Vec::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::empty());

thread_local! {
    /// Innermost local observation scope on this thread, if any. When
    /// installed, counters, spans, histogram samples and trace events
    /// land here instead of the global registry / thread ring (see
    /// [`with_local`]).
    static LOCAL: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name as passed to [`crate::Span::enter`].
    pub name: &'static str,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
}

/// Is the global sink collecting?
#[inline]
pub fn enabled() -> bool {
    state() & SINK_ON != 0
}

/// Turn the global sink on or off (the flight recorder has its own
/// switch, [`crate::trace::set_enabled`]).
pub fn set_enabled(on: bool) {
    set_state_bit(SINK_ON, on);
}

/// Is any collector — sink or flight recorder — on? `wyt-par` uses
/// this to decide whether tasks need local observation scopes.
#[inline]
pub fn observing() -> bool {
    state() != 0
}

/// Requested output rendering, from the `WYT_OBS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `WYT_OBS` unset or unrecognized: sink stays off.
    Off,
    /// `WYT_OBS=json`: machine-readable reports.
    Json,
    /// `WYT_OBS=pretty` (or `1`): human-readable tree.
    Pretty,
}

/// Read `WYT_OBS`, enable the sink accordingly, and return the requested
/// format (`json` → JSON, `pretty`/`1` → tree, anything else → off).
pub fn init_from_env() -> OutputFormat {
    let fmt = match std::env::var("WYT_OBS").as_deref() {
        Ok("json") => OutputFormat::Json,
        Ok("pretty") | Ok("1") => OutputFormat::Pretty,
        _ => OutputFormat::Off,
    };
    set_enabled(fmt != OutputFormat::Off);
    fmt
}

/// Add `delta` to the named counter (no-op when disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let local = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            *reg.counters.entry(name.to_string()).or_insert(0) += delta;
            true
        } else {
            false
        }
    });
    if !local {
        let mut reg = crate::lock_ok(&REGISTRY);
        *reg.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Record a latency sample into the named log-bucketed histogram
/// (no-op when disabled).
#[inline]
pub fn record_hist(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let local = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.hists.entry(name.to_string()).or_default().record(ns);
            true
        } else {
            false
        }
    });
    if !local {
        crate::lock_ok(&REGISTRY).hists.entry(name.to_string()).or_default().record(ns);
    }
}

/// Record a completed span (called by [`crate::Span`]'s drop).
pub(crate) fn record_span(name: &'static str, start_ns: u64, dur_ns: u64, depth: u32) {
    if !enabled() {
        return;
    }
    let rec = SpanRec { name, start_ns, dur_ns, depth };
    let local = LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.spans.push(rec.clone());
            true
        } else {
            false
        }
    });
    if !local {
        crate::lock_ok(&REGISTRY).spans.push(rec);
    }
}

/// Push a trace event into the innermost local scope, if one is
/// installed on this thread. Returns `false` when there is no scope
/// (the caller then appends to its thread ring).
pub(crate) fn push_local_event(ev: TraceEvent) -> bool {
    LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            reg.events.push(ev);
            true
        } else {
            false
        }
    })
}

/// Run `f` with a fresh **local** observation scope on this thread:
/// every counter, span, histogram sample and trace event it records is
/// captured privately and returned as a [`Snapshot`] instead of
/// entering the global registry. Scopes nest; the innermost wins. The
/// caller decides when (and in what order) to [`fold`] the snapshot
/// back — `wyt-par` folds worker snapshots in task-index order so
/// parallel runs observe exactly what the serial run would.
///
/// When every collector is disabled the snapshot comes back empty and
/// `f` runs with only the usual single-atomic overhead.
pub fn with_local<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    struct Scope {
        prev: Option<Registry>,
    }
    impl Drop for Scope {
        fn drop(&mut self) {
            // Restores the outer scope even if `f` unwinds.
            LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
        }
    }
    let mut scope = Scope { prev: LOCAL.with(|l| l.borrow_mut().replace(Registry::empty())) };
    let r = f();
    let mine = LOCAL
        .with(|l| std::mem::replace(&mut *l.borrow_mut(), scope.prev.take()))
        .expect("local observation scope vanished");
    std::mem::forget(scope); // already restored
    (
        r,
        Snapshot {
            counters: mine.counters,
            spans: mine.spans,
            hists: mine.hists,
            events: mine.events,
        },
    )
}

/// Merge a snapshot captured by [`with_local`] into the current sink:
/// the innermost local scope if one is installed on this thread,
/// otherwise the global registry (trace events then go to this
/// thread's ring, where the ring cap applies). Counter values add,
/// histograms merge bucket-exactly; spans and events append in the
/// snapshot's order. No-op when every collector is disabled.
pub fn fold(snap: Snapshot) {
    if state() == 0 {
        return;
    }
    let Snapshot { counters, spans, hists, events } = snap;
    let mut pending = Some((counters, spans, hists, events));
    LOCAL.with(|l| {
        if let Some(reg) = l.borrow_mut().as_mut() {
            let (counters, spans, hists, events) = pending.take().unwrap();
            merge(reg, counters, spans, hists);
            reg.events.extend(events);
        }
    });
    if let Some((counters, spans, hists, events)) = pending {
        merge(&mut crate::lock_ok(&REGISTRY), counters, spans, hists);
        crate::trace::append_folded(events);
    }
}

fn merge(
    reg: &mut Registry,
    counters: BTreeMap<String, u64>,
    spans: Vec<SpanRec>,
    hists: BTreeMap<String, Hist>,
) {
    for (k, v) in counters {
        *reg.counters.entry(k).or_insert(0) += v;
    }
    reg.spans.extend(spans);
    for (k, h) in hists {
        reg.hists.entry(k).or_default().merge(&h);
    }
}

/// A copy of everything the sink has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals, ordered by name.
    pub counters: BTreeMap<String, u64>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRec>,
    /// Latency histograms, ordered by name.
    pub hists: BTreeMap<String, Hist>,
    /// Trace events captured in a local scope ([`with_local`]); always
    /// empty in global [`snapshot`]s — unscoped events live in the
    /// flight recorder's rings and are read via [`crate::trace::drain`].
    pub events: Vec<TraceEvent>,
}

impl Snapshot {
    /// Aggregate spans by name: `name → (total ns, count)`, ordered by
    /// name.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
        out
    }

    /// Render counters, aggregated spans and histograms as a JSON
    /// object (trace events are not included — they export through
    /// [`crate::trace::to_chrome_json`]).
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect::<Vec<_>>();
        let spans = self
            .span_totals()
            .into_iter()
            .map(|(name, (ns, n))| {
                (
                    name.to_string(),
                    Json::obj(vec![("total_ns", Json::from(ns)), ("count", Json::from(n))]),
                )
            })
            .collect::<Vec<_>>();
        let hists = self.hists.iter().map(|(k, h)| (k.clone(), h.to_json())).collect::<Vec<_>>();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("spans".into(), Json::Obj(spans)),
            ("hists".into(), Json::Obj(hists)),
        ])
    }
}

/// Copy out the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = crate::lock_ok(&REGISTRY);
    Snapshot {
        counters: reg.counters.clone(),
        spans: reg.spans.clone(),
        hists: reg.hists.clone(),
        events: Vec::new(),
    }
}

/// Clear the registry (the state word is untouched).
pub fn reset() {
    let mut reg = crate::lock_ok(&REGISTRY);
    reg.counters.clear();
    reg.spans.clear();
    reg.hists.clear();
    reg.events.clear();
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::Span;

    /// The whole suite shares the process-global sink and recorder, so
    /// every test module that pokes them serializes on this lock.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sink_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        counter("x", 5);
        record_hist("h", 7);
        {
            let _s = Span::enter("quiet");
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "disabled counter must not accumulate");
        assert!(snap.spans.is_empty(), "disabled span must not record");
        assert!(snap.hists.is_empty(), "disabled histogram must not record");
    }

    #[test]
    fn enabled_sink_accumulates_and_resets() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter("a", 2);
        counter("a", 3);
        counter("b", 1);
        record_hist("lat", 100);
        record_hist("lat", 200);
        {
            let _outer = Span::enter("outer");
            let _inner = Span::enter("inner");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counters.get("a"), Some(&5));
        assert_eq!(snap.counters.get("b"), Some(&1));
        assert_eq!(snap.hists.get("lat").map(crate::Hist::count), Some(2));
        assert_eq!(snap.spans.len(), 2);
        // Inner completes first and sits one level deeper.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].depth, 1);
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].depth, 0);
        assert!(snap.spans[1].dur_ns >= snap.spans[0].dur_ns);
        let totals = snap.span_totals();
        assert_eq!(totals.get("outer").map(|t| t.1), Some(1));
        reset();
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().hists.is_empty());
    }

    #[test]
    fn local_scope_captures_and_folds() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter("global", 1);
        let ((), snap) = with_local(|| {
            counter("inner", 2);
            record_hist("lat", 50);
            let _s = Span::enter("scoped");
        });
        // Nothing from the scope leaked into the registry...
        assert!(snapshot().counters.contains_key("global"));
        assert!(!snapshot().counters.contains_key("inner"));
        assert!(snapshot().spans.is_empty());
        assert!(snapshot().hists.is_empty());
        // ...until the caller folds it, additively.
        assert_eq!(snap.counters.get("inner"), Some(&2));
        assert_eq!(snap.spans.len(), 1);
        fold(snap.clone());
        fold(snap);
        let merged = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(merged.counters.get("inner"), Some(&4));
        assert_eq!(merged.counters.get("global"), Some(&1));
        assert_eq!(merged.spans.len(), 2);
        assert_eq!(merged.hists.get("lat").map(crate::Hist::count), Some(2));
    }

    #[test]
    fn local_scopes_nest_innermost_wins() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let ((), outer) = with_local(|| {
            counter("outer", 1);
            let ((), inner) = with_local(|| counter("inner", 1));
            assert_eq!(inner.counters.get("inner"), Some(&1));
            assert!(!inner.counters.contains_key("outer"));
            // Folding inside an outer scope lands in the outer scope.
            fold(inner);
        });
        let empty = snapshot();
        set_enabled(false);
        reset();
        assert_eq!(outer.counters.get("outer"), Some(&1));
        assert_eq!(outer.counters.get("inner"), Some(&1));
        assert!(empty.counters.is_empty(), "nothing reached the global registry");
    }

    #[test]
    fn disabled_local_scope_is_empty() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let ((), snap) = with_local(|| counter("x", 9));
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn snapshot_json_has_hists_section() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        record_hist("store.lookup", 1234);
        let j = snapshot().to_json();
        set_enabled(false);
        reset();
        let hists = j.get("hists").expect("hists key");
        assert!(hists.get("store.lookup").and_then(|h| h.get("count")).is_some());
    }

    #[test]
    fn disabled_paths_do_not_allocate() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        crate::trace::set_enabled(false);
        let before = crate::testalloc::allocations();
        for _ in 0..1000 {
            let _s = Span::enter("quiet");
            counter("c", 1);
            record_hist("h", 1);
            crate::trace::instant("i");
            let _g = crate::trace::guard("g");
        }
        let after = crate::testalloc::allocations();
        assert_eq!(after, before, "disabled instrumentation must not allocate");
    }
}
