//! Log-bucketed latency histograms.
//!
//! A [`Hist`] is 64 power-of-two buckets: value `v` lands in bucket
//! `bitwidth(v)` (0 stays in bucket 0, `[2^k, 2^(k+1))` lands in bucket
//! `k + 1`). Recording is one shift, one increment and a max update —
//! cheap enough to sit on per-job paths — and quantiles come back as the
//! upper bound of the first bucket whose cumulative count crosses the
//! rank, clamped to the observed maximum. That makes p50/p90/p99
//! approximate (within a factor of two) but monotone, merge-exact and
//! allocation-free, which is all the bench telemetry needs.

use crate::json::Json;

/// Number of buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A log-bucketed histogram of nanosecond (or any `u64`) samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Hist {
        Hist { counts: [0; BUCKETS], count: 0, max: 0 }
    }

    fn bucket(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `b` (inclusive).
    fn bound(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 63 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Add every sample of `other` into `self` (bucket-exact).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` sample, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bound(b).min(self.max);
            }
        }
        self.max
    }

    /// `{count, p50_ns, p90_ns, p99_ns, max_ns}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::from(self.count)),
            ("p50_ns", Json::from(self.quantile(0.50))),
            ("p90_ns", Json::from(self.quantile(0.90))),
            ("p99_ns", Json::from(self.quantile(0.99))),
            ("max_ns", Json::from(self.max)),
        ])
    }

    /// One-line human rendering: `count=… p50=… p90=… p99=… max=…`.
    pub fn render(&self) -> String {
        use crate::span::fmt_ns;
        format!(
            "count={} p50={} p90={} p99={} max={}",
            self.count,
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.90)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(2), 2);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Hist::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // The bucket upper bound never exceeds the observed max.
        assert!(h.quantile(1.0) == 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_is_bucket_exact() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Hist::new();
        h.record(100);
        let j = h.to_json();
        for k in ["count", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            assert!(j.get(k).is_some(), "missing {k}");
        }
    }
}
