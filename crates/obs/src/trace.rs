//! The flight recorder: bounded per-thread rings of timestamped span
//! begin/end and instant events, exported as Chrome trace-event JSON.
//!
//! Recording follows the same discipline as the counter sink:
//!
//! - **Disabled means free.** Every entry point checks one relaxed
//!   atomic (the `TRACE_ON` bit of the sink's combined state word) and
//!   returns before touching the clock or any allocation.
//! - **Lock-free on the hot path, deterministic at drain.** Each thread
//!   appends to its own ring (a `thread_local` the thread owns; the
//!   registry mutex is only taken once, at ring creation). Events
//!   recorded inside a [`crate::with_local`] scope — which is how
//!   `wyt-par` wraps every task — are captured in the scope and folded
//!   back in task-index order, so the merged stream a drain sees is
//!   byte-identical between a serial run and a `WYT_PAR=4` run. Direct
//!   (unscoped) appends land in the calling thread's ring; [`drain`]
//!   merges rings by `(ring id, seq)`.
//! - **Bounded.** Rings cap at [`set_capacity`] events (default 65536);
//!   appends past the cap drop the *oldest* event, count it in a global
//!   accumulator surfaced as `obs.trace.dropped`, and keep going.
//!
//! Two export modes ([`to_chrome_json`]):
//!
//! - wall-clock (default): real `ts` microseconds, one Chrome track per
//!   recorded track id (`wyt-par` workers claim their worker index via
//!   [`track_guard`]), with `thread_name` metadata per track;
//! - deterministic (`WYT_OBS_TRACE_DETERMINISTIC=1`): logical ticks —
//!   `ts` is the event's index in the merged stream, every event on
//!   track 0 — so two runs with identical event streams export
//!   byte-identical JSON.

use crate::json::Json;
use crate::sink;
use crate::span::mono_ns;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable naming the Chrome-trace output path.
pub const ENV: &str = "WYT_OBS_TRACE";
/// Environment variable selecting logical-tick (deterministic) export.
pub const DETERMINISTIC_ENV: &str = "WYT_OBS_TRACE_DETERMINISTIC";
/// Environment variable overriding the per-thread ring capacity.
pub const CAP_ENV: &str = "WYT_OBS_TRACE_CAP";

const DEFAULT_CAP: usize = 1 << 16;

/// Event kind, mapping onto Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"ph": "B"`).
    Begin,
    /// Span end (`"ph": "E"`).
    End,
    /// Point-in-time marker (`"ph": "i"`).
    Instant,
}

impl Phase {
    fn ph(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name (span or instant label).
    pub name: &'static str,
    /// Begin/end/instant.
    pub phase: Phase,
    /// Nanoseconds since the process epoch at record time.
    pub ts_ns: u64,
    /// Track id: 0 = main thread, `wyt-par` workers use their worker
    /// index, other threads get fresh ids.
    pub track: u32,
    /// Per-thread sequence number at record time.
    pub seq: u64,
}

static DETERMINISTIC: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAP);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TRACK: AtomicU64 = AtomicU64::new(0);
static NEXT_RING: AtomicU64 = AtomicU64::new(0);

struct Ring {
    id: u64,
    buf: VecDeque<TraceEvent>,
}

static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

thread_local! {
    static MY_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static SEQ: Cell<u64> = const { Cell::new(0) };
    static TRACK: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Is the flight recorder collecting?
#[inline]
pub fn enabled() -> bool {
    sink::state() & sink::TRACE_ON != 0
}

/// Turn the flight recorder on or off.
pub fn set_enabled(on: bool) {
    sink::set_state_bit(sink::TRACE_ON, on);
}

/// Select logical-tick export (see module docs).
pub fn set_deterministic(on: bool) {
    DETERMINISTIC.store(on, Ordering::Relaxed);
}

/// Is logical-tick export selected?
pub fn deterministic() -> bool {
    DETERMINISTIC.load(Ordering::Relaxed)
}

/// Set the per-thread ring capacity (applies to live rings on their
/// next append).
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// Events dropped to ring caps since startup (or the last [`reset`]).
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The calling thread's track id, assigning a fresh one on first use.
fn current_track() -> u32 {
    TRACK.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed) as u32;
            t.set(Some(id));
            id
        }
    })
}

/// Pin the calling thread to track `id` until the guard drops,
/// restoring the previous assignment. `wyt-par` workers use this so the
/// wall-clock export gets one Chrome track per worker index.
pub fn track_guard(id: u32) -> TrackGuard {
    TrackGuard { prev: TRACK.with(|t| t.replace(Some(id))) }
}

/// RAII restore for [`track_guard`].
pub struct TrackGuard {
    prev: Option<u32>,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        TRACK.with(|t| t.set(self.prev));
    }
}

fn push_ring(ev: TraceEvent) {
    MY_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let ring = Arc::new(Mutex::new(Ring {
                id: NEXT_RING.fetch_add(1, Ordering::Relaxed),
                buf: VecDeque::new(),
            }));
            crate::lock_ok(&RINGS).push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        let ring = slot.as_ref().unwrap();
        let mut ring = crate::lock_ok(&**ring);
        let cap = CAPACITY.load(Ordering::Relaxed);
        while ring.buf.len() >= cap {
            ring.buf.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
            sink::counter("obs.trace.dropped", 1);
        }
        ring.buf.push_back(ev);
    });
}

/// Record one event (no-op when disabled). Lands in the innermost local
/// observation scope if one is installed, else in this thread's ring.
#[inline]
pub(crate) fn record(name: &'static str, phase: Phase) {
    if !enabled() {
        return;
    }
    let ev = TraceEvent {
        name,
        phase,
        ts_ns: mono_ns(),
        track: current_track(),
        seq: SEQ.with(|s| {
            let v = s.get();
            s.set(v + 1);
            v
        }),
    };
    if sink::push_local_event(ev) {
        return;
    }
    push_ring(ev);
}

/// Append events folded out of a local scope into this thread's ring,
/// preserving order and applying the ring cap (called by
/// [`sink::fold`] when no outer scope is installed).
pub(crate) fn append_folded(events: Vec<TraceEvent>) {
    for ev in events {
        push_ring(ev);
    }
}

/// Record a span-begin event.
#[inline]
pub fn begin(name: &'static str) {
    record(name, Phase::Begin);
}

/// Record a span-end event.
#[inline]
pub fn end(name: &'static str) {
    record(name, Phase::End);
}

/// Record an instant (point-in-time) event.
#[inline]
pub fn instant(name: &'static str) {
    record(name, Phase::Instant);
}

/// RAII trace-only span: begin at construction, end at drop. Inert
/// (one atomic load) when the recorder is off — `wyt-par` wraps every
/// task in one of these.
#[must_use = "the span ends when the guard drops"]
pub struct Guard {
    name: Option<&'static str>,
}

/// Enter a trace-only span named `name`.
pub fn guard(name: &'static str) -> Guard {
    if !enabled() {
        return Guard { name: None };
    }
    begin(name);
    Guard { name: Some(name) }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            end(name);
        }
    }
}

/// Drain every ring: rings ordered by creation id, events within a
/// ring in append order — i.e. the merged stream is ordered by
/// `(thread, seq)`. Rings are emptied; the dropped count is untouched.
pub fn drain() -> Vec<TraceEvent> {
    let handles: Vec<Arc<Mutex<Ring>>> = crate::lock_ok(&RINGS).clone();
    let mut keyed: Vec<(u64, Arc<Mutex<Ring>>)> = handles
        .into_iter()
        .map(|h| {
            let id = crate::lock_ok(&*h).id;
            (id, h)
        })
        .collect();
    keyed.sort_by_key(|(id, _)| *id);
    let mut out = Vec::new();
    for (_, h) in keyed {
        out.extend(crate::lock_ok(&*h).buf.drain(..));
    }
    out
}

/// Empty every ring and zero the dropped counter (tests).
pub fn reset() {
    let handles: Vec<Arc<Mutex<Ring>>> = crate::lock_ok(&RINGS).clone();
    for h in handles {
        crate::lock_ok(&*h).buf.clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
}

fn track_name(track: u32) -> String {
    if track == 0 {
        "main".to_string()
    } else {
        format!("worker-{track}")
    }
}

/// Render events as a Chrome trace-event JSON object
/// (`chrome://tracing` / Perfetto compatible).
///
/// Wall-clock mode groups events by track (one Chrome `tid` per track,
/// named via `thread_name` metadata), stable-sorting each track by
/// timestamp so per-track `ts` is monotone. Deterministic mode keeps
/// the merged-stream order, substitutes the stream index for `ts`, puts
/// everything on track 0 and emits no metadata — byte-identical across
/// runs with identical event streams.
pub fn to_chrome_json(events: &[TraceEvent], deterministic: bool) -> Json {
    let mut out: Vec<Json> = Vec::new();
    if deterministic {
        for (i, ev) in events.iter().enumerate() {
            out.push(event_json(ev.name, ev.phase, Json::from(i as u64), 0));
        }
    } else {
        let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for &t in &tracks {
            out.push(Json::obj(vec![
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(u64::from(t))),
                ("args", Json::obj(vec![("name", Json::from(track_name(t).as_str()))])),
            ]));
        }
        for &t in &tracks {
            let mut evs: Vec<&TraceEvent> = events.iter().filter(|e| e.track == t).collect();
            evs.sort_by_key(|e| e.ts_ns);
            for ev in evs {
                out.push(event_json(ev.name, ev.phase, Json::from(ev.ts_ns as f64 / 1e3), t));
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("obs.trace.dropped", Json::from(dropped())),
                ("deterministic", Json::Bool(deterministic)),
            ]),
        ),
    ])
}

fn event_json(name: &str, phase: Phase, ts: Json, track: u32) -> Json {
    let mut m = vec![
        ("name".to_string(), Json::from(name)),
        ("ph".to_string(), Json::from(phase.ph())),
        ("ts".to_string(), ts),
        ("pid".to_string(), Json::from(0u64)),
        ("tid".to_string(), Json::from(u64::from(track))),
    ];
    if phase == Phase::Instant {
        m.push(("s".to_string(), Json::from("t")));
    }
    Json::Obj(m)
}

/// Drain every ring and write the Chrome trace JSON to `path`
/// (pretty-printed, newline-terminated).
///
/// # Errors
///
/// Propagates the underlying filesystem write error.
pub fn write_chrome(path: &Path) -> io::Result<()> {
    let events = drain();
    let j = to_chrome_json(&events, deterministic());
    std::fs::write(path, format!("{}\n", j.pretty()))
}

/// Read `WYT_OBS_TRACE` (+ `WYT_OBS_TRACE_DETERMINISTIC`,
/// `WYT_OBS_TRACE_CAP`), enable the recorder when a path is set, and
/// return that path.
pub fn init_from_env() -> Option<PathBuf> {
    let path = std::env::var_os(ENV).map(PathBuf::from)?;
    if let Some(n) = crate::env::env_usize_opt(CAP_ENV) {
        set_capacity(n);
    }
    set_deterministic(std::env::var(DETERMINISTIC_ENV).as_deref() == Ok("1"));
    set_enabled(true);
    Some(path)
}

/// [`init_from_env`] wrapped in a guard that drains and writes the
/// trace on drop — report binaries install one at the top of `main` so
/// the export happens however they exit. Inert when `WYT_OBS_TRACE` is
/// unset.
pub fn flush_guard_from_env() -> FlushGuard {
    FlushGuard { path: init_from_env() }
}

/// See [`flush_guard_from_env`].
pub struct FlushGuard {
    path: Option<PathBuf>,
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        match write_chrome(&path) {
            Ok(()) => eprintln!("wyt-obs: trace written to {}", path.display()),
            Err(e) => eprintln!("wyt-obs: trace write to {} failed: {e}", path.display()),
        }
    }
}

/// Summary statistics from [`validate_chrome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeStats {
    /// Non-metadata events.
    pub events: usize,
    /// Distinct `tid` values.
    pub tracks: usize,
    /// Deepest begin/end nesting seen on any track.
    pub max_depth: usize,
}

/// Validate a parsed Chrome trace JSON object: `traceEvents` must be an
/// array of well-formed events, per-track timestamps must be monotone
/// non-decreasing, and begin/end events must nest (every `E` matches
/// the innermost open `B` of the same name on its track).
///
/// # Errors
///
/// Returns a description of the first malformation found.
pub fn validate_chrome(j: &Json) -> Result<ChromeStats, String> {
    let events = match j.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut count = 0usize;
    let mut max_depth = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing name")),
        };
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        let tid = match ev.get("tid") {
            Some(Json::Num(n)) => *n as u64,
            _ => return Err(format!("event {i}: missing tid")),
        };
        if ph == "M" {
            continue;
        }
        let ts = match ev.get("ts") {
            Some(Json::Num(n)) => *n,
            _ => return Err(format!("event {i}: missing ts")),
        };
        count += 1;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!("event {i} ({name}): ts {ts} < {prev} on track {tid}"));
            }
        }
        last_ts.insert(tid, ts);
        let stack = stacks.entry(tid).or_default();
        match ph.as_str() {
            "B" => {
                stack.push(name);
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: end of {name} but innermost open span is {open} (track {tid})"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: end of {name} with no open span (track {tid})"
                    ));
                }
            },
            "i" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("track {tid}: span {open} never ended"));
        }
    }
    Ok(ChromeStats { events: count, tracks: last_ts.len(), max_depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::tests::TEST_LOCK;

    fn clean() {
        set_enabled(false);
        set_deterministic(false);
        set_capacity(DEFAULT_CAP);
        reset();
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        begin("a");
        end("a");
        instant("x");
        let _g = guard("g");
        assert!(drain().is_empty());
    }

    #[test]
    fn events_record_in_order_with_sequence_numbers() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        {
            let _g = guard("outer");
            instant("mark");
        }
        let evs = drain();
        clean();
        assert_eq!(evs.len(), 3);
        assert_eq!((evs[0].name, evs[0].phase), ("outer", Phase::Begin));
        assert_eq!((evs[1].name, evs[1].phase), ("mark", Phase::Instant));
        assert_eq!((evs[2].name, evs[2].phase), ("outer", Phase::End));
        assert!(evs[0].seq < evs[1].seq && evs[1].seq < evs[2].seq);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        set_capacity(8);
        let before = dropped();
        for _ in 0..20 {
            instant("tick");
        }
        let evs = drain();
        let dropped_now = dropped() - before;
        clean();
        assert_eq!(evs.len(), 8, "ring holds exactly its capacity");
        assert_eq!(dropped_now, 12, "drops are counted");
        // The survivors are the *newest* 8: their seqs are consecutive
        // and end at the last append.
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn local_scope_captures_trace_events() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        let ((), snap) = crate::with_local(|| {
            instant("inside");
        });
        assert!(drain().is_empty(), "scoped events stay out of the ring until folded");
        assert_eq!(snap.events.len(), 1);
        crate::fold(snap);
        let evs = drain();
        clean();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "inside");
    }

    #[test]
    fn deterministic_export_uses_logical_ticks() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        begin("a");
        instant("m");
        end("a");
        let evs = drain();
        clean();
        let j = to_chrome_json(&evs, true);
        let arr = match j.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            _ => panic!("no traceEvents"),
        };
        assert_eq!(arr.len(), 3);
        for (i, ev) in arr.iter().enumerate() {
            assert_eq!(ev.get("ts"), Some(&Json::Num(i as f64)), "logical tick");
            assert_eq!(ev.get("tid"), Some(&Json::Num(0.0)), "single track");
        }
        validate_chrome(&j).expect("deterministic export validates");
    }

    #[test]
    fn wall_clock_export_validates_with_metadata() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        {
            let _g = guard("outer");
            let _h = guard("inner");
        }
        let evs = drain();
        clean();
        let j = to_chrome_json(&evs, false);
        let stats = validate_chrome(&j).expect("wall-clock export validates");
        assert_eq!(stats.events, 4);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn validate_chrome_rejects_bad_nesting_and_backwards_time() {
        let bad_nest = Json::obj(vec![(
            "traceEvents",
            Json::Arr(vec![
                event_json("a", Phase::Begin, Json::from(0u64), 0),
                event_json("b", Phase::End, Json::from(1u64), 0),
            ]),
        )]);
        assert!(validate_chrome(&bad_nest).is_err());
        let backwards = Json::obj(vec![(
            "traceEvents",
            Json::Arr(vec![
                event_json("m", Phase::Instant, Json::from(5u64), 0),
                event_json("m", Phase::Instant, Json::from(1u64), 0),
            ]),
        )]);
        assert!(validate_chrome(&backwards).is_err());
        assert!(validate_chrome(&Json::obj(vec![])).is_err());
    }

    #[test]
    fn span_guard_emits_begin_and_end_when_tracing() {
        let _l = TEST_LOCK.lock().unwrap();
        clean();
        set_enabled(true);
        {
            let _s = crate::Span::enter("traced");
        }
        let evs = drain();
        clean();
        assert_eq!(evs.len(), 2, "Span::enter feeds the recorder even with the sink off");
        assert_eq!((evs[0].name, evs[0].phase), ("traced", Phase::Begin));
        assert_eq!((evs[1].name, evs[1].phase), ("traced", Phase::End));
    }
}
