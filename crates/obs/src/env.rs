//! Warn-and-default environment-variable parsing.
//!
//! Every tunable the service reads from the environment (`WYT_PAR`,
//! `WYT_STREAM_CAP`, `WYT_STORE_CAP`, `WYT_OBS_TRACE_CAP`,
//! `WYT_JOB_BUDGET`, ...) goes through these helpers: an unset variable
//! yields the default silently, a malformed value yields the default
//! with a one-time warning on stderr. A bad knob must never panic a
//! long-running batch service mid-flight.
//!
//! Warnings are deduplicated per `(variable, raw value)` pair so a knob
//! consulted on every job (e.g. `WYT_PAR` in `resolve_threads`) does
//! not spam stderr.

use std::collections::BTreeSet;
use std::sync::Mutex;

static WARNED: Mutex<BTreeSet<(String, String)>> = Mutex::new(BTreeSet::new());

fn warn_once(name: &str, raw: &str, default: &str) {
    let mut seen = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if seen.insert((name.to_string(), raw.to_string())) {
        eprintln!("warning: ignoring invalid {name}={raw:?}; using default {default}");
    }
}

/// Parse an already-fetched raw value (or `None` when the variable is
/// unset). Split out from [`env_u64`] so the warn-and-default policy is
/// unit-testable without mutating the process environment.
pub fn parse_u64(name: &str, raw: Option<&str>, default: u64) -> u64 {
    let Some(raw) = raw else { return default };
    let trimmed = raw.trim();
    match parse_u64_lenient(trimmed) {
        Some(n) => n,
        None => {
            warn_once(name, raw, &default.to_string());
            default
        }
    }
}

/// Accept plain decimal and `0x`-prefixed hex, matching how seeds and
/// caps are written elsewhere in the repo (`WYT_FAULT=0xc0ffee`).
fn parse_u64_lenient(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Read `name` from the environment as a `u64`, warn-and-default on a
/// malformed value.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => parse_u64(name, Some(&raw), default),
        Err(_) => default,
    }
}

/// Read `name` from the environment as a `usize`, warn-and-default on a
/// malformed or out-of-range value.
pub fn env_usize(name: &str, default: usize) -> usize {
    let v = env_u64(name, default as u64);
    match usize::try_from(v) {
        Ok(n) => n,
        Err(_) => default,
    }
}

/// Like [`env_usize`] but with no default: `None` when unset, and
/// `None` (with a warning) when malformed, so callers keep their
/// "unset means feature off" semantics.
pub fn env_usize_opt(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    match parse_u64_lenient(trimmed).and_then(|v| usize::try_from(v).ok()) {
        Some(n) => Some(n),
        None => {
            warn_once(name, &raw, "unset");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_default() {
        assert_eq!(parse_u64("T_UNSET", None, 7), 7);
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_u64("T_DEC", Some("42"), 7), 42);
        assert_eq!(parse_u64("T_HEX", Some("0x10"), 7), 16);
        assert_eq!(parse_u64("T_WS", Some(" 3 "), 7), 3);
    }

    #[test]
    fn malformed_values_default_without_panic() {
        assert_eq!(parse_u64("T_BAD", Some("banana"), 7), 7);
        assert_eq!(parse_u64("T_NEG", Some("-1"), 7), 7);
        assert_eq!(parse_u64("T_EMPTY", Some(""), 7), 7);
        assert_eq!(parse_u64("T_HUGE", Some("99999999999999999999999"), 7), 7);
    }
}
