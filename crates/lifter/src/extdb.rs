//! External-function database (paper §5.3).
//!
//! For every dynamically linked ("libc") function the lifter knows its
//! fixed-arity signature and the *pointer effects* the bounds-recovery
//! runtime must model. The effect vocabulary is exactly the paper's:
//! `ObjectSize`, `ZeroTerminated`, `Derive`, `Clear`, `Copy`, `FormatStr`.

use wyt_emu::ExtId;

/// A size operand of an effect: a constant or the value of an argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeSpec {
    /// A constant number of bytes.
    Const(u32),
    /// The runtime value of the i-th argument.
    Arg(usize),
    /// The product of two arguments' values (e.g. `calloc(n, sz)`).
    ArgProduct(usize, usize),
}

/// A pointer effect of an external function (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtEffect {
    /// The object at pointer-argument `ptr` is at least `size` bytes.
    ObjectSize {
        /// Pointer argument index.
        ptr: usize,
        /// Guaranteed size.
        size: SizeSpec,
    },
    /// The data at pointer-argument `ptr` is NUL-terminated; its extent at
    /// runtime is `strlen + 1`.
    ZeroTerminated {
        /// Pointer argument index.
        ptr: usize,
    },
    /// The return value points into the same object as pointer-argument
    /// `base`.
    DeriveRet {
        /// Pointer argument index the result derives from.
        base: usize,
    },
    /// The function overwrites `size` bytes at `ptr`, clearing any stack
    /// references stored there.
    Clear {
        /// Pointer argument index.
        ptr: usize,
        /// Bytes cleared.
        size: SizeSpec,
    },
    /// The function copies `size` bytes from `src` to `dst`, carrying any
    /// stored stack references along.
    Copy {
        /// Destination pointer argument index.
        dst: usize,
        /// Source pointer argument index.
        src: usize,
        /// Bytes copied.
        size: SizeSpec,
    },
    /// Argument `fmt` is a printf-style format string describing the
    /// variadic tail.
    FormatStr {
        /// Format-string argument index.
        fmt: usize,
    },
}

/// Signature and effects of one external function.
#[derive(Debug, Clone)]
pub struct ExtSig {
    /// The external.
    pub ext: ExtId,
    /// Number of fixed arguments.
    pub fixed_args: usize,
    /// Variadic tail described by a format string.
    pub variadic: bool,
    /// Pointer effects.
    pub effects: Vec<ExtEffect>,
}

/// Look up the database entry for an external.
pub fn ext_sig(ext: ExtId) -> ExtSig {
    use ExtEffect::*;
    let effects: Vec<ExtEffect> = match ext {
        ExtId::Printf => vec![ZeroTerminated { ptr: 0 }, FormatStr { fmt: 0 }],
        ExtId::Puts => vec![ZeroTerminated { ptr: 0 }],
        ExtId::Putchar | ExtId::Getchar | ExtId::Exit | ExtId::Abort | ExtId::Free => vec![],
        ExtId::ReadBytes => vec![
            ObjectSize { ptr: 0, size: SizeSpec::Arg(1) },
            Clear { ptr: 0, size: SizeSpec::Arg(1) },
        ],
        ExtId::Malloc => vec![],
        ExtId::Calloc => vec![],
        ExtId::Realloc => vec![],
        ExtId::Memcpy | ExtId::Memmove => vec![
            ObjectSize { ptr: 0, size: SizeSpec::Arg(2) },
            ObjectSize { ptr: 1, size: SizeSpec::Arg(2) },
            Copy { dst: 0, src: 1, size: SizeSpec::Arg(2) },
            DeriveRet { base: 0 },
        ],
        ExtId::Memset => vec![
            ObjectSize { ptr: 0, size: SizeSpec::Arg(2) },
            Clear { ptr: 0, size: SizeSpec::Arg(2) },
            DeriveRet { base: 0 },
        ],
        ExtId::Strlen => vec![ZeroTerminated { ptr: 0 }],
        ExtId::Strcpy => vec![ZeroTerminated { ptr: 1 }, DeriveRet { base: 0 }],
        ExtId::Strcmp => vec![ZeroTerminated { ptr: 0 }, ZeroTerminated { ptr: 1 }],
        ExtId::Strchr => vec![ZeroTerminated { ptr: 0 }, DeriveRet { base: 0 }],
    };
    ExtSig { ext, fixed_args: ext.fixed_args(), variadic: ext.is_variadic(), effects }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_external_has_an_entry() {
        for e in ExtId::ALL {
            let sig = ext_sig(e);
            assert_eq!(sig.fixed_args, e.fixed_args());
            assert_eq!(sig.variadic, e.is_variadic());
        }
    }

    #[test]
    fn effect_classes_match_the_paper() {
        let memcpy = ext_sig(ExtId::Memcpy);
        assert!(memcpy.effects.iter().any(|e| matches!(e, ExtEffect::Copy { .. })));
        let memset = ext_sig(ExtId::Memset);
        assert!(memset.effects.iter().any(|e| matches!(e, ExtEffect::Clear { .. })));
        let strchr = ext_sig(ExtId::Strchr);
        assert!(strchr.effects.iter().any(|e| matches!(e, ExtEffect::DeriveRet { .. })));
        let printf = ext_sig(ExtId::Printf);
        assert!(printf.effects.iter().any(|e| matches!(e, ExtEffect::FormatStr { .. })));
        let read = ext_sig(ExtId::ReadBytes);
        assert!(read.effects.iter().any(|e| matches!(e, ExtEffect::ObjectSize { .. })));
    }
}
