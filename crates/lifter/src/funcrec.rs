//! Function recovery over the machine CFG (paper §5.1, Nucleus-style).
//!
//! Call targets seed function entries; jumps to known entries are tail
//! calls; remaining jump/branch/fallthrough edges are intra-procedural.
//! Blocks reachable from more entries than any of their predecessors are
//! promoted to entries (splitting shared tails), so every function has
//! exactly one entry — the representation the lifter needs for
//! function-local variables.

use crate::cfg::{BlockEnd, MachCfg};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wyt_isa::DecodeLimits;

/// A recovered machine function. `PartialEq` supports the healing loop's
/// CFG diff: a function re-recovered from a merged trace is "changed"
/// when any of its machine-level facts differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachFunc {
    /// Entry block address.
    pub entry: u32,
    /// All member block addresses (entry included).
    pub blocks: BTreeSet<u32>,
    /// Bytes popped by this function's `ret` instructions (must agree).
    pub ret_pop: u16,
    /// Jump-terminator addresses classified as tail calls, with targets.
    pub tail_calls: BTreeMap<u32, u32>,
}

/// Result of function recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncMap {
    /// Functions keyed by entry address.
    pub funcs: BTreeMap<u32, MachFunc>,
    /// Block address → owning function entry.
    pub owner: BTreeMap<u32, u32>,
}

/// A recovery failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuncRecError {
    /// A function mixes `ret n` with different pop counts.
    MixedRetPop(u32),
    /// A traced block is reachable from no entry.
    OrphanBlock(u32),
    /// A reachable block decoded to zero instructions (malformed trace).
    EmptyBlock(u32),
    /// Recovery produced more function entries than the decode limits
    /// allow (hostile input defense; see [`wyt_isa::DecodeLimits`]).
    TooManyFuncs {
        /// The configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for FuncRecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncRecError::MixedRetPop(e) => {
                write!(f, "function {e:#x} mixes ret immediates")
            }
            FuncRecError::OrphanBlock(b) => write!(f, "block {b:#x} unreachable from any entry"),
            FuncRecError::EmptyBlock(b) => write!(f, "block {b:#x} has no instructions"),
            FuncRecError::TooManyFuncs { limit } => {
                write!(f, "recovery exceeds decode limit: more than {limit} functions")
            }
        }
    }
}

impl std::error::Error for FuncRecError {}

/// Recover function boundaries under the default [`DecodeLimits`].
///
/// # Errors
/// Returns a [`FuncRecError`] on inconsistent frames or orphan blocks.
pub fn recover_functions(cfg: &MachCfg) -> Result<FuncMap, FuncRecError> {
    recover_functions_limited(cfg, &DecodeLimits::default())
}

/// Recover function boundaries, refusing to promote past
/// `limits.max_funcs` entries (hostile traces can otherwise seed an
/// entry per byte of text).
///
/// # Errors
/// Returns a [`FuncRecError`] on inconsistent frames, orphan blocks, or
/// limit exhaustion.
pub fn recover_functions_limited(
    cfg: &MachCfg,
    limits: &DecodeLimits,
) -> Result<FuncMap, FuncRecError> {
    let mut entries: BTreeSet<u32> = cfg.call_targets.clone();
    entries.insert(cfg.entry);

    loop {
        if entries.len() > limits.max_funcs {
            return Err(FuncRecError::TooManyFuncs { limit: limits.max_funcs });
        }
        // Membership count per block given current entries.
        let mut member_of: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for &e in &entries {
            for b in reach(cfg, e, &entries) {
                member_of.entry(b).or_default().insert(e);
            }
        }
        // Split rule: a block contained in more functions than any of its
        // intra-procedural predecessors becomes an entry.
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (addr, b) in &cfg.blocks {
            for s in cfg.successors(b) {
                if !entries.contains(&s) {
                    preds.entry(s).or_default().push(*addr);
                }
            }
        }
        let mut new_entries = Vec::new();
        for (b, owners) in &member_of {
            if entries.contains(b) {
                continue;
            }
            let my = owners.len();
            let pred_max = preds
                .get(b)
                .map(|ps| {
                    ps.iter()
                        .map(|p| member_of.get(p).map(|s| s.len()).unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            if my > pred_max {
                new_entries.push(*b);
            }
        }
        if new_entries.is_empty() {
            break;
        }
        entries.extend(new_entries);
    }

    // Final assignment.
    let mut map = FuncMap::default();
    for &e in &entries {
        let blocks = reach(cfg, e, &entries);
        // Determine ret pop and tail calls.
        let mut ret_pop: Option<u16> = None;
        let mut tail_calls = BTreeMap::new();
        for &b in &blocks {
            // `reach` only returns decoded blocks, but a malformed trace
            // must degrade to a structured error, never a panic.
            let Some(blk) = cfg.blocks.get(&b) else {
                return Err(FuncRecError::OrphanBlock(b));
            };
            match &blk.end {
                BlockEnd::Ret(p) => match ret_pop {
                    None => ret_pop = Some(*p),
                    Some(prev) if prev != *p => return Err(FuncRecError::MixedRetPop(e)),
                    _ => {}
                },
                // Jumps to entries are tail calls (including tail
                // recursion, where the target is this entry).
                BlockEnd::Jmp(t) if entries.contains(t) => {
                    let Some(&(jaddr, _)) = blk.insts.last() else {
                        return Err(FuncRecError::EmptyBlock(b));
                    };
                    tail_calls.insert(jaddr, *t);
                }
                _ => {}
            }
        }
        for &b in &blocks {
            map.owner.insert(b, e);
        }
        map.funcs
            .insert(e, MachFunc { entry: e, blocks, ret_pop: ret_pop.unwrap_or(0), tail_calls });
    }

    for b in cfg.blocks.keys() {
        if !map.owner.contains_key(b) {
            return Err(FuncRecError::OrphanBlock(*b));
        }
    }
    Ok(map)
}

/// Blocks reachable from `entry` without crossing another entry (jumps to
/// entries are tail calls, not edges).
fn reach(cfg: &MachCfg, entry: u32, entries: &BTreeSet<u32>) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        // Only decoded blocks join the function: a truncated trace can
        // leave a jump whose target was never traced, and that target must
        // not become a phantom member (it traps at runtime instead).
        let Some(blk) = cfg.blocks.get(&b) else { continue };
        if !seen.insert(b) {
            continue;
        }
        for s in cfg.successors(blk) {
            // Jump edges to entries are tail calls; conditional and
            // fallthrough edges never target entries in compiler output.
            let is_tail =
                entries.contains(&s) && matches!(blk.end, BlockEnd::Jmp(_) | BlockEnd::JmpInd(_));
            if !is_tail && !seen.contains(&s) {
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::trace::trace_image;
    use wyt_minicc::{compile, Profile};

    fn recover(
        src: &str,
        profile: &Profile,
        inputs: &[Vec<u8>],
    ) -> (FuncMap, wyt_isa::image::Image) {
        let img = compile(src, profile).unwrap();
        let (trace, results) = trace_image(&img, inputs);
        assert!(results.iter().all(|r| r.ok()));
        let cfg = build_cfg(&img, &trace).unwrap();
        (recover_functions(&cfg).unwrap(), img)
    }

    #[test]
    fn func_limit_is_a_typed_error() {
        let src = r#"
            int helper(int x) { return x * 3; }
            int main() { return helper(5); }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, _) = trace_image(&img, &[vec![]]);
        let cfg = build_cfg(&img, &trace).unwrap();
        let tight = wyt_isa::DecodeLimits { max_funcs: 1, ..Default::default() };
        assert_eq!(
            recover_functions_limited(&cfg, &tight),
            Err(FuncRecError::TooManyFuncs { limit: 1 })
        );
    }

    #[test]
    fn finds_called_functions() {
        let src = r#"
            int helper(int x) { return x * 3; }
            int twice(int x) { return helper(x) + helper(x + 1); }
            int main() { return twice(5); }
        "#;
        let (map, img) = recover(src, &Profile::gcc44_o3(), &[vec![]]);
        for name in ["helper", "twice", "main"] {
            let addr = img.symbol(name).unwrap();
            assert!(map.funcs.contains_key(&addr), "{name} not recovered");
        }
        // No false entries beyond the three functions.
        assert_eq!(map.funcs.len(), 3);
    }

    #[test]
    fn blocks_owned_by_exactly_one_function() {
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { return fib(8); }
        "#;
        let (map, _) = recover(src, &Profile::gcc44_o3(), &[vec![]]);
        let mut seen = BTreeSet::new();
        for f in map.funcs.values() {
            for b in &f.blocks {
                assert!(seen.insert(*b), "block {b:#x} in two functions");
            }
        }
    }

    #[test]
    fn tail_calls_identified() {
        // gcc12 O3 emits a tail call for `return count(...)`.
        let src = r#"
            int count(int n, int acc) {
                if (n == 0) return acc;
                return count(n - 1, acc + n);
            }
            int main() { return count(10, 0); }
        "#;
        let (map, img) = recover(src, &Profile::gcc12_o3(), &[vec![]]);
        let count_addr = img.symbol("count").unwrap();
        let f = &map.funcs[&count_addr];
        assert!(!f.tail_calls.is_empty(), "tail recursion should be classified as a tail call");
        assert!(f.tail_calls.values().all(|t| *t == count_addr));
    }

    #[test]
    fn cross_function_tail_call() {
        // `target` also has a regular call site, so it stays a function and
        // hop's jump to it is a tail call. The loop keeps `target` from
        // being inlined.
        let src = r#"
            int target(int a, int b) {
                int i;
                int acc = 0;
                for (i = 0; i < a; i++) acc += b;
                return acc;
            }
            int hop(int a, int b) { return target(a + 1, b); }
            int main() {
                int x = hop(5, 2);
                int y = target(1, 1);
                return x + y;
            }
        "#;
        let (map, img) = recover(src, &Profile::gcc12_o3(), &[vec![]]);
        let hop = img.symbol("hop").unwrap();
        let target = img.symbol("target").unwrap();
        assert!(map.funcs.contains_key(&target));
        let f = &map.funcs[&hop];
        assert!(f.tail_calls.values().any(|t| *t == target));
    }

    #[test]
    fn exclusively_tail_called_function_is_merged() {
        // Paper §5.1: a function reachable only through tail calls and with
        // no regular call sites is merged into its caller.
        let src = r#"
            int target(int a, int b) {
                int i;
                int acc = 0;
                for (i = 0; i < a; i++) acc += b;
                return acc;
            }
            int hop(int a, int b) { return target(a + 1, b); }
            int main() {
                int x = hop(5, 2);
                return x;
            }
        "#;
        let (map, img) = recover(src, &Profile::gcc12_o3(), &[vec![]]);
        let target = img.symbol("target").unwrap();
        assert!(
            !map.funcs.contains_key(&target),
            "exclusively tail-called function should be merged"
        );
        let hop = img.symbol("hop").unwrap();
        assert!(map.funcs[&hop].blocks.contains(&target));
    }
}
