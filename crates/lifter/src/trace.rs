//! Dynamic tracing: run the input binary on the emulator with a set of
//! user-provided inputs and merge the observed control transfers (paper
//! Fig. 4: trace → merge CFGs).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use wyt_emu::{EdgeCache, Machine, RunResult, TraceSink, TransferKind};
use wyt_isa::image::Image;

/// Merged dynamic control-flow observations from one or more runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    /// All observed `(from, to, kind)` transfers.
    pub edges: BTreeSet<(u32, u32, TransferKind)>,
    /// External call sites: instruction address → import index.
    pub ext_calls: BTreeMap<u32, u16>,
}

/// What [`Trace::merge`] added: how many of the other trace's edges and
/// external-call bindings were new to this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeDelta {
    /// Edges not previously present.
    pub new_edges: usize,
    /// External-call sites not previously bound.
    pub new_ext_calls: usize,
}

impl Trace {
    /// All observed targets of the transfer instruction at `from` with a
    /// kind accepted by `pred`.
    ///
    /// The edge set is ordered by `(from, to, kind)`, so this is a range
    /// scan over just the `from` prefix — not a walk of the whole set.
    /// The `lift.trace.query_visited` counter records how many entries
    /// each query actually touched (the old full-scan cost would have
    /// been `edges.len()` per query).
    pub fn targets_from(&self, from: u32, pred: impl Fn(TransferKind) -> bool) -> Vec<u32> {
        let mut visited = 0u64;
        let targets = self
            .edges
            .range((from, u32::MIN, TransferKind::MIN)..=(from, u32::MAX, TransferKind::MAX))
            .inspect(|_| visited += 1)
            .filter(|(_, _, k)| pred(*k))
            .map(|(_, t, _)| *t)
            .collect();
        wyt_obs::counter("lift.trace.queries", 1);
        wyt_obs::counter("lift.trace.query_visited", visited);
        targets
    }

    /// [`Trace::targets_from`] without the obs counters — for the
    /// streaming consumer thread, which must not write into the global
    /// sink (its contribution would be interleaving-dependent).
    pub(crate) fn targets_from_quiet(
        &self,
        from: u32,
        pred: impl Fn(TransferKind) -> bool,
    ) -> Vec<u32> {
        self.edges
            .range((from, u32::MIN, TransferKind::MIN)..=(from, u32::MAX, TransferKind::MAX))
            .filter(|(_, _, k)| pred(*k))
            .map(|(_, t, _)| *t)
            .collect()
    }

    /// Addresses that were entered by a (direct or indirect) call.
    pub fn call_targets(&self) -> BTreeSet<u32> {
        self.edges.iter().filter(|(_, _, k)| k.is_call()).map(|(_, t, _)| *t).collect()
    }

    /// All transfer-target addresses (block-start candidates).
    pub fn all_targets(&self) -> BTreeSet<u32> {
        self.edges.iter().map(|(_, t, _)| *t).collect()
    }

    /// Fold another trace's observations into this one (the incremental
    /// merge step of the healing loop). Returns how many of `other`'s
    /// edges and ext-call bindings were new.
    ///
    /// A site that is already bound must rebind to the same import: the
    /// instruction at a pc calls whatever import its bytes name, so a
    /// same-pc different-import merge is trace corruption and trips a
    /// debug assertion instead of being silently masked.
    pub fn merge(&mut self, other: &Trace) -> MergeDelta {
        let before = self.edges.len();
        self.edges.extend(other.edges.iter().copied());
        let mut new_ext_calls = 0;
        for (pc, idx) in &other.ext_calls {
            match self.ext_calls.entry(*pc) {
                Entry::Vacant(v) => {
                    v.insert(*idx);
                    new_ext_calls += 1;
                }
                Entry::Occupied(o) => debug_assert_eq!(
                    *o.get(),
                    *idx,
                    "ext call at {pc:#x} rebound from import {} to {}",
                    o.get(),
                    idx
                ),
            }
        }
        MergeDelta { new_edges: self.edges.len() - before, new_ext_calls }
    }
}

/// The phased-path sink: records straight into a [`Trace`], with a
/// last-N [`EdgeCache`] in front so steady-state hot loops skip the
/// tree probe. Suppressed edges are by definition already in the set,
/// so the resulting trace is identical with or without the cache.
struct Recorder<'t> {
    trace: &'t mut Trace,
    cache: EdgeCache,
}

impl TraceSink for Recorder<'_> {
    fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
        if self.cache.note(from, to, kind) {
            self.trace.edges.insert((from, to, kind));
        }
    }

    fn ext_call(&mut self, pc: u32, idx: u16, _esp: u32) {
        self.trace.ext_calls.insert(pc, idx);
    }
}

/// Run `img` once per input, merging all traces. Returns the merged trace
/// and the per-input run results (used to validate recompiled binaries
/// against the original, as the paper does with the ref datasets).
pub fn trace_image(img: &Image, inputs: &[Vec<u8>]) -> (Trace, Vec<RunResult>) {
    let mut trace = Trace::default();
    let mut results = Vec::new();
    let mut dedup_hits = 0;
    for input in inputs {
        let mut m = Machine::new(img, input.clone());
        let mut rec = Recorder { trace: &mut trace, cache: EdgeCache::default() };
        let r = m.run_with(&mut rec);
        dedup_hits += rec.cache.hits();
        results.push(r);
    }
    wyt_obs::counter("lift.trace.dedup_hits", dedup_hits);
    (trace, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_minicc::{compile, Profile};

    #[test]
    fn merged_traces_cover_both_paths() {
        let src = r#"
            int f(int x) { if (x > 5) return 1; return 2; }
            int main() {
                int c = getchar();
                return f(c);
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (one_path, _) = trace_image(&img, &[b"\x01".to_vec()]);
        let (both_paths, results) = trace_image(&img, &[b"\x01".to_vec(), b"Z".to_vec()]);
        assert!(results.iter().all(|r| r.ok()));
        assert!(both_paths.edges.len() > one_path.edges.len());
        assert!(!both_paths.call_targets().is_empty());
        assert!(!both_paths.ext_calls.is_empty());
    }

    #[test]
    fn indirect_call_targets_recorded() {
        let src = r#"
            int a() { return 1; }
            int b() { return 2; }
            int main() {
                int t = getchar() == 'a' ? (int)&a : (int)&b;
                return __icall(t);
            }
        "#;
        let img = compile(src, &Profile::gcc12_o3()).unwrap();
        let (t, _) = trace_image(&img, &[b"a".to_vec(), b"b".to_vec()]);
        let a_addr = img.symbol("a").unwrap();
        let b_addr = img.symbol("b").unwrap();
        let calls = t.call_targets();
        assert!(calls.contains(&a_addr) && calls.contains(&b_addr));
    }

    /// The edge cache only suppresses inserts that would have been
    /// set-level no-ops: the trace a cached recorder produces is
    /// byte-identical to one recorded edge by edge with no cache.
    #[test]
    fn edge_cache_leaves_the_trace_unchanged() {
        struct Plain<'t>(&'t mut Trace);
        impl TraceSink for Plain<'_> {
            fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
                self.0.edges.insert((from, to, kind));
            }
            fn ext_call(&mut self, pc: u32, idx: u16, _esp: u32) {
                self.0.ext_calls.insert(pc, idx);
            }
        }
        let src = r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 200; i++) acc += i & 7;
                printf("%d\n", acc);
                return 0;
            }
        "#;
        for profile in [Profile::gcc12_o3(), Profile::gcc44_o3()] {
            let img = compile(src, &profile).unwrap();
            let (cached, _) = trace_image(&img, &[vec![]]);
            let mut plain = Trace::default();
            let r = Machine::new(&img, vec![]).run_with(&mut Plain(&mut plain));
            assert!(r.ok());
            assert_eq!(cached, plain, "cache must not change the merged trace");
        }
        // And the cache actually fires on the hot loop.
        let img = compile(src, &Profile::gcc12_o3()).unwrap();
        let mut trace = Trace::default();
        let mut rec = Recorder { trace: &mut trace, cache: EdgeCache::default() };
        assert!(Machine::new(&img, vec![]).run_with(&mut rec).ok());
        assert!(rec.cache.hits() > 100, "hot loop should hit the cache");
    }

    /// The range-bounded `targets_from` visits only the queried `from`
    /// prefix of the edge set, not the whole set.
    #[test]
    fn targets_from_is_a_range_scan() {
        let mut t = Trace::default();
        for from in 0..64u32 {
            for to in 0..4u32 {
                t.edges.insert((from * 16, 1000 + to, TransferKind::IndJump));
            }
        }
        let ((), snap) = wyt_obs::with_local(|| {
            wyt_obs::set_enabled(true);
            let ts = t.targets_from(16, |k| k == TransferKind::IndJump);
            wyt_obs::set_enabled(false);
            assert_eq!(ts, vec![1000, 1001, 1002, 1003]);
        });
        let visited = snap.counters.get("lift.trace.query_visited").copied().unwrap_or(0);
        assert_eq!(visited, 4, "query must touch only its own prefix");
        assert!((visited as usize) < t.edges.len());
    }

    #[test]
    fn merge_reports_edge_and_ext_call_deltas() {
        let mut a = Trace::default();
        a.edges.insert((1, 2, TransferKind::Jump));
        a.ext_calls.insert(10, 0);
        let mut b = Trace::default();
        b.edges.insert((1, 2, TransferKind::Jump));
        b.edges.insert((3, 4, TransferKind::Call));
        b.ext_calls.insert(10, 0);
        b.ext_calls.insert(20, 1);
        let d = a.merge(&b);
        assert_eq!(d, MergeDelta { new_edges: 1, new_ext_calls: 1 });
        assert_eq!(a.ext_calls.len(), 2);
        // Merging again adds nothing.
        let d2 = a.merge(&b);
        assert_eq!(d2, MergeDelta { new_edges: 0, new_ext_calls: 0 });
    }

    #[test]
    #[should_panic(expected = "rebound")]
    #[cfg(debug_assertions)]
    fn merge_rejects_rebound_ext_call() {
        let mut a = Trace::default();
        a.ext_calls.insert(10, 0);
        let mut b = Trace::default();
        b.ext_calls.insert(10, 3);
        let _ = a.merge(&b);
    }
}
