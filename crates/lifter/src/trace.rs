//! Dynamic tracing: run the input binary on the emulator with a set of
//! user-provided inputs and merge the observed control transfers (paper
//! Fig. 4: trace → merge CFGs).

use std::collections::{BTreeMap, BTreeSet};
use wyt_emu::{Machine, RunResult, TraceSink, TransferKind};
use wyt_isa::image::Image;

/// Merged dynamic control-flow observations from one or more runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    /// All observed `(from, to, kind)` transfers.
    pub edges: BTreeSet<(u32, u32, TransferKind)>,
    /// External call sites: instruction address → import index.
    pub ext_calls: BTreeMap<u32, u16>,
}

impl Trace {
    /// All observed targets of the transfer instruction at `from` with a
    /// kind accepted by `pred`.
    pub fn targets_from(&self, from: u32, pred: impl Fn(TransferKind) -> bool) -> Vec<u32> {
        self.edges.iter().filter(|(f, _, k)| *f == from && pred(*k)).map(|(_, t, _)| *t).collect()
    }

    /// Addresses that were entered by a (direct or indirect) call.
    pub fn call_targets(&self) -> BTreeSet<u32> {
        self.edges.iter().filter(|(_, _, k)| k.is_call()).map(|(_, t, _)| *t).collect()
    }

    /// All transfer-target addresses (block-start candidates).
    pub fn all_targets(&self) -> BTreeSet<u32> {
        self.edges.iter().map(|(_, t, _)| *t).collect()
    }

    /// Fold another trace's observations into this one (the incremental
    /// merge step of the healing loop). Returns how many of `other`'s
    /// edges were new.
    pub fn merge(&mut self, other: &Trace) -> usize {
        let before = self.edges.len();
        self.edges.extend(other.edges.iter().copied());
        for (pc, idx) in &other.ext_calls {
            self.ext_calls.insert(*pc, *idx);
        }
        self.edges.len() - before
    }
}

struct Recorder<'t> {
    trace: &'t mut Trace,
}

impl TraceSink for Recorder<'_> {
    fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
        self.trace.edges.insert((from, to, kind));
    }

    fn ext_call(&mut self, pc: u32, idx: u16, _esp: u32) {
        self.trace.ext_calls.insert(pc, idx);
    }
}

/// Run `img` once per input, merging all traces. Returns the merged trace
/// and the per-input run results (used to validate recompiled binaries
/// against the original, as the paper does with the ref datasets).
pub fn trace_image(img: &Image, inputs: &[Vec<u8>]) -> (Trace, Vec<RunResult>) {
    let mut trace = Trace::default();
    let mut results = Vec::new();
    for input in inputs {
        let mut m = Machine::new(img, input.clone());
        let r = m.run_with(&mut Recorder { trace: &mut trace });
        results.push(r);
    }
    (trace, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_minicc::{compile, Profile};

    #[test]
    fn merged_traces_cover_both_paths() {
        let src = r#"
            int f(int x) { if (x > 5) return 1; return 2; }
            int main() {
                int c = getchar();
                return f(c);
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (one_path, _) = trace_image(&img, &[b"\x01".to_vec()]);
        let (both_paths, results) = trace_image(&img, &[b"\x01".to_vec(), b"Z".to_vec()]);
        assert!(results.iter().all(|r| r.ok()));
        assert!(both_paths.edges.len() > one_path.edges.len());
        assert!(!both_paths.call_targets().is_empty());
        assert!(!both_paths.ext_calls.is_empty());
    }

    #[test]
    fn indirect_call_targets_recorded() {
        let src = r#"
            int a() { return 1; }
            int b() { return 2; }
            int main() {
                int t = getchar() == 'a' ? (int)&a : (int)&b;
                return __icall(t);
            }
        "#;
        let img = compile(src, &Profile::gcc12_o3()).unwrap();
        let (t, _) = trace_image(&img, &[b"a".to_vec(), b"b".to_vec()]);
        let a_addr = img.symbol("a").unwrap();
        let b_addr = img.symbol("b").unwrap();
        let calls = t.call_targets();
        assert!(calls.contains(&a_addr) && calls.contains(&b_addr));
    }
}
