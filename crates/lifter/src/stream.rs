//! Streaming trace→lift: overlap emulation and lifting wall-clock.
//!
//! The phased pipeline ([`crate::lift_image`]) traces every input to
//! completion, then builds the CFG, recovers functions and translates.
//! This module threads a bounded MPSC channel between the two halves:
//! each input's [`Machine`] run is a *producer* that pushes
//! sequence-stamped batches of `(from, to, kind)` transfers while it
//! executes, and a consumer drains them into an [`OnlineLift`] that
//! maintains the machine CFG incrementally (splitting blocks as new
//! targets land) and speculatively pre-translates when the queue runs
//! dry. Enabled with `WYT_STREAM=1`; queue capacity via
//! `WYT_STREAM_CAP` (default 64 batches).
//!
//! # Determinism
//!
//! The final [`Lifted`] is byte-identical to the phased path:
//!
//! * The merged [`Trace`] is a set — per-producer streams are
//!   deterministic, and set union is independent of batch interleaving.
//! * The incremental CFG converges to [`cfg::build_cfg`]'s output: block
//!   starts are exactly `entry ∪ traced targets` in both paths, block
//!   extents follow the same decode grid (a block decoded "too long"
//!   early is split when the interior target arrives), and `Jcc` /
//!   `JmpInd` ends are monotone functions of the edge set, updated on
//!   each relevant edge. Sealing debug-asserts equality against a fresh
//!   `build_cfg` of the merged trace.
//! * Translation is a pure function of `(image, cfg, funcs)`, so a
//!   speculative pre-translation is reused only when the CFG generation
//!   it was computed at is still current.
//!
//! Per-producer FIFO delivery (batches are flushed in execution order
//! through a FIFO queue) guarantees that when an out-edge `(from, …)`
//! arrives, a decoded block already ends with the terminator at `from`:
//! every executed pc is linearly reachable from an earlier in-stream
//! target (or the entry, decoded at init), and execution crossed no
//! terminator in between. Anything that breaks this — misaligned decode
//! grids, targets outside text, unmodeled terminators — freezes the
//! incremental build (`anomaly`) and seals through the phased
//! [`lift_from_trace`] instead, reproducing its exact result or error.
//!
//! # Sealing and fault hooks
//!
//! A `trace_fault` hook must see the *merged* trace before CFG
//! construction, so with a hook installed the consumer only merges
//! (`trace_only`) and sealing always takes the phased path after the
//! hook has run. The streamed artifacts are still byte-identical to
//! `lift_image_faulted` because both paths hand the same merged trace to
//! the same code.

use crate::cfg::{BlockEnd, MachBlock, MachCfg};
use crate::funcrec::{self, FuncMap};
use crate::trace::Trace;
use crate::translate::{self, LiftedMeta};
use crate::{lift_from_trace, LiftPipelineError, Lifted};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use wyt_emu::{EdgeCache, Machine, RunResult, TraceSink, TransferKind};
use wyt_ir::Module;
use wyt_isa::image::Image;
use wyt_isa::Inst;

/// Environment toggle for the streaming path.
pub const ENV: &str = "WYT_STREAM";
/// Environment override for the queue capacity (in batches).
pub const CAP_ENV: &str = "WYT_STREAM_CAP";
/// Transfer records per batch before a flush.
pub const BATCH_RECORDS: usize = 256;
/// Consumer speculates only after this many batches since the last run.
const SPEC_MIN_BATCHES: u64 = 4;

/// Process-wide override: -1 = follow the environment, 0 = forced off,
/// 1 = forced on. Tests that compare serial-vs-parallel obs streams pin
/// streaming off regardless of `WYT_STREAM`.
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Force streaming on/off for this process, or `None` to follow `ENV`.
pub fn set_override(on: Option<bool>) {
    OVERRIDE.store(
        match on {
            None => -1,
            Some(false) => 0,
            Some(true) => 1,
        },
        Ordering::Relaxed,
    );
}

/// Should [`crate::lift_image_faulted`] take the streaming path?
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => std::env::var(ENV).map(|v| !v.is_empty() && v != "0").unwrap_or(false),
    }
}

/// Queue capacity from `CAP_ENV`, clamped to `1..=65536`. Malformed
/// values warn once and fall back to the default.
fn capacity() -> usize {
    wyt_obs::env::env_usize(CAP_ENV, 64).clamp(1, 65536)
}

/// One flushed unit of trace records from a single producer.
#[derive(Debug)]
pub struct Batch {
    /// Producer (input) index.
    pub input: u32,
    /// Global flush sequence stamp (monotone across all producers;
    /// strictly increasing within one producer).
    pub seq: u64,
    /// Transfer records in execution order.
    pub transfers: Vec<(u32, u32, TransferKind)>,
    /// External-call bindings observed in this batch.
    pub ext_calls: Vec<(u32, u16)>,
}

#[derive(Default)]
struct QueueState {
    batches: VecDeque<Batch>,
    /// Producers that have not yet called [`Queue::close_producer`].
    open: usize,
    pushed: u64,
    stalls: u64,
    depth_max: usize,
}

/// Bounded MPSC batch channel (std-only: one mutex, two condvars).
///
/// Backpressure blocks producers; batches are never dropped. [`Queue::pop`]
/// returns `None` only once every producer has closed and the queue is
/// empty, so the consumer always drains the tail.
pub struct Queue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl Queue {
    /// A queue holding at most `cap` batches, with `producers` openers.
    pub fn new(cap: usize, producers: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState { open: producers, ..QueueState::default() }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocking push: waits for space (counting one stall per wait).
    pub fn push(&self, b: Batch) {
        let mut s = wyt_obs::lock_ok(&self.state);
        if s.batches.len() >= self.cap {
            s.stalls += 1;
            while s.batches.len() >= self.cap {
                s = self.not_full.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
        s.batches.push_back(b);
        s.pushed += 1;
        s.depth_max = s.depth_max.max(s.batches.len());
        self.not_empty.notify_one();
    }

    /// Non-blocking push; hands the batch back when full. The serial
    /// (helping) mode uses this so a full queue never deadlocks a
    /// single-threaded pipeline.
    pub fn try_push(&self, b: Batch) -> Result<(), Batch> {
        let mut s = wyt_obs::lock_ok(&self.state);
        if s.batches.len() >= self.cap {
            s.stalls += 1;
            return Err(b);
        }
        s.batches.push_back(b);
        s.pushed += 1;
        s.depth_max = s.depth_max.max(s.batches.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once all producers closed and the queue is dry.
    pub fn pop(&self) -> Option<Batch> {
        let mut s = wyt_obs::lock_ok(&self.state);
        loop {
            if let Some(b) = s.batches.pop_front() {
                self.not_full.notify_all();
                return Some(b);
            }
            if s.open == 0 {
                return None;
            }
            s = self.not_empty.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Batch> {
        let mut s = wyt_obs::lock_ok(&self.state);
        let b = s.batches.pop_front();
        if b.is_some() {
            self.not_full.notify_all();
        }
        b
    }

    /// One producer finished (flushed its tail).
    pub fn close_producer(&self) {
        let mut s = wyt_obs::lock_ok(&self.state);
        s.open = s.open.saturating_sub(1);
        if s.open == 0 {
            self.not_empty.notify_all();
        }
    }

    /// Idempotent emergency close — unblocks the consumer even if a
    /// producer unwound before closing (scope guards call this on drop).
    pub fn close_all(&self) {
        let mut s = wyt_obs::lock_ok(&self.state);
        s.open = 0;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queued depth.
    pub fn depth(&self) -> usize {
        wyt_obs::lock_ok(&self.state).batches.len()
    }

    /// Producers still open.
    pub fn open_producers(&self) -> usize {
        wyt_obs::lock_ok(&self.state).open
    }

    /// `(pushed, stalls, depth_max)` since construction.
    pub fn stats(&self) -> (u64, u64, usize) {
        let s = wyt_obs::lock_ok(&self.state);
        (s.pushed, s.stalls, s.depth_max)
    }
}

/// Per-producer tallies, returned to the caller thread so every
/// `lift.stream.*` counter is emitted there (consumer/pool threads must
/// not write interleaving-dependent values into the global sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct SinkStats {
    /// Records emitted (transfers + ext calls) after dedup.
    pub records: u64,
    /// Edges suppressed by the last-N [`EdgeCache`].
    pub dedup_hits: u64,
    /// Batches this producer applied itself in helping mode.
    pub helped: u64,
}

/// A [`TraceSink`] that batches records into a [`Queue`].
///
/// In parallel mode pushes block on backpressure (the consumer thread is
/// draining). In serial mode (`help` set) there is no consumer thread, so
/// a full queue makes the producer *help*: drain queued batches into the
/// shared [`OnlineLift`] itself, then retry.
pub struct StreamSink<'q, 'i> {
    q: &'q Queue,
    help: Option<&'q Mutex<OnlineLift<'i>>>,
    input: u32,
    seq: &'q AtomicU64,
    cache: EdgeCache,
    transfers: Vec<(u32, u32, TransferKind)>,
    ext_calls: Vec<(u32, u16)>,
    stats: SinkStats,
}

impl<'q, 'i> StreamSink<'q, 'i> {
    /// A sink for producer `input`, helping via `help` when serial.
    pub fn new(
        q: &'q Queue,
        help: Option<&'q Mutex<OnlineLift<'i>>>,
        input: u32,
        seq: &'q AtomicU64,
    ) -> StreamSink<'q, 'i> {
        StreamSink {
            q,
            help,
            input,
            seq,
            cache: EdgeCache::default(),
            transfers: Vec::with_capacity(BATCH_RECORDS),
            ext_calls: Vec::new(),
            stats: SinkStats::default(),
        }
    }

    fn flush(&mut self) {
        if self.transfers.is_empty() && self.ext_calls.is_empty() {
            return;
        }
        let mut batch = Batch {
            input: self.input,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            transfers: std::mem::take(&mut self.transfers),
            ext_calls: std::mem::take(&mut self.ext_calls),
        };
        self.transfers.reserve(BATCH_RECORDS);
        match self.help {
            None => self.q.push(batch),
            Some(lift) => loop {
                match self.q.try_push(batch) {
                    Ok(()) => break,
                    Err(back) => {
                        batch = back;
                        let mut l = wyt_obs::lock_ok(lift);
                        while let Some(queued) = self.q.try_pop() {
                            l.apply(queued);
                            self.stats.helped += 1;
                        }
                    }
                }
            },
        }
    }

    /// Flush the tail, close this producer and return its tallies.
    pub fn finish(mut self) -> SinkStats {
        self.flush();
        self.q.close_producer();
        self.stats.dedup_hits = self.cache.hits();
        self.stats
    }
}

impl TraceSink for StreamSink<'_, '_> {
    fn transfer(&mut self, from: u32, to: u32, kind: TransferKind) {
        if !self.cache.note(from, to, kind) {
            return;
        }
        self.transfers.push((from, to, kind));
        self.stats.records += 1;
        if self.transfers.len() + self.ext_calls.len() >= BATCH_RECORDS {
            self.flush();
        }
    }

    fn ext_call(&mut self, pc: u32, idx: u16, _esp: u32) {
        self.ext_calls.push((pc, idx));
        self.stats.records += 1;
        if self.transfers.len() + self.ext_calls.len() >= BATCH_RECORDS {
            self.flush();
        }
    }
}

struct Speculation {
    generation: u64,
    funcs: FuncMap,
    module: Module,
    meta: LiftedMeta,
}

/// Incremental trace merge + CFG construction, fed batch by batch.
///
/// Maintains the invariant that (absent `anomaly`) the block map equals
/// what [`cfg::build_cfg`] would build from the trace merged so far.
pub struct OnlineLift<'i> {
    img: &'i Image,
    trace: Trace,
    blocks: BTreeMap<u32, MachBlock>,
    call_targets: BTreeSet<u32>,
    /// Incremental construction hit something it cannot model; the block
    /// map is frozen and sealing falls back to the phased path.
    anomaly: bool,
    /// Fault hook installed: merge the trace only, never build blocks.
    trace_only: bool,
    /// Bumped on every structural CFG change; keys speculation reuse.
    generation: u64,
    batches: u64,
    batches_at_spec: u64,
    splits: u64,
    spec_runs: u64,
    spec: Option<Speculation>,
    /// Highest batch seq applied per producer (FIFO audit).
    last_seq: BTreeMap<u32, u64>,
}

impl<'i> OnlineLift<'i> {
    /// An empty online lift for `img`. Decodes the entry block up front
    /// (unless `trace_only`) so the FIFO coverage argument has its base
    /// case.
    pub fn new(img: &'i Image, trace_only: bool) -> OnlineLift<'i> {
        let mut l = OnlineLift {
            img,
            trace: Trace::default(),
            blocks: BTreeMap::new(),
            call_targets: BTreeSet::new(),
            anomaly: false,
            trace_only,
            generation: 0,
            batches: 0,
            batches_at_spec: 0,
            splits: 0,
            spec_runs: 0,
            spec: None,
            last_seq: BTreeMap::new(),
        };
        if !trace_only {
            l.decode_block(img.entry);
        }
        l
    }

    /// Merge one batch into the trace and (unless `trace_only`) the CFG.
    pub fn apply(&mut self, b: Batch) {
        self.batches += 1;
        if let Some(prev) = self.last_seq.insert(b.input, b.seq) {
            debug_assert!(prev < b.seq, "producer {} batches reordered", b.input);
        }
        for (pc, idx) in b.ext_calls {
            self.trace.ext_calls.insert(pc, idx);
        }
        for (from, to, kind) in b.transfers {
            if self.trace.edges.insert((from, to, kind)) && !self.trace_only {
                self.integrate(from, to, kind);
            }
        }
    }

    /// Fold one *new* edge into the block map.
    fn integrate(&mut self, from: u32, to: u32, kind: TransferKind) {
        if self.anomaly {
            return;
        }
        if !self.img.contains_code(to) {
            // build_cfg would return TargetOutsideText; the fallback does.
            self.anomaly = true;
            return;
        }
        if kind.is_call() && self.call_targets.insert(to) {
            self.generation += 1;
        }
        self.ensure_start(to);
        if self.anomaly {
            return;
        }
        self.update_end(from, to, kind);
    }

    /// Make `at` a block start: split the covering block at an
    /// instruction boundary, or decode a fresh block. A target off the
    /// established decode grid is an anomaly.
    fn ensure_start(&mut self, at: u32) {
        if self.blocks.contains_key(&at) {
            return;
        }
        if let Some((&baddr, b)) = self.blocks.range(..at).next_back() {
            match b.insts.binary_search_by_key(&at, |&(pc, _)| pc) {
                Ok(i) => {
                    self.split(baddr, i, at);
                    return;
                }
                // Strictly between two instruction starts of the
                // covering block: misaligned decode grid.
                Err(pos) if pos < b.insts.len() => {
                    self.anomaly = true;
                    return;
                }
                Err(_) => {
                    // Past the last instruction start — inside its bytes?
                    // INVARIANT: decode_block inserts only blocks with at
                    // least one instruction, and split keeps both halves
                    // non-empty, so `insts` is never empty here.
                    let (lpc, _) = *b.insts.last().expect("blocks are never empty");
                    if let Ok((_, len)) = self.img.decode_at(lpc) {
                        if u64::from(at) < u64::from(lpc) + len as u64 {
                            self.anomaly = true;
                            return;
                        }
                    }
                }
            }
        }
        self.decode_block(at);
    }

    /// Split the block at `baddr` so its instruction `i` (address `at`)
    /// starts a new block; the front falls into it.
    fn split(&mut self, baddr: u32, i: usize, at: u32) {
        debug_assert!(i >= 1, "split index 0 would duplicate the block");
        // INVARIANT: `baddr` was just read out of `self.blocks` by the
        // caller's range lookup; nothing removes it in between.
        let mut front = self.blocks.remove(&baddr).expect("covering block exists");
        let tail_insts = front.insts.split_off(i);
        let tail_end = std::mem::replace(&mut front.end, BlockEnd::FallInto(at));
        self.blocks.insert(baddr, front);
        self.blocks.insert(at, MachBlock { addr: at, insts: tail_insts, end: tail_end });
        self.splits += 1;
        self.generation += 1;
    }

    /// Decode a fresh block from `start`, stopping at a terminator or an
    /// existing block start — [`cfg::build_cfg`]'s linear walk against
    /// the *current* start set (later starts split it back apart).
    fn decode_block(&mut self, start: u32) {
        let mut insts = Vec::new();
        let mut pc = start;
        let end = loop {
            let Ok((inst, len)) = self.img.decode_at(pc) else {
                self.anomaly = true;
                return;
            };
            let next = pc.wrapping_add(len as u32);
            // A pc that wraps the address space (text ending at 4 GiB)
            // is off any sane decode grid; freeze rather than loop.
            if next <= pc {
                self.anomaly = true;
                return;
            }
            // An existing block start strictly inside this instruction's
            // bytes means two decode grids overlap; freeze.
            if self.blocks.range(pc + 1..next).next().is_some() {
                self.anomaly = true;
                return;
            }
            if inst.is_terminator() {
                insts.push((pc, inst));
                break match inst {
                    Inst::Jmp { target } => BlockEnd::Jmp(target),
                    Inst::Jcc { target, .. } => BlockEnd::Jcc {
                        taken: self
                            .trace
                            .edges
                            .contains(&(pc, target, TransferKind::CondTaken))
                            .then_some(target),
                        fall: self
                            .trace
                            .edges
                            .contains(&(pc, next, TransferKind::CondFall))
                            .then_some(next),
                        taken_addr: target,
                        fall_addr: next,
                    },
                    Inst::JmpInd { .. } => BlockEnd::JmpInd(
                        self.trace.targets_from_quiet(pc, |k| k == TransferKind::IndJump),
                    ),
                    Inst::Ret { pop } => BlockEnd::Ret(pop),
                    Inst::Halt => BlockEnd::Halt,
                    Inst::Trap { code } => BlockEnd::Trap(code),
                    _ => {
                        self.anomaly = true;
                        return;
                    }
                };
            }
            insts.push((pc, inst));
            if self.blocks.contains_key(&next) {
                break BlockEnd::FallInto(next);
            }
            pc = next;
        };
        self.blocks.insert(start, MachBlock { addr: start, insts, end });
        self.generation += 1;
    }

    /// Reflect an out-edge in the terminator state of its source block.
    /// Only `CondTaken`/`CondFall`/`IndJump` edges can change a decoded
    /// block's end; calls, rets and direct jumps never do.
    fn update_end(&mut self, from: u32, to: u32, kind: TransferKind) {
        if !matches!(kind, TransferKind::CondTaken | TransferKind::CondFall | TransferKind::IndJump)
        {
            return;
        }
        let new_ind = (kind == TransferKind::IndJump)
            .then(|| self.trace.targets_from_quiet(from, |k| k == TransferKind::IndJump));
        let mut bad = false;
        let mut bumped = false;
        match self.blocks.range_mut(..=from).next_back() {
            Some((_, b)) if b.insts.last().map(|&(pc, _)| pc) == Some(from) => {
                match (&mut b.end, kind) {
                    (BlockEnd::Jcc { taken, taken_addr, .. }, TransferKind::CondTaken)
                        if *taken_addr == to =>
                    {
                        if taken.is_none() {
                            *taken = Some(to);
                            bumped = true;
                        }
                    }
                    (BlockEnd::Jcc { fall, fall_addr, .. }, TransferKind::CondFall)
                        if *fall_addr == to =>
                    {
                        if fall.is_none() {
                            *fall = Some(to);
                            bumped = true;
                        }
                    }
                    (BlockEnd::JmpInd(ts), TransferKind::IndJump) => {
                        // INVARIANT: `new_ind` is populated earlier in
                        // this function for every IndJump edge.
                        let new = new_ind.expect("computed for IndJump above");
                        if *ts != new {
                            *ts = new;
                            bumped = true;
                        }
                    }
                    _ => bad = true,
                }
            }
            // The FIFO coverage argument says a clean stream always
            // delivers the edge into a block before the edge out of it;
            // anything else is off-grid or out of order.
            _ => bad = true,
        }
        if bad {
            self.anomaly = true;
        }
        if bumped {
            self.generation += 1;
        }
    }

    /// Pre-translate the current CFG so sealing can reuse the result if
    /// no further structural change lands. Errors are left for [`Self::seal`]
    /// to surface through the normal path. Returns whether a new
    /// speculation was computed.
    pub fn speculate(&mut self) -> bool {
        if self.anomaly || self.trace_only {
            return false;
        }
        if self.spec.as_ref().is_some_and(|s| s.generation == self.generation) {
            return false;
        }
        let cfg = MachCfg {
            blocks: self.blocks.clone(),
            call_targets: self.call_targets.clone(),
            entry: self.img.entry,
        };
        let Ok(funcs) = funcrec::recover_functions(&cfg) else {
            return false;
        };
        let Ok((module, meta)) = translate::translate(self.img, &cfg, &funcs) else {
            return false;
        };
        self.spec = Some(Speculation { generation: self.generation, funcs, module, meta });
        self.batches_at_spec = self.batches;
        self.spec_runs += 1;
        true
    }

    /// Has enough new work landed since the last speculation to justify
    /// another one?
    fn spec_due(&self) -> bool {
        self.batches - self.batches_at_spec >= SPEC_MIN_BATCHES
    }

    fn stats(&self) -> (u64, u64, bool) {
        (self.splits, self.spec_runs, self.anomaly)
    }

    /// Finalize: with a fault hook or after an anomaly, run the hook on
    /// the merged trace and take the phased path (identical results and
    /// errors); otherwise assemble the incrementally built CFG, reusing
    /// the speculative translation when still current.
    pub fn seal(
        self,
        trace_fault: Option<&(dyn Fn(&mut Trace) + Sync)>,
        baseline_runs: Vec<RunResult>,
    ) -> Result<Lifted, LiftPipelineError> {
        let OnlineLift {
            img,
            mut trace,
            blocks,
            call_targets,
            anomaly,
            trace_only,
            generation,
            spec,
            ..
        } = self;
        if trace_only || anomaly {
            wyt_obs::counter("lift.stream.fallback", 1);
            if let Some(fault) = trace_fault {
                fault(&mut trace);
            }
            return lift_from_trace(img, trace, baseline_runs);
        }
        let cfg = MachCfg { blocks, call_targets, entry: img.entry };
        #[cfg(debug_assertions)]
        match crate::cfg::build_cfg(img, &trace) {
            Ok(rebuilt) => {
                debug_assert!(cfg == rebuilt, "incremental CFG diverged from build_cfg")
            }
            // Debug-build-only self check (see cfg(debug_assertions)
            // above): release ingestion never reaches this panic.
            Err(e) => panic!("build_cfg failed where the incremental build succeeded: {e}"),
        }
        let (funcs, module, meta) = match spec {
            Some(s) if s.generation == generation => {
                wyt_obs::counter("lift.stream.spec_reuse", 1);
                (s.funcs, s.module, s.meta)
            }
            _ => {
                let funcs = {
                    let _s = wyt_obs::Span::enter("lift.funcrec");
                    funcrec::recover_functions(&cfg).map_err(LiftPipelineError::FuncRec)?
                };
                let (module, meta) = {
                    let _s = wyt_obs::Span::enter("lift.translate");
                    translate::translate(img, &cfg, &funcs).map_err(LiftPipelineError::Translate)?
                };
                (funcs, module, meta)
            }
        };
        Ok(Lifted { module, meta, trace, cfg, funcs, baseline_runs })
    }
}

/// Unblocks the consumer if a producer unwinds before closing.
struct CloseGuard<'q>(&'q Queue);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.close_all();
    }
}

/// The streaming analogue of [`crate::lift_image_faulted`]: trace all
/// `inputs` as concurrent producers while a consumer incrementally lifts,
/// then seal. Byte-identical to the phased path (see module docs).
///
/// # Errors
/// Returns the same [`LiftPipelineError`]s the phased path would.
pub fn stream_lift(
    img: &Image,
    inputs: &[Vec<u8>],
    trace_fault: Option<&(dyn Fn(&mut Trace) + Sync)>,
) -> Result<Lifted, LiftPipelineError> {
    let _span = wyt_obs::Span::enter("lift.stream");
    let t0 = wyt_obs::mono_ns();
    let q = Queue::new(capacity(), inputs.len());
    let seq = AtomicU64::new(0);
    let lift = Mutex::new(OnlineLift::new(img, trace_fault.is_some()));
    let par = wyt_par::parallel();
    let produce_ns = AtomicU64::new(0);

    let outputs = wyt_par::overlap(
        || {
            let _close = CloseGuard(&q);
            let out = wyt_par::par_indexed(inputs.len(), |i| {
                let _t = wyt_obs::trace::guard("lift.stream.trace");
                let mut sink = StreamSink::new(&q, (!par).then_some(&lift), i as u32, &seq);
                let r = Machine::new(img, inputs[i].clone()).run_with(&mut sink);
                (r, sink.finish())
            });
            produce_ns.store(wyt_obs::mono_ns().saturating_sub(t0), Ordering::Relaxed);
            out
        },
        || {
            let _t = wyt_obs::trace::guard("lift.stream.drain");
            while let Some(b) = q.pop() {
                let mut l = wyt_obs::lock_ok(&lift);
                {
                    let _t = wyt_obs::trace::guard("lift.stream.apply");
                    l.apply(b);
                }
                // Queue ran dry but producers are still running: spend the
                // idle time pre-translating. Local obs, discarded — the
                // consumer must not write interleaving-dependent counters
                // into the global sink.
                if q.depth() == 0 && q.open_producers() > 0 && l.spec_due() {
                    let _t = wyt_obs::trace::guard("lift.stream.speculate");
                    let _ = wyt_obs::with_local(|| l.speculate());
                }
            }
        },
    );

    let (results, sink_stats): (Vec<RunResult>, Vec<SinkStats>) = outputs.into_iter().unzip();
    let (pushed, stalls, depth_max) = q.stats();
    let lift = lift.into_inner().unwrap_or_else(|e| e.into_inner());
    let (splits, spec_runs, anomaly) = lift.stats();
    let total_ns = wyt_obs::mono_ns().saturating_sub(t0).max(1);
    // All counters land on the caller thread, after the overlap, so the
    // obs stream stays deterministic under `with_local` capture.
    wyt_obs::counter("lift.stream.batches", pushed);
    wyt_obs::counter("lift.stream.records", sink_stats.iter().map(|s| s.records).sum());
    wyt_obs::counter("lift.stream.dedup_hits", sink_stats.iter().map(|s| s.dedup_hits).sum());
    wyt_obs::counter("lift.stream.helped", sink_stats.iter().map(|s| s.helped).sum());
    wyt_obs::counter("lift.stream.stalls", stalls);
    wyt_obs::counter("lift.stream.depth_max", depth_max as u64);
    wyt_obs::counter("lift.stream.splits", splits);
    wyt_obs::counter("lift.stream.spec_runs", spec_runs);
    wyt_obs::counter("lift.stream.anomalies", anomaly as u64);
    wyt_obs::counter(
        "lift.stream.overlap_pct",
        (100 * produce_ns.load(Ordering::Relaxed) / total_ns).min(100),
    );
    lift.seal(trace_fault, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_minicc::{compile, Profile};

    #[test]
    fn queue_blocks_producers_and_never_drops() {
        let q = Queue::new(2, 1);
        let received = std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..10u64 {
                    q.push(Batch { input: 0, seq: i, transfers: vec![], ext_calls: vec![] });
                }
                q.close_producer();
            });
            let mut seqs = Vec::new();
            while let Some(b) = q.pop() {
                // Slow consumer so the producer outruns the capacity.
                std::thread::sleep(std::time::Duration::from_millis(1));
                seqs.push(b.seq);
            }
            seqs
        });
        assert_eq!(received, (0..10).collect::<Vec<_>>(), "FIFO, nothing dropped");
        let (pushed, stalls, depth_max) = q.stats();
        assert_eq!(pushed, 10);
        assert!(stalls > 0, "a capacity-2 queue must have stalled the producer");
        assert!(depth_max <= 2, "bounded queue exceeded its capacity");
    }

    #[test]
    fn capacity_one_queue_round_trips() {
        let q = Queue::new(1, 1);
        q.push(Batch { input: 0, seq: 0, transfers: vec![], ext_calls: vec![] });
        assert!(matches!(
            q.try_push(Batch { input: 0, seq: 1, transfers: vec![], ext_calls: vec![] }),
            Err(_)
        ));
        assert_eq!(q.try_pop().unwrap().seq, 0);
        assert!(q.try_pop().is_none());
        q.close_producer();
        assert!(q.pop().is_none(), "closed empty queue must not block");
    }

    #[test]
    fn pop_drains_tail_after_close_all() {
        let q = Queue::new(8, 3);
        q.push(Batch { input: 0, seq: 0, transfers: vec![], ext_calls: vec![] });
        q.push(Batch { input: 1, seq: 1, transfers: vec![], ext_calls: vec![] });
        q.close_all();
        q.close_all(); // idempotent
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    /// Feed a phased trace batch-by-batch through OnlineLift, speculate,
    /// and check the sealed result reuses the speculation byte-for-byte.
    #[test]
    fn speculation_reuse_is_byte_identical() {
        let src = r#"
            int helper(int x) { return x * 3; }
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 6; i++) acc += helper(i);
                return acc;
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, runs) = crate::trace::trace_image(&img, &[vec![]]);
        let phased = lift_from_trace(&img, trace.clone(), runs.clone()).unwrap();

        let mut ol = OnlineLift::new(&img, false);
        for (i, edge) in trace.edges.iter().enumerate() {
            ol.apply(Batch { input: 0, seq: i as u64, transfers: vec![*edge], ext_calls: vec![] });
        }
        ol.apply(Batch {
            input: 0,
            seq: trace.edges.len() as u64,
            transfers: vec![],
            ext_calls: trace.ext_calls.iter().map(|(pc, idx)| (*pc, *idx)).collect(),
        });
        assert!(ol.speculate(), "full CFG should pre-translate");
        assert!(!ol.speculate(), "unchanged generation must not re-speculate");
        let sealed = ol.seal(None, runs).unwrap();
        assert_eq!(sealed.trace, phased.trace);
        assert_eq!(sealed.cfg, phased.cfg);
        assert_eq!(sealed.funcs, phased.funcs);
        assert_eq!(format!("{:?}", sealed.module), format!("{:?}", phased.module));
        assert_eq!(format!("{:?}", sealed.meta), format!("{:?}", phased.meta));
    }

    /// Edges applied in reverse order still converge to the same CFG:
    /// update_end anomalies freeze the build and the phased fallback
    /// produces the identical artifact set.
    #[test]
    fn hostile_edge_order_falls_back_to_phased() {
        let src = r#"
            int main() {
                int c = getchar();
                if (c == 'x') return 1;
                return 2;
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, runs) = crate::trace::trace_image(&img, &[b"q".to_vec()]);
        let phased = lift_from_trace(&img, trace.clone(), runs.clone()).unwrap();

        let mut ol = OnlineLift::new(&img, false);
        let edges: Vec<_> = trace.edges.iter().rev().copied().collect();
        ol.apply(Batch { input: 0, seq: 0, transfers: edges, ext_calls: vec![] });
        ol.apply(Batch {
            input: 0,
            seq: 1,
            transfers: vec![],
            ext_calls: trace.ext_calls.iter().map(|(pc, idx)| (*pc, *idx)).collect(),
        });
        let sealed = ol.seal(None, runs).unwrap();
        assert_eq!(sealed.cfg, phased.cfg);
        assert_eq!(sealed.funcs, phased.funcs);
        assert_eq!(format!("{:?}", sealed.module), format!("{:?}", phased.module));
    }

    #[test]
    fn trace_only_mode_builds_no_blocks_and_seals_phased() {
        let src = "int main() { return 7; }";
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, runs) = crate::trace::trace_image(&img, &[vec![]]);
        let mut ol = OnlineLift::new(&img, true);
        ol.apply(Batch {
            input: 0,
            seq: 0,
            transfers: trace.edges.iter().copied().collect(),
            ext_calls: trace.ext_calls.iter().map(|(pc, idx)| (*pc, *idx)).collect(),
        });
        assert!(ol.blocks.is_empty());
        let sealed = ol.seal(None, runs.clone()).unwrap();
        let phased = lift_from_trace(&img, trace, runs).unwrap();
        assert_eq!(sealed.cfg, phased.cfg);
    }
}
