//! Machine code → IR translation using the instruction-emulation approach
//! of the paper's §2.1.
//!
//! The lifted module mirrors Fig. 1's process image:
//! - virtual CPU registers are 4-byte globals at fixed addresses
//!   ([`VCPU_BASE`]); every machine register read loads the cell and every
//!   write stores it back (redundancy is cleaned up later, exactly as the
//!   paper describes);
//! - the original call stack lives in the *emulated stack* global at
//!   [`EMU_STACK_BASE`]; push/pop/call/ret manipulate the virtual `esp`
//!   cell and the byte array;
//! - the original data segment is a fixed-address global so absolute
//!   pointers embedded in the code stay valid;
//! - calls to recovered functions become IR calls (the ret-address slot is
//!   still reserved on the emulated stack, but its contents are never
//!   read); tail calls become call+return; indirect control flow is
//!   restricted to traced targets (untraced ⇒ trap).
//!
//! Flags are translated symbolically: a compare/test records its operands
//! and the consuming `jcc`/`setcc` becomes an `icmp`. This supports the
//! flag patterns compilers emit (flag-setter and consumer in one block).

use crate::cfg::{BlockEnd, MachCfg};
use crate::funcrec::FuncMap;
use std::collections::BTreeMap;
use std::fmt;
use wyt_ir::{
    BinOp, BlockId, CmpOp, FuncId, Function, Global, GlobalKind, InstKind, Module, Term, Ty, Val,
};
use wyt_isa::image::Image;
use wyt_isa::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size, TrapCode};

/// Base address of the virtual CPU register cells (8 GPRs + the two
/// halves of the `vmov` register).
pub const VCPU_BASE: u32 = 0x0280_0000;
/// Base address of the emulated stack global.
pub const EMU_STACK_BASE: u32 = 0x0500_0000;
/// Size of the emulated stack.
pub const EMU_STACK_SIZE: u32 = 1 << 20;
/// Initial virtual `esp`: top of the emulated stack with a slot reserved
/// for the never-read sentinel return address.
pub const EMU_STACK_TOP: u32 = EMU_STACK_BASE + EMU_STACK_SIZE - 16;

/// Address of the virtual register cell for `r`.
pub fn vcpu_reg_addr(r: Reg) -> u32 {
    VCPU_BASE + 4 * r.index() as u32
}

/// Address of half `i` (0 = low, 1 = high) of the virtual vector register.
pub fn vcpu_vreg_addr(i: u32) -> u32 {
    VCPU_BASE + 32 + 4 * i
}

/// `true` if `addr` is one of the virtual CPU register cells.
pub fn is_vcpu_addr(addr: u32) -> bool {
    (VCPU_BASE..VCPU_BASE + 40).contains(&addr)
}

/// `true` if `addr` falls inside the emulated stack.
pub fn is_emustack_addr(addr: u32) -> bool {
    (EMU_STACK_BASE..EMU_STACK_BASE + EMU_STACK_SIZE).contains(&addr)
}

/// Metadata about the lifted module the refinement passes need.
#[derive(Debug, Clone)]
pub struct LiftedMeta {
    /// Function entry address → IR function.
    pub func_by_addr: BTreeMap<u32, FuncId>,
    /// The synthetic `_lifted_start` wrapper.
    pub start: FuncId,
    /// `ret pop` immediate per lifted function (needed by the sp0 folding
    /// pass to track `esp` across calls).
    pub ret_pop: BTreeMap<FuncId, u16>,
    /// Import-index mapping from the original image into the module's
    /// extern table.
    pub ext_map: Vec<u16>,
}

/// A translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// A conditional consumer executed without a flag-setting instruction
    /// in the same block.
    NoFlags(u32),
    /// A flag pattern we cannot express (never emitted by compilers).
    BadFlagUse(u32, Cc),
    /// A direct call targets an address that is not a recovered function.
    CallToNonFunction(u32, u32),
    /// `leave`/`pop esp`-style manipulation we do not model.
    Unsupported(u32, &'static str),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::NoFlags(pc) => write!(f, "jcc/setcc without flags at {pc:#x}"),
            LiftError::BadFlagUse(pc, cc) => write!(f, "unsupported flag use {cc} at {pc:#x}"),
            LiftError::CallToNonFunction(pc, t) => {
                write!(f, "call at {pc:#x} to non-function {t:#x}")
            }
            LiftError::Unsupported(pc, what) => write!(f, "unsupported {what} at {pc:#x}"),
        }
    }
}

impl std::error::Error for LiftError {}

#[derive(Debug, Clone)]
enum FlagState {
    None,
    /// Flags from `a - b` (cmp/sub/neg).
    Cmp {
        a: Val,
        b: Val,
        size: Size,
    },
    /// Flags from a logical op / shift result `r` (cf = of = 0).
    Logic {
        r: Val,
        size: Size,
    },
    /// Flags from an addition result `r` (only zf/sf usable).
    Add {
        r: Val,
        size: Size,
    },
}

struct FnTranslator<'a> {
    f: Function,
    module_externs: &'a mut Vec<String>,
    ext_map: &'a [u16],
    cur: BlockId,
    flags: FlagState,
    /// machine block addr -> IR block
    block_map: BTreeMap<u32, BlockId>,
    /// Guard for untraced direct branch / fall-through targets.
    trap_block: BlockId,
    /// Guard for untraced indirect-jump targets.
    trap_ind_block: BlockId,
}

impl<'a> FnTranslator<'a> {
    fn emit(&mut self, kind: InstKind) -> Val {
        Val::Inst(self.f.push_inst(self.cur, kind))
    }

    fn load_reg(&mut self, r: Reg) -> Val {
        self.emit(InstKind::Load { ty: Ty::I32, addr: Val::Const(vcpu_reg_addr(r) as i32) })
    }

    fn store_reg(&mut self, r: Reg, v: Val) {
        self.emit(InstKind::Store {
            ty: Ty::I32,
            addr: Val::Const(vcpu_reg_addr(r) as i32),
            val: v,
        });
    }

    fn bin(&mut self, op: BinOp, a: Val, b: Val) -> Val {
        self.emit(InstKind::Bin { op, a, b })
    }

    fn icmp(&mut self, op: CmpOp, a: Val, b: Val) -> Val {
        self.emit(InstKind::Cmp { op, a, b })
    }

    /// Effective address of a memory operand.
    fn ea(&mut self, m: &Mem) -> Val {
        let mut addr = match m.base {
            Some(b) => {
                let v = self.load_reg(b);
                if m.disp != 0 {
                    self.bin(BinOp::Add, v, Val::Const(m.disp))
                } else {
                    v
                }
            }
            None => Val::Const(m.disp),
        };
        if let Some((i, s)) = m.index {
            let iv = self.load_reg(i);
            let scaled = if s == 1 { iv } else { self.bin(BinOp::Mul, iv, Val::Const(s as i32)) };
            addr = self.bin(BinOp::Add, addr, scaled);
        }
        addr
    }

    /// Read an operand, zero-extended to 32 bits.
    fn read(&mut self, op: &Operand, size: Size) -> Val {
        match op {
            Operand::Imm(i) => Val::Const((*i as u32 & size.mask()) as i32),
            Operand::Reg(r) => {
                let v = self.load_reg(*r);
                match size {
                    Size::D => v,
                    Size::W => self.emit(InstKind::Ext { signed: false, from: Ty::I16, v }),
                    Size::B => self.emit(InstKind::Ext { signed: false, from: Ty::I8, v }),
                }
            }
            Operand::Mem(m) => {
                let addr = self.ea(m);
                let ty = size_to_ty(size);
                self.emit(InstKind::Load { ty, addr })
            }
        }
    }

    /// Write an operand with sub-register merge semantics.
    fn write(&mut self, op: &Operand, v: Val, size: Size) {
        match op {
            Operand::Reg(r) => match size {
                Size::D => self.store_reg(*r, v),
                _ => {
                    // Stale upper bits: old & !mask | v & mask — the false
                    // dependency of §4.2.3, reproduced faithfully.
                    let old = self.load_reg(*r);
                    let kept = self.bin(BinOp::And, old, Val::Const(!(size.mask() as i32)));
                    let low = self.bin(BinOp::And, v, Val::Const(size.mask() as i32));
                    let merged = self.bin(BinOp::Or, kept, low);
                    self.store_reg(*r, merged);
                }
            },
            Operand::Mem(m) => {
                let addr = self.ea(m);
                self.emit(InstKind::Store { ty: size_to_ty(size), addr, val: v });
            }
            // INVARIANT: the decoder rejects immediate destinations
            // (`DecodeError::BadField("destination")`), and every inst
            // reaching the translator came through `Image::decode_at`,
            // so this arm cannot fire on any input, hostile or not.
            Operand::Imm(_) => unreachable!("write to immediate"),
        }
    }

    /// Translate a condition code into a 0/1 value from the live flags.
    fn cond_value(&mut self, pc: u32, cc: Cc) -> Result<Val, LiftError> {
        match self.flags.clone() {
            FlagState::None => Err(LiftError::NoFlags(pc)),
            FlagState::Cmp { a, b, size } => {
                let signed = matches!(cc, Cc::L | Cc::Le | Cc::G | Cc::Ge);
                let (a, b) = if size == Size::D {
                    (a, b)
                } else {
                    let ty = size_to_ty(size);
                    let ea = self.emit(InstKind::Ext { signed, from: ty, v: a });
                    let eb = self.emit(InstKind::Ext { signed, from: ty, v: b });
                    (ea, eb)
                };
                let op = match cc {
                    Cc::E => CmpOp::Eq,
                    Cc::Ne => CmpOp::Ne,
                    Cc::L => CmpOp::SLt,
                    Cc::Le => CmpOp::SLe,
                    Cc::G => CmpOp::SGt,
                    Cc::Ge => CmpOp::SGe,
                    Cc::B => CmpOp::ULt,
                    Cc::Be => CmpOp::ULe,
                    Cc::A => CmpOp::UGt,
                    Cc::Ae => CmpOp::UGe,
                    Cc::S | Cc::Ns => return Err(LiftError::BadFlagUse(pc, cc)),
                };
                Ok(self.icmp(op, a, b))
            }
            FlagState::Logic { r, size } | FlagState::Add { r, size } => {
                let logic = matches!(self.flags, FlagState::Logic { .. });
                let rs = if size == Size::D {
                    r
                } else {
                    self.emit(InstKind::Ext { signed: true, from: size_to_ty(size), v: r })
                };
                let op = match cc {
                    Cc::E => CmpOp::Eq,
                    Cc::Ne => CmpOp::Ne,
                    Cc::S => CmpOp::SLt,
                    Cc::Ns => CmpOp::SGe,
                    // cf = of = 0 for logical ops.
                    Cc::L if logic => CmpOp::SLt,
                    Cc::Ge if logic => CmpOp::SGe,
                    Cc::Le if logic => CmpOp::SLe,
                    Cc::G if logic => CmpOp::SGt,
                    Cc::B if logic => return Ok(Val::Const(0)),
                    Cc::Ae if logic => return Ok(Val::Const(1)),
                    Cc::Be if logic => CmpOp::Eq,
                    Cc::A if logic => CmpOp::Ne,
                    other => return Err(LiftError::BadFlagUse(pc, other)),
                };
                Ok(self.icmp(op, rs, Val::Const(0)))
            }
        }
    }

    fn intern_ext(&mut self, img_idx: u16) -> u16 {
        self.ext_map[img_idx as usize]
    }

    /// IR block for a machine target, or the trap block if untraced.
    fn target_block(&self, addr: u32) -> BlockId {
        self.block_map.get(&addr).copied().unwrap_or(self.trap_block)
    }

    fn extern_index_of(&mut self, name: &str) -> u16 {
        if let Some(i) = self.module_externs.iter().position(|e| e == name) {
            return i as u16;
        }
        self.module_externs.push(name.to_string());
        self.module_externs.len() as u16 - 1
    }
}

fn size_to_ty(size: Size) -> Ty {
    match size {
        Size::B => Ty::I8,
        Size::W => Ty::I16,
        Size::D => Ty::I32,
    }
}

/// Translate a traced, function-recovered image into a lifted module.
///
/// # Errors
/// Returns a [`LiftError`] for machine idioms outside the supported set
/// (the paper's §7.1 compatibility assumptions).
pub fn translate(
    img: &Image,
    cfg: &MachCfg,
    funcs: &FuncMap,
) -> Result<(Module, LiftedMeta), LiftError> {
    let mut module = Module::new();

    // Globals: vCPU cells, emulated stack, original data.
    for r in Reg::ALL {
        module.add_global(Global {
            name: format!("vcpu.{r}"),
            size: 4,
            init: Vec::new(),
            fixed_addr: Some(vcpu_reg_addr(r)),
            kind: GlobalKind::VcpuReg(r.index() as u8),
        });
    }
    for i in 0..2 {
        module.add_global(Global {
            name: format!("vcpu.v0{}", if i == 0 { "lo" } else { "hi" }),
            size: 4,
            init: Vec::new(),
            fixed_addr: Some(vcpu_vreg_addr(i)),
            kind: GlobalKind::VcpuReg(8 + i as u8),
        });
    }
    module.add_global(Global {
        name: "__emustack".into(),
        size: EMU_STACK_SIZE,
        init: Vec::new(),
        fixed_addr: Some(EMU_STACK_BASE),
        kind: GlobalKind::EmuStack,
    });
    module.add_global(Global {
        name: "__orig_data".into(),
        size: (img.data.len() as u32 + img.bss_size).max(1),
        init: img.data.clone(),
        fixed_addr: Some(img.data_base),
        kind: GlobalKind::Data,
    });

    // Externs: copy the image's import table.
    let ext_map: Vec<u16> = img.imports.iter().map(|n| module.extern_index(n)).collect();

    // Pre-create IR functions.
    let mut func_by_addr = BTreeMap::new();
    let mut ret_pop = BTreeMap::new();
    for (entry, mf) in &funcs.funcs {
        let name = img
            .symbol_name_at(*entry)
            .map(|s| format!("lifted_{s}"))
            .unwrap_or_else(|| format!("fn_{entry:#x}"));
        let mut f = Function::new(name);
        f.orig_addr = Some(*entry);
        let id = module.add_func(f);
        func_by_addr.insert(*entry, id);
        ret_pop.insert(id, mf.ret_pop);
    }

    // Translate each function.
    for (entry, mf) in &funcs.funcs {
        let fid = func_by_addr[entry];
        let mut f = Function::new(module.funcs[fid.index()].name.clone());
        f.orig_addr = Some(*entry);

        // Create IR blocks: entry must be block 0's target.
        let mut block_map = BTreeMap::new();
        for &baddr in &mf.blocks {
            let b = if baddr == *entry { f.entry } else { f.add_block() };
            block_map.insert(baddr, b);
            f.blocks[b.index()].orig_addr = Some(baddr);
        }
        // Guard blocks for untraced paths, one per guard kind so a firing
        // trap attributes the site (direct edge vs indirect target).
        let trap_block = f.add_block();
        f.blocks[trap_block.index()].term = Term::Trap(TrapCode::UntracedBranch.code());
        let trap_ind_block = f.add_block();
        f.blocks[trap_ind_block.index()].term = Term::Trap(TrapCode::UntracedIndirect.code());

        let mut tr = FnTranslator {
            f,
            module_externs: &mut module.externs,
            ext_map: &ext_map,
            cur: BlockId(0),
            flags: FlagState::None,
            block_map,
            trap_block,
            trap_ind_block,
        };

        for &baddr in &mf.blocks {
            tr.cur = tr.block_map[&baddr];
            tr.flags = FlagState::None;
            let mblock = &cfg.blocks[&baddr];
            for (pc, inst) in &mblock.insts {
                translate_inst(&mut tr, img, funcs, &func_by_addr, *pc, inst, mf)?;
            }
            // Terminator.
            let term = match &mblock.end {
                BlockEnd::FallInto(n) => Term::Br(tr.target_block(*n)),
                BlockEnd::Jmp(t) => {
                    // INVARIANT: build_cfg pushes the terminator inst
                    // before breaking with a non-fallthrough end, so
                    // `insts` is non-empty for Jmp/Jcc/JmpInd blocks.
                    let (jaddr, _) = mblock.insts.last().expect("jmp");
                    if let Some(target) = mf.tail_calls.get(jaddr) {
                        // Tail call: call the target, then return.
                        let callee = func_by_addr[target];
                        tr.emit(InstKind::Call { f: callee, args: Vec::new() });
                        Term::Ret(None)
                    } else {
                        Term::Br(tr.target_block(*t))
                    }
                }
                BlockEnd::Jcc { taken_addr, fall_addr, .. } => {
                    // INVARIANT: as above; and a Jcc end is only built
                    // from an `Inst::Jcc` terminator.
                    let (jpc, jinst) = mblock.insts.last().expect("jcc");
                    let Inst::Jcc { cc, .. } = jinst else { unreachable!() };
                    let c = tr.cond_value(*jpc, *cc)?;
                    Term::CondBr {
                        c,
                        t: tr.target_block(*taken_addr),
                        f: tr.target_block(*fall_addr),
                    }
                }
                BlockEnd::JmpInd(targets) => {
                    // Re-compute the jump target value and switch over the
                    // traced targets.
                    // INVARIANT: as above; a JmpInd end is only built
                    // from an `Inst::JmpInd` terminator.
                    let (jpc, jinst) = mblock.insts.last().expect("jmpind");
                    let Inst::JmpInd { target } = jinst else { unreachable!() };
                    let _ = jpc;
                    let tv = tr.read(target, Size::D);
                    let cases = targets.iter().map(|t| (*t as i32, tr.target_block(*t))).collect();
                    Term::Switch { v: tv, cases, default: tr.trap_ind_block }
                }
                BlockEnd::Ret(pop) => {
                    // esp <- sp_at_ret + 4 + pop (skip the ret slot).
                    let esp = tr.load_reg(Reg::Esp);
                    let new = tr.bin(BinOp::Add, esp, Val::Const(4 + *pop as i32));
                    tr.store_reg(Reg::Esp, new);
                    Term::Ret(None)
                }
                BlockEnd::Halt => {
                    // Exit with the value in eax.
                    let code = tr.load_reg(Reg::Eax);
                    let exit = tr.extern_index_of("exit");
                    tr.emit(InstKind::CallExt { ext: exit, args: vec![code] });
                    Term::Unreachable
                }
                BlockEnd::Trap(c) => Term::Trap(*c),
            };
            tr.f.blocks[tr.cur.index()].term = term;
        }

        module.funcs[fid.index()] = tr.f;
    }

    // Entry wrapper.
    let main_fid = func_by_addr[&img.entry];
    let mut start = Function::new("_lifted_start");
    let b = start.entry;
    start.push_inst(
        b,
        InstKind::Store {
            ty: Ty::I32,
            addr: Val::Const(vcpu_reg_addr(Reg::Esp) as i32),
            val: Val::Const((EMU_STACK_TOP - 4) as i32),
        },
    );
    start.push_inst(b, InstKind::Call { f: main_fid, args: Vec::new() });
    let code = start.push_inst(
        b,
        InstKind::Load { ty: Ty::I32, addr: Val::Const(vcpu_reg_addr(Reg::Eax) as i32) },
    );
    start.blocks[b.index()].term = Term::Ret(Some(Val::Inst(code)));
    let start_id = module.add_func(start);
    module.entry = Some(start_id);

    Ok((module, LiftedMeta { func_by_addr, start: start_id, ret_pop, ext_map }))
}

fn translate_inst(
    tr: &mut FnTranslator<'_>,
    _img: &Image,
    _funcs: &FuncMap,
    func_by_addr: &BTreeMap<u32, FuncId>,
    pc: u32,
    inst: &Inst,
    _mf: &crate::funcrec::MachFunc,
) -> Result<(), LiftError> {
    match inst {
        Inst::Nop => {}
        // Terminators are handled by the block-end logic; cmp-like state
        // feeding them is recorded here.
        Inst::Jmp { .. }
        | Inst::JmpInd { .. }
        | Inst::Jcc { .. }
        | Inst::Ret { .. }
        | Inst::Halt
        | Inst::Trap { .. } => {}
        Inst::Mov { size, dst, src } => {
            let v = tr.read(src, *size);
            tr.write(dst, v, *size);
        }
        Inst::Movzx { from, dst, src } => {
            let v = tr.read(src, *from);
            // `read` already zero-extends.
            tr.store_reg(*dst, v);
        }
        Inst::Movsx { from, dst, src } => {
            let v = tr.read(src, *from);
            let s = tr.emit(InstKind::Ext { signed: true, from: size_to_ty(*from), v });
            tr.store_reg(*dst, s);
        }
        Inst::Lea { dst, mem } => {
            let a = tr.ea(mem);
            tr.store_reg(*dst, a);
        }
        Inst::Alu { op, size, dst, src } => {
            let b = tr.read(src, *size);
            let a = tr.read(dst, *size);
            let op_ir = match op {
                AluOp::Add => BinOp::Add,
                AluOp::Sub => BinOp::Sub,
                AluOp::And => BinOp::And,
                AluOp::Or => BinOp::Or,
                AluOp::Xor => BinOp::Xor,
            };
            let r = tr.bin(op_ir, a, b);
            let r = if *size == Size::D {
                r
            } else {
                tr.bin(BinOp::And, r, Val::Const(size.mask() as i32))
            };
            tr.write(dst, r, *size);
            tr.flags = match op {
                AluOp::Add => FlagState::Add { r, size: *size },
                AluOp::Sub => FlagState::Cmp { a, b, size: *size },
                _ => FlagState::Logic { r, size: *size },
            };
        }
        Inst::Cmp { size, a, b } => {
            let bv = tr.read(b, *size);
            let av = tr.read(a, *size);
            tr.flags = FlagState::Cmp { a: av, b: bv, size: *size };
        }
        Inst::Test { size, a, b } => {
            let bv = tr.read(b, *size);
            let av = tr.read(a, *size);
            let r = tr.bin(BinOp::And, av, bv);
            tr.flags = FlagState::Logic { r, size: *size };
        }
        Inst::Imul { dst, src } => {
            let b = tr.read(src, Size::D);
            let a = tr.load_reg(*dst);
            let r = tr.bin(BinOp::Mul, a, b);
            tr.store_reg(*dst, r);
        }
        Inst::ImulI { dst, src, imm } => {
            let a = tr.read(src, Size::D);
            let r = tr.bin(BinOp::Mul, a, Val::Const(*imm));
            tr.store_reg(*dst, r);
        }
        Inst::Idiv { src } => {
            let d = tr.read(src, Size::D);
            let a = tr.load_reg(Reg::Eax);
            let q = tr.bin(BinOp::DivS, a, d);
            let r = tr.bin(BinOp::RemS, a, d);
            tr.store_reg(Reg::Eax, q);
            tr.store_reg(Reg::Edx, r);
        }
        Inst::Neg { size, dst } => {
            let a = tr.read(dst, *size);
            let r = tr.bin(BinOp::Sub, Val::Const(0), a);
            let r = if *size == Size::D {
                r
            } else {
                tr.bin(BinOp::And, r, Val::Const(size.mask() as i32))
            };
            tr.write(dst, r, *size);
            tr.flags = FlagState::Cmp { a: Val::Const(0), b: a, size: *size };
        }
        Inst::Not { size, dst } => {
            let a = tr.read(dst, *size);
            let r = tr.bin(BinOp::Xor, a, Val::Const(-1));
            tr.write(dst, r, *size);
        }
        Inst::Shift { op, size, dst, amount } => {
            let a = tr.read(dst, *size);
            let amt = match amount {
                ShiftAmount::Imm(i) => Val::Const((*i & 31) as i32),
                ShiftAmount::Cl => {
                    let c = tr.load_reg(Reg::Ecx);
                    tr.bin(BinOp::And, c, Val::Const(31))
                }
            };
            let r = match op {
                ShiftOp::Shl => tr.bin(BinOp::Shl, a, amt),
                ShiftOp::Shr => tr.bin(BinOp::ShrL, a, amt),
                ShiftOp::Sar => {
                    // Sign-extend sub-width operands first.
                    let av = if *size == Size::D {
                        a
                    } else {
                        tr.emit(InstKind::Ext { signed: true, from: size_to_ty(*size), v: a })
                    };
                    tr.bin(BinOp::ShrA, av, amt)
                }
            };
            let r = if *size == Size::D {
                r
            } else {
                tr.bin(BinOp::And, r, Val::Const(size.mask() as i32))
            };
            tr.write(dst, r, *size);
            tr.flags = FlagState::Logic { r, size: *size };
        }
        Inst::Push { src } => {
            let v = tr.read(src, Size::D);
            let esp = tr.load_reg(Reg::Esp);
            let ne = tr.bin(BinOp::Sub, esp, Val::Const(4));
            tr.store_reg(Reg::Esp, ne);
            tr.emit(InstKind::Store { ty: Ty::I32, addr: ne, val: v });
        }
        Inst::Pop { dst } => {
            let esp = tr.load_reg(Reg::Esp);
            let v = tr.emit(InstKind::Load { ty: Ty::I32, addr: esp });
            let ne = tr.bin(BinOp::Add, esp, Val::Const(4));
            tr.store_reg(Reg::Esp, ne);
            tr.write(dst, v, Size::D);
        }
        Inst::Leave => {
            let ebp = tr.load_reg(Reg::Ebp);
            let v = tr.emit(InstKind::Load { ty: Ty::I32, addr: ebp });
            let ne = tr.bin(BinOp::Add, ebp, Val::Const(4));
            tr.store_reg(Reg::Esp, ne);
            tr.store_reg(Reg::Ebp, v);
        }
        Inst::Call { target } => {
            let Some(&callee) = func_by_addr.get(target) else {
                return Err(LiftError::CallToNonFunction(pc, *target));
            };
            // Reserve the return-address slot (contents never read).
            let esp = tr.load_reg(Reg::Esp);
            let ne = tr.bin(BinOp::Sub, esp, Val::Const(4));
            tr.store_reg(Reg::Esp, ne);
            tr.emit(InstKind::Call { f: callee, args: Vec::new() });
        }
        Inst::CallInd { target } => {
            let tv = tr.read(target, Size::D);
            let esp = tr.load_reg(Reg::Esp);
            let ne = tr.bin(BinOp::Sub, esp, Val::Const(4));
            tr.store_reg(Reg::Esp, ne);
            tr.emit(InstKind::CallInd { target: tv, args: Vec::new() });
        }
        Inst::CallExt { idx } => {
            // Stack switching analogue (§5.2): the external reads its
            // arguments straight off the emulated stack.
            let ext = tr.intern_ext(*idx);
            let esp = tr.load_reg(Reg::Esp);
            let r = tr.emit(InstKind::CallExtRaw { ext, sp: esp });
            tr.store_reg(Reg::Eax, r);
        }
        Inst::Setcc { cc, dst } => {
            let v = tr.cond_value(pc, *cc)?;
            // Writes the low byte only (stale upper bits).
            tr.write(&Operand::Reg(*dst), v, Size::B);
        }
        Inst::VmovLd { mem } => {
            let addr = tr.ea(mem);
            let lo = tr.emit(InstKind::Load { ty: Ty::I32, addr });
            let hiaddr = tr.bin(BinOp::Add, addr, Val::Const(4));
            let hi = tr.emit(InstKind::Load { ty: Ty::I32, addr: hiaddr });
            tr.emit(InstKind::Store {
                ty: Ty::I32,
                addr: Val::Const(vcpu_vreg_addr(0) as i32),
                val: lo,
            });
            tr.emit(InstKind::Store {
                ty: Ty::I32,
                addr: Val::Const(vcpu_vreg_addr(1) as i32),
                val: hi,
            });
        }
        Inst::VmovSt { mem } => {
            let addr = tr.ea(mem);
            let lo =
                tr.emit(InstKind::Load { ty: Ty::I32, addr: Val::Const(vcpu_vreg_addr(0) as i32) });
            let hi =
                tr.emit(InstKind::Load { ty: Ty::I32, addr: Val::Const(vcpu_vreg_addr(1) as i32) });
            tr.emit(InstKind::Store { ty: Ty::I32, addr, val: lo });
            let hiaddr = tr.bin(BinOp::Add, addr, Val::Const(4));
            tr.emit(InstKind::Store { ty: Ty::I32, addr: hiaddr, val: hi });
        }
    }
    Ok(())
}
