//! Machine-level CFG reconstruction from the merged trace.
//!
//! Block starts are the program entry plus every observed transfer target;
//! blocks extend linearly until a terminator or until they run into another
//! block start (implicit fallthrough edge). Only traced territory becomes
//! blocks — "what you trace is what you get".

use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wyt_emu::TransferKind;
use wyt_isa::image::Image;
use wyt_isa::{DecodeLimits, Inst};

/// How one machine block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockEnd {
    /// `jmp target` (target may be a tail call; classified later).
    Jmp(u32),
    /// Conditional branch: taken target and fallthrough address, each
    /// `Some` only if that edge was traced.
    Jcc {
        /// Taken target, if observed.
        taken: Option<u32>,
        /// Fallthrough address, if observed.
        fall: Option<u32>,
        /// Taken target address even if untraced (for trap generation).
        taken_addr: u32,
        /// Fallthrough address even if untraced.
        fall_addr: u32,
    },
    /// Indirect jump with the observed target set.
    JmpInd(Vec<u32>),
    /// Return.
    Ret(u16),
    /// `halt`.
    Halt,
    /// Explicit trap instruction.
    Trap(u8),
    /// Falls into the block that starts at the given address.
    FallInto(u32),
}

/// A reconstructed machine basic block. `PartialEq` supports the healing
/// loop's CFG diff (a block whose end gained a traced edge compares
/// unequal even when the block set is unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachBlock {
    /// Start address.
    pub addr: u32,
    /// Decoded instructions with their addresses (terminator included for
    /// non-fallthrough ends).
    pub insts: Vec<(u32, Inst)>,
    /// How the block ends.
    pub end: BlockEnd,
}

/// The reconstructed CFG. `PartialEq` backs the streaming lift's
/// incremental-vs-phased equality gates (see [`crate::stream`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachCfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u32, MachBlock>,
    /// Observed call targets (function-entry seeds).
    pub call_targets: BTreeSet<u32>,
    /// Program entry.
    pub entry: u32,
}

/// A CFG reconstruction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// Undecodable bytes inside traced territory.
    BadDecode(u32),
    /// A traced target lies outside the text segment.
    TargetOutsideText(u32),
    /// A terminator instruction the CFG builder does not model.
    UnsupportedTerminator(u32),
    /// The trace implies a CFG larger than the decode limits allow
    /// (hostile input defense; see [`wyt_isa::DecodeLimits`]).
    LimitExceeded {
        /// Which resource ran out ("blocks" or "instructions").
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::BadDecode(a) => write!(f, "cannot decode traced code at {a:#x}"),
            CfgError::TargetOutsideText(a) => write!(f, "traced target {a:#x} outside text"),
            CfgError::UnsupportedTerminator(a) => {
                write!(f, "unmodeled terminator at {a:#x}")
            }
            CfgError::LimitExceeded { what, limit } => {
                write!(f, "cfg exceeds decode limit: more than {limit} {what}")
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// Build the machine CFG from a merged trace, under the default
/// [`DecodeLimits`].
///
/// # Errors
/// Returns a [`CfgError`] if traced addresses cannot be decoded.
pub fn build_cfg(img: &Image, trace: &Trace) -> Result<MachCfg, CfgError> {
    build_cfg_limited(img, trace, &DecodeLimits::default())
}

/// Build the machine CFG from a merged trace, refusing to grow past the
/// given [`DecodeLimits`] (hostile images can otherwise make the walk
/// decode unboundedly — e.g. a text segment wrapping the address space).
///
/// # Errors
/// Returns a [`CfgError`] if traced addresses cannot be decoded or the
/// CFG would exceed `limits`.
pub fn build_cfg_limited(
    img: &Image,
    trace: &Trace,
    limits: &DecodeLimits,
) -> Result<MachCfg, CfgError> {
    let mut starts: BTreeSet<u32> = BTreeSet::new();
    starts.insert(img.entry);
    for (_, to, _) in &trace.edges {
        if !img.contains_code(*to) {
            return Err(CfgError::TargetOutsideText(*to));
        }
        starts.insert(*to);
    }
    if starts.len() > limits.max_blocks {
        return Err(CfgError::LimitExceeded { what: "blocks", limit: limits.max_blocks });
    }

    let mut cfg =
        MachCfg { blocks: BTreeMap::new(), call_targets: trace.call_targets(), entry: img.entry };

    let mut total_insts = 0usize;
    for &start in &starts {
        let mut insts = Vec::new();
        let mut pc = start;
        let end = loop {
            let (inst, len) = img.decode_at(pc).map_err(|_| CfgError::BadDecode(pc))?;
            total_insts += 1;
            if total_insts > limits.max_insts {
                return Err(CfgError::LimitExceeded {
                    what: "instructions",
                    limit: limits.max_insts,
                });
            }
            let next = pc.wrapping_add(len as u32);
            if inst.is_terminator() {
                insts.push((pc, inst));
                break match inst {
                    Inst::Jmp { target } => BlockEnd::Jmp(target),
                    Inst::Jcc { target, .. } => {
                        let taken = trace
                            .edges
                            .contains(&(pc, target, TransferKind::CondTaken))
                            .then_some(target);
                        let fall = trace
                            .edges
                            .contains(&(pc, next, TransferKind::CondFall))
                            .then_some(next);
                        BlockEnd::Jcc { taken, fall, taken_addr: target, fall_addr: next }
                    }
                    Inst::JmpInd { .. } => {
                        BlockEnd::JmpInd(trace.targets_from(pc, |k| k == TransferKind::IndJump))
                    }
                    Inst::Ret { pop } => BlockEnd::Ret(pop),
                    Inst::Halt => BlockEnd::Halt,
                    Inst::Trap { code } => BlockEnd::Trap(code),
                    _ => return Err(CfgError::UnsupportedTerminator(pc)),
                };
            }
            insts.push((pc, inst));
            if starts.contains(&next) {
                break BlockEnd::FallInto(next);
            }
            pc = next;
        };
        cfg.blocks.insert(start, MachBlock { addr: start, insts, end });
    }
    Ok(cfg)
}

impl MachCfg {
    /// Intra-procedural successor addresses of a block (tail-call edges
    /// included; the caller classifies them).
    pub fn successors(&self, b: &MachBlock) -> Vec<u32> {
        match &b.end {
            BlockEnd::Jmp(t) => vec![*t],
            BlockEnd::Jcc { taken, fall, .. } => taken.iter().chain(fall.iter()).copied().collect(),
            BlockEnd::JmpInd(ts) => ts.clone(),
            BlockEnd::FallInto(n) => vec![*n],
            BlockEnd::Ret(_) | BlockEnd::Halt | BlockEnd::Trap(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_image;
    use wyt_minicc::{compile, Profile};

    #[test]
    fn cfg_covers_traced_blocks_and_splits_at_targets() {
        let src = r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 4; i++) {
                    if (i % 2 == 0) acc += i;
                    else acc += 2 * i;
                }
                return acc;
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, results) = trace_image(&img, &[vec![]]);
        assert!(results[0].ok());
        let cfg = build_cfg(&img, &trace).unwrap();
        assert!(cfg.blocks.len() >= 5, "loop + two arms + exit expected");
        // Every block's traced successors exist as blocks.
        for b in cfg.blocks.values() {
            for s in cfg.successors(b) {
                assert!(cfg.blocks.contains_key(&s), "missing successor {s:#x}");
            }
        }
        // The entry block exists.
        assert!(cfg.blocks.contains_key(&img.entry));
    }

    #[test]
    fn untraced_branch_side_is_none() {
        let src = r#"
            int main() {
                int c = getchar();
                if (c == 'x') return 1;
                return 2;
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        // Only trace the not-taken path.
        let (trace, _) = trace_image(&img, &[b"q".to_vec()]);
        let cfg = build_cfg(&img, &trace).unwrap();
        let has_half_jcc = cfg.blocks.values().any(|b| {
            matches!(
                b.end,
                BlockEnd::Jcc { taken: None, fall: Some(_), .. }
                    | BlockEnd::Jcc { taken: Some(_), fall: None, .. }
            )
        });
        assert!(has_half_jcc, "one branch side should be untraced");
    }

    #[test]
    fn limits_bound_cfg_growth() {
        let src = "int main() { return 42; }";
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, _) = trace_image(&img, &[vec![]]);
        // Generous limits: fine.
        assert!(build_cfg_limited(&img, &trace, &DecodeLimits::default()).is_ok());
        // One-instruction budget: typed error, no panic, no runaway walk.
        let tight = DecodeLimits { max_insts: 1, ..DecodeLimits::default() };
        assert_eq!(
            build_cfg_limited(&img, &trace, &tight),
            Err(CfgError::LimitExceeded { what: "instructions", limit: 1 })
        );
        // Zero-block budget trips the start-count check.
        let none = DecodeLimits { max_blocks: 0, ..DecodeLimits::default() };
        assert!(matches!(
            build_cfg_limited(&img, &trace, &none),
            Err(CfgError::LimitExceeded { what: "blocks", .. })
        ));
    }

    #[test]
    fn jump_table_targets_enumerated() {
        let src = r#"
            int main() {
                int c = getchar() - '0';
                switch (c) {
                    case 0: return 10;
                    case 1: return 11;
                    case 2: return 12;
                    case 3: return 13;
                    case 4: return 14;
                    default: return -1;
                }
            }
        "#;
        let img = compile(src, &Profile::gcc44_o3()).unwrap();
        let (trace, _) = trace_image(&img, &[b"0".to_vec(), b"2".to_vec(), b"4".to_vec()]);
        let cfg = build_cfg(&img, &trace).unwrap();
        let ind = cfg
            .blocks
            .values()
            .find_map(|b| match &b.end {
                BlockEnd::JmpInd(ts) => Some(ts.clone()),
                _ => None,
            })
            .expect("switch should compile to a jump table");
        assert_eq!(ind.len(), 3, "three traced table targets");
    }
}
