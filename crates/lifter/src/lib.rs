//! # wyt-lifter — the BinRec analogue
//!
//! Dynamic lifting of machine binaries to [`wyt_ir`] modules, following
//! the paper's pipeline (Fig. 4):
//!
//! 1. [`trace::trace_image`] executes the binary on the emulator for each
//!    user-provided input and merges the observed control transfers.
//! 2. [`cfg::build_cfg`] reconstructs the machine-level CFG from traced
//!    targets only — *what you trace is what you get*.
//! 3. [`funcrec::recover_functions`] recovers single-entry functions,
//!    identifying tail calls (paper §5.1, Nucleus-style).
//! 4. [`translate::translate`] lifts each function to IR with the
//!    instruction-emulation approach of §2.1: virtual CPU register cells,
//!    an emulated-stack global, and stack-switching external calls.
//!
//! [`lift_image`] runs all four stages. The result is a runnable module
//! (via [`wyt_ir::interp`]) that still knows nothing about local
//! variables — precisely the input WYTIWYG's refinements operate on.

pub mod cfg;
pub mod extdb;
pub mod funcrec;
pub mod stream;
pub mod trace;
pub mod translate;

pub use cfg::{build_cfg_limited, BlockEnd, CfgError, MachBlock, MachCfg};
pub use extdb::{ext_sig, ExtEffect, ExtSig, SizeSpec};
pub use funcrec::{recover_functions_limited, FuncMap, FuncRecError, MachFunc};
pub use trace::{trace_image, MergeDelta, Trace};
pub use translate::{
    is_emustack_addr, is_vcpu_addr, translate, vcpu_reg_addr, vcpu_vreg_addr, LiftError,
    LiftedMeta, EMU_STACK_BASE, EMU_STACK_SIZE, EMU_STACK_TOP, VCPU_BASE,
};

use std::fmt;
use wyt_emu::RunResult;
use wyt_ir::Module;
use wyt_isa::image::Image;

/// Any lifting-stage failure.
#[derive(Debug, Clone)]
pub enum LiftPipelineError {
    /// CFG reconstruction failed.
    Cfg(CfgError),
    /// Function recovery failed.
    FuncRec(FuncRecError),
    /// Translation failed.
    Translate(LiftError),
}

impl fmt::Display for LiftPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftPipelineError::Cfg(e) => write!(f, "cfg: {e}"),
            LiftPipelineError::FuncRec(e) => write!(f, "function recovery: {e}"),
            LiftPipelineError::Translate(e) => write!(f, "translate: {e}"),
        }
    }
}

impl std::error::Error for LiftPipelineError {}

/// A fully lifted program.
#[derive(Debug)]
pub struct Lifted {
    /// The lifted IR module.
    pub module: Module,
    /// Lifting metadata used by the refinement passes.
    pub meta: LiftedMeta,
    /// The merged trace.
    pub trace: Trace,
    /// The machine CFG.
    pub cfg: MachCfg,
    /// Recovered function map.
    pub funcs: FuncMap,
    /// Reference results of the traced runs (for validation).
    pub baseline_runs: Vec<RunResult>,
}

/// Trace, reconstruct, recover and translate `img` using `inputs`.
/// (See [`lift_from_trace`] to lift from an externally merged trace.)
///
/// # Errors
/// Returns a [`LiftPipelineError`] if any stage fails.
pub fn lift_image(img: &Image, inputs: &[Vec<u8>]) -> Result<Lifted, LiftPipelineError> {
    lift_image_faulted(img, inputs, None)
}

/// [`lift_image`] with an optional trace-mutation hook, applied between
/// tracing and CFG reconstruction. The fault-injection harness uses this
/// to model torn or corrupted traces (truncated edges, duplicated edges
/// with the wrong transfer kind, bogus call targets); everything
/// downstream must then either degrade per function or return a
/// structured error.
///
/// # Errors
/// Returns a [`LiftPipelineError`] if any stage fails.
pub fn lift_image_faulted(
    img: &Image,
    inputs: &[Vec<u8>],
    trace_fault: Option<&(dyn Fn(&mut Trace) + Sync)>,
) -> Result<Lifted, LiftPipelineError> {
    if stream::enabled() {
        return stream::stream_lift(img, inputs, trace_fault);
    }
    let (mut trace, baseline_runs) = {
        let _s = wyt_obs::Span::enter("lift.trace");
        trace_image(img, inputs)
    };
    if let Some(fault) = trace_fault {
        fault(&mut trace);
    }
    lift_from_trace(img, trace, baseline_runs)
}

/// Lift `img` from an already-merged [`Trace`] — the incremental re-lift
/// entry point of the self-healing loop, which merges delta edges from a
/// re-traced input into the stored trace instead of re-tracing every
/// input from scratch. `baseline_runs` are the reference runs the trace
/// was merged from (old baselines plus the re-traced deltas).
///
/// # Errors
/// Returns a [`LiftPipelineError`] if any stage fails.
pub fn lift_from_trace(
    img: &Image,
    trace: Trace,
    baseline_runs: Vec<RunResult>,
) -> Result<Lifted, LiftPipelineError> {
    let cfg = {
        let _s = wyt_obs::Span::enter("lift.cfg");
        cfg::build_cfg(img, &trace).map_err(LiftPipelineError::Cfg)?
    };
    let funcs = {
        let _s = wyt_obs::Span::enter("lift.funcrec");
        funcrec::recover_functions(&cfg).map_err(LiftPipelineError::FuncRec)?
    };
    let (module, meta) = {
        let _s = wyt_obs::Span::enter("lift.translate");
        translate::translate(img, &cfg, &funcs).map_err(LiftPipelineError::Translate)?
    };
    Ok(Lifted { module, meta, trace, cfg, funcs, baseline_runs })
}
