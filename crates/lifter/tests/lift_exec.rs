//! Differential test: the lifted IR, executed by the interpreter, must
//! behave exactly like the original binary on the emulator — output, exit
//! code, everything. This is the BinRec functionality guarantee the rest
//! of the system builds on.

use wyt_emu::run_image;
use wyt_ir::interp::{Interp, NoHooks};
use wyt_ir::verify::verify_module;
use wyt_lifter::lift_image;
use wyt_minicc::{compile, Profile};

fn profiles() -> Vec<Profile> {
    vec![Profile::gcc12_o3(), Profile::gcc12_o0(), Profile::clang16_o3(), Profile::gcc44_o3()]
}

/// Lift with `train` inputs, then run the lifted module on each `check`
/// input and compare against the native run.
fn differential(src: &str, train: &[&[u8]], check: &[&[u8]]) {
    for p in profiles() {
        let img = compile(src, &p).unwrap().stripped();
        let train_inputs: Vec<Vec<u8>> = train.iter().map(|i| i.to_vec()).collect();
        let lifted = lift_image(&img, &train_inputs)
            .unwrap_or_else(|e| panic!("{}: lift failed: {e}", p.name));
        verify_module(&lifted.module).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        for input in check {
            let native = run_image(&img, input.to_vec());
            assert!(native.ok(), "{}: native trap {:?}", p.name, native.trap);
            let mut interp = Interp::new(&lifted.module, input.to_vec(), NoHooks);
            let out = interp.run();
            assert!(out.ok(), "{}: lifted execution failed: {:?}", p.name, out.error);
            assert_eq!(out.exit_code, native.exit_code, "{}: exit code", p.name);
            assert_eq!(out.output, native.output, "{}: output", p.name);
        }
    }
}

#[test]
fn lifts_loops_and_calls() {
    differential(
        r#"
        int addmul(int a, int b) { return a * b + a; }
        int main() {
            int i;
            int acc = 0;
            for (i = 0; i < 10; i++) acc += addmul(i, 3);
            return acc;
        }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn lifts_recursion_and_locals() {
    differential(
        r#"
        int fact(int n) {
            int local = n;
            if (local < 2) return 1;
            return local * fact(local - 1);
        }
        int main() { return fact(7) % 251; }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn lifts_arrays_structs_and_pointers() {
    differential(
        r#"
        struct pair { int a; int b; };
        int sum(struct pair *p, int n) {
            int i;
            int acc = 0;
            for (i = 0; i < n; i++) acc += p[i].a - p[i].b;
            return acc;
        }
        int main() {
            struct pair ps[5];
            int i;
            for (i = 0; i < 5; i++) {
                ps[i].a = i * 7;
                ps[i].b = i;
            }
            return sum(ps, 5);
        }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn lifts_externals_and_io() {
    differential(
        r#"
        int main() {
            int c;
            int total = 0;
            char buf[32];
            int n = read_bytes(buf, 32);
            for (c = 0; c < n; c++) total += buf[c];
            printf("n=%d total=%d\n", n, total);
            return total & 0x7f;
        }
        "#,
        &[b"abc"],
        &[b"abc"],
    );
}

#[test]
fn lifts_switch_jump_tables() {
    let src = r#"
        int main() {
            int c = getchar() - '0';
            switch (c) {
                case 0: return 10;
                case 1: return 21;
                case 2: return 32;
                case 3: return 43;
                case 4: return 54;
                default: return 1;
            }
        }
    "#;
    differential(src, &[b"0", b"1", b"2", b"3", b"4", b"9"], &[b"2", b"4", b"9"]);
}

#[test]
fn lifts_indirect_calls() {
    differential(
        r#"
        int inc(int x) { return x + 1; }
        int dec(int x) { return x - 1; }
        int main() {
            int t = getchar() == '+' ? (int)&inc : (int)&dec;
            return __icall(t, 10);
        }
        "#,
        &[b"+", b"-"],
        &[b"+", b"-"],
    );
}

#[test]
fn lifts_char_short_subregister_writes() {
    differential(
        r#"
        int main() {
            char c = 200;
            short s = -2;
            char arr[3];
            arr[0] = c + 1;
            arr[1] = s;
            arr[2] = arr[0] * 2;
            return arr[0] + arr[1] + arr[2] + c + s;
        }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn lifts_tail_calls() {
    differential(
        r#"
        int count(int n, int acc) {
            if (n == 0) return acc;
            return count(n - 1, acc + n);
        }
        int main() { return count(30, 0) & 0xff; }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn lifts_vmov_block_copies() {
    differential(
        r#"
        struct blob { int w[6]; };
        int main() {
            struct blob a;
            struct blob b;
            int i;
            for (i = 0; i < 6; i++) a.w[i] = i * i;
            b = a;
            return b.w[5] + b.w[1];
        }
        "#,
        &[b""],
        &[b""],
    );
}

#[test]
fn untraced_path_traps_and_incremental_lifting_fixes_it() {
    let src = r#"
        int main() {
            int c = getchar();
            if (c == 'x') return 77;
            return 1;
        }
    "#;
    let img = compile(src, &Profile::gcc44_o3()).unwrap().stripped();
    // Trace only the common path.
    let lifted = lift_image(&img, &[b"q".to_vec()]).unwrap();
    let mut i = Interp::new(&lifted.module, b"x".to_vec(), NoHooks);
    let out = i.run();
    assert!(!out.ok(), "untraced path must trap, not misbehave");

    // Incremental (re)lifting with the new input fixes it (paper §7.2).
    let relifted = lift_image(&img, &[b"q".to_vec(), b"x".to_vec()]).unwrap();
    let mut i2 = Interp::new(&relifted.module, b"x".to_vec(), NoHooks);
    let out2 = i2.run();
    assert!(out2.ok());
    assert_eq!(out2.exit_code, 77);
}

#[test]
fn lifted_module_shape_matches_fig1() {
    let img = compile("int main() { return 3; }", &Profile::gcc44_o3()).unwrap().stripped();
    let lifted = lift_image(&img, &[vec![]]).unwrap();
    let m = &lifted.module;
    // vCPU cells, vector halves, emulated stack, original data.
    assert!(m.globals.iter().any(|g| matches!(g.kind, wyt_ir::GlobalKind::EmuStack)));
    assert_eq!(
        m.globals.iter().filter(|g| matches!(g.kind, wyt_ir::GlobalKind::VcpuReg(_))).count(),
        10
    );
    // One lifted function plus the start wrapper.
    assert_eq!(m.funcs.len(), 2);
    assert!(m.funcs.iter().any(|f| f.name == "_lifted_start"));
}
