//! Differential property test: for random straight-line machine programs,
//! the lifted IR (run under the interpreter) must compute exactly what the
//! machine computes — including condition-code materialization via
//! `setcc`, sub-register merges, sign/zero extension and memory traffic.

use proptest::prelude::*;
use wyt_emu::run_image;
use wyt_ir::interp::{Interp, NoHooks};
use wyt_isa::asm::Asm;
use wyt_isa::image::{Image, DATA_BASE};
use wyt_isa::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
use wyt_lifter::lift_image;

/// Registers safe for random clobbering (esp/ebp excluded to keep the
/// stack discipline lifters assume).
const GPRS: [Reg; 6] = [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi];

#[derive(Debug, Clone)]
enum Op {
    MovRI(u8, i32),
    MovRR(u8, u8),
    Alu(u8, u8, u8, i32, bool), // op, dst, src, imm, use_imm
    SubRegWrite(u8, i32, bool), // dst, imm, byte-sized (vs word)
    MovzxB(u8, u8),
    MovsxB(u8, u8),
    Shift(u8, u8, u8), // op, dst, amount
    Neg(u8),
    Not(u8),
    StoreMem(u8, u8),  // slot, src
    LoadMem(u8, u8),   // dst, slot
    StoreByte(u8, u8), // slot, src
    LoadByteSx(u8, u8),
    CmpSet(u8, u8, u8, u8), // a, b, cc, dst
    TestSet(u8, u8, u8, u8),
    Lea(u8, u8, u8, i32), // dst, base, index, disp
    ImulI(u8, u8, i32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i32>()).prop_map(|(r, i)| Op::MovRI(r, i)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::MovRR(a, b)),
        (0u8..5, any::<u8>(), any::<u8>(), any::<i32>(), any::<bool>())
            .prop_map(|(o, d, s, i, ui)| Op::Alu(o, d, s, i, ui)),
        (any::<u8>(), any::<i32>(), any::<bool>())
            .prop_map(|(d, i, b)| Op::SubRegWrite(d, i, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::MovzxB(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::MovsxB(a, b)),
        (0u8..3, any::<u8>(), any::<u8>()).prop_map(|(o, d, k)| Op::Shift(o, d, k)),
        any::<u8>().prop_map(Op::Neg),
        any::<u8>().prop_map(Op::Not),
        (0u8..8, any::<u8>()).prop_map(|(s, r)| Op::StoreMem(s, r)),
        (any::<u8>(), 0u8..8).prop_map(|(r, s)| Op::LoadMem(r, s)),
        (0u8..8, any::<u8>()).prop_map(|(s, r)| Op::StoreByte(s, r)),
        (any::<u8>(), 0u8..8).prop_map(|(r, s)| Op::LoadByteSx(r, s)),
        (any::<u8>(), any::<u8>(), 0u8..10, any::<u8>())
            .prop_map(|(a, b, cc, d)| Op::CmpSet(a, b, cc, d)),
        (any::<u8>(), any::<u8>(), 0u8..2, any::<u8>())
            .prop_map(|(a, b, cc, d)| Op::TestSet(a, b, cc, d)),
        (any::<u8>(), any::<u8>(), any::<u8>(), -64i32..64)
            .prop_map(|(d, b, i, disp)| Op::Lea(d, b, i, disp)),
        (any::<u8>(), any::<u8>(), -1000i32..1000).prop_map(|(d, s, i)| Op::ImulI(d, s, i)),
    ]
}

fn reg(k: u8) -> Reg {
    GPRS[k as usize % GPRS.len()]
}

fn slot(s: u8) -> Mem {
    Mem::abs((DATA_BASE + 64 + 4 * (s as u32 % 8)) as i32)
}

fn build(ops: &[Op]) -> Image {
    let mut a = Asm::new();
    // Deterministic initial register state.
    for (i, r) in GPRS.iter().enumerate() {
        a.emit(Inst::Mov {
            size: Size::D,
            dst: Operand::Reg(*r),
            src: Operand::Imm(0x1111 * (i as i32 + 1)),
        });
    }
    for op in ops {
        match op {
            Op::MovRI(r, i) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*r)),
                src: Operand::Imm(*i),
            }),
            Op::MovRR(d, s) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*d)),
                src: Operand::Reg(reg(*s)),
            }),
            Op::Alu(o, d, s, imm, use_imm) => {
                let op = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor]
                    [*o as usize % 5];
                let src = if *use_imm { Operand::Imm(*imm) } else { Operand::Reg(reg(*s)) };
                a.emit(Inst::Alu { op, size: Size::D, dst: Operand::Reg(reg(*d)), src });
            }
            Op::SubRegWrite(d, imm, byte) => a.emit(Inst::Mov {
                size: if *byte { Size::B } else { Size::W },
                dst: Operand::Reg(reg(*d)),
                src: Operand::Imm(*imm),
            }),
            Op::MovzxB(d, s) => a.emit(Inst::Movzx {
                from: Size::B,
                dst: reg(*d),
                src: Operand::Reg(reg(*s)),
            }),
            Op::MovsxB(d, s) => a.emit(Inst::Movsx {
                from: Size::B,
                dst: reg(*d),
                src: Operand::Reg(reg(*s)),
            }),
            Op::Shift(o, d, k) => {
                let op = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][*o as usize % 3];
                a.emit(Inst::Shift {
                    op,
                    size: Size::D,
                    dst: Operand::Reg(reg(*d)),
                    // Nonzero amounts only: a zero-count shift preserves
                    // flags on real hardware, which straight-line lifting
                    // does not model (and compilers never emit).
                    amount: ShiftAmount::Imm(1 + (*k % 31)),
                });
            }
            Op::Neg(d) => a.emit(Inst::Neg { size: Size::D, dst: Operand::Reg(reg(*d)) }),
            Op::Not(d) => a.emit(Inst::Not { size: Size::D, dst: Operand::Reg(reg(*d)) }),
            Op::StoreMem(s, r) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Mem(slot(*s)),
                src: Operand::Reg(reg(*r)),
            }),
            Op::LoadMem(r, s) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*r)),
                src: Operand::Mem(slot(*s)),
            }),
            Op::StoreByte(s, r) => a.emit(Inst::Mov {
                size: Size::B,
                dst: Operand::Mem(slot(*s)),
                src: Operand::Reg(reg(*r)),
            }),
            Op::LoadByteSx(r, s) => a.emit(Inst::Movsx {
                from: Size::B,
                dst: reg(*r),
                src: Operand::Mem(slot(*s)),
            }),
            Op::CmpSet(x, y, cc, d) => {
                let cc = [
                    Cc::E,
                    Cc::Ne,
                    Cc::L,
                    Cc::Le,
                    Cc::G,
                    Cc::Ge,
                    Cc::B,
                    Cc::Be,
                    Cc::A,
                    Cc::Ae,
                ][*cc as usize % 10];
                a.emit(Inst::Cmp {
                    size: Size::D,
                    a: Operand::Reg(reg(*x)),
                    b: Operand::Reg(reg(*y)),
                });
                a.emit(Inst::Setcc { cc, dst: reg(*d) });
            }
            Op::TestSet(x, y, cc, d) => {
                let cc = [Cc::E, Cc::Ne][*cc as usize % 2];
                a.emit(Inst::Test {
                    size: Size::D,
                    a: Operand::Reg(reg(*x)),
                    b: Operand::Reg(reg(*y)),
                });
                a.emit(Inst::Setcc { cc, dst: reg(*d) });
            }
            Op::Lea(d, b, i, disp) => a.emit(Inst::Lea {
                dst: reg(*d),
                mem: Mem::base_index(reg(*b), reg(*i), 4, *disp),
            }),
            Op::ImulI(d, s, imm) => a.emit(Inst::ImulI {
                dst: reg(*d),
                src: Operand::Reg(reg(*s)),
                imm: *imm,
            }),
        }
    }
    // Fold every register into eax so the whole state is observable.
    for r in &GPRS[1..] {
        a.emit(Inst::Alu {
            op: AluOp::Xor,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Reg(*r),
        });
    }
    a.emit(Inst::Halt);
    let mut img = Image::new();
    img.data = vec![0u8; 128];
    let out = a.finish(img.text_base);
    img.text = out.bytes;
    img.entry = img.text_base;
    img
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lifted_ir_matches_machine(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let img = build(&ops);
        let native = run_image(&img, vec![]);
        prop_assert!(native.ok(), "native trap: {:?}", native.trap);
        let lifted = lift_image(&img, &[vec![]]).expect("lift");
        wyt_ir::verify::verify_module(&lifted.module).expect("verify");
        let out = Interp::new(&lifted.module, vec![], NoHooks).run();
        prop_assert!(out.ok(), "lifted error: {:?}", out.error);
        prop_assert_eq!(out.exit_code, native.exit_code, "state checksum differs");
    }
}
