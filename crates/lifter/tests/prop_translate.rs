//! Differential property test: for random straight-line machine programs,
//! the lifted IR (run under the interpreter) must compute exactly what the
//! machine computes — including condition-code materialization via
//! `setcc`, sub-register merges, sign/zero extension and memory traffic.

use wyt_emu::run_image;
use wyt_ir::interp::{Interp, NoHooks};
use wyt_isa::asm::Asm;
use wyt_isa::image::{Image, DATA_BASE};
use wyt_isa::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
use wyt_lifter::lift_image;
use wyt_testkit::prop::{check, shrink_vec, vec_of, Config};
use wyt_testkit::Rng;

/// Registers safe for random clobbering (esp/ebp excluded to keep the
/// stack discipline lifters assume).
const GPRS: [Reg; 6] = [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi];

#[derive(Debug, Clone)]
enum Op {
    MovRI(u8, i32),
    MovRR(u8, u8),
    Alu(u8, u8, u8, i32, bool), // op, dst, src, imm, use_imm
    SubRegWrite(u8, i32, bool), // dst, imm, byte-sized (vs word)
    MovzxB(u8, u8),
    MovsxB(u8, u8),
    Shift(u8, u8, u8), // op, dst, amount
    Neg(u8),
    Not(u8),
    StoreMem(u8, u8),  // slot, src
    LoadMem(u8, u8),   // dst, slot
    StoreByte(u8, u8), // slot, src
    LoadByteSx(u8, u8),
    CmpSet(u8, u8, u8, u8), // a, b, cc, dst
    TestSet(u8, u8, u8, u8),
    Lea(u8, u8, u8, i32), // dst, base, index, disp
    ImulI(u8, u8, i32),
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.range_u32(0, 17) {
        0 => Op::MovRI(rng.next_u8(), rng.next_i32()),
        1 => Op::MovRR(rng.next_u8(), rng.next_u8()),
        2 => Op::Alu(
            rng.range_u32(0, 5) as u8,
            rng.next_u8(),
            rng.next_u8(),
            rng.next_i32(),
            rng.next_bool(),
        ),
        3 => Op::SubRegWrite(rng.next_u8(), rng.next_i32(), rng.next_bool()),
        4 => Op::MovzxB(rng.next_u8(), rng.next_u8()),
        5 => Op::MovsxB(rng.next_u8(), rng.next_u8()),
        6 => Op::Shift(rng.range_u32(0, 3) as u8, rng.next_u8(), rng.next_u8()),
        7 => Op::Neg(rng.next_u8()),
        8 => Op::Not(rng.next_u8()),
        9 => Op::StoreMem(rng.range_u32(0, 8) as u8, rng.next_u8()),
        10 => Op::LoadMem(rng.next_u8(), rng.range_u32(0, 8) as u8),
        11 => Op::StoreByte(rng.range_u32(0, 8) as u8, rng.next_u8()),
        12 => Op::LoadByteSx(rng.next_u8(), rng.range_u32(0, 8) as u8),
        13 => Op::CmpSet(rng.next_u8(), rng.next_u8(), rng.range_u32(0, 10) as u8, rng.next_u8()),
        14 => Op::TestSet(rng.next_u8(), rng.next_u8(), rng.range_u32(0, 2) as u8, rng.next_u8()),
        15 => Op::Lea(rng.next_u8(), rng.next_u8(), rng.next_u8(), rng.range_i32(-64, 64)),
        _ => Op::ImulI(rng.next_u8(), rng.next_u8(), rng.range_i32(-1000, 1000)),
    }
}

fn reg(k: u8) -> Reg {
    GPRS[k as usize % GPRS.len()]
}

fn slot(s: u8) -> Mem {
    Mem::abs((DATA_BASE + 64 + 4 * (s as u32 % 8)) as i32)
}

fn build(ops: &[Op]) -> Image {
    let mut a = Asm::new();
    // Deterministic initial register state.
    for (i, r) in GPRS.iter().enumerate() {
        a.emit(Inst::Mov {
            size: Size::D,
            dst: Operand::Reg(*r),
            src: Operand::Imm(0x1111 * (i as i32 + 1)),
        });
    }
    for op in ops {
        match op {
            Op::MovRI(r, i) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*r)),
                src: Operand::Imm(*i),
            }),
            Op::MovRR(d, s) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*d)),
                src: Operand::Reg(reg(*s)),
            }),
            Op::Alu(o, d, s, imm, use_imm) => {
                let op =
                    [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor][*o as usize % 5];
                let src = if *use_imm { Operand::Imm(*imm) } else { Operand::Reg(reg(*s)) };
                a.emit(Inst::Alu { op, size: Size::D, dst: Operand::Reg(reg(*d)), src });
            }
            Op::SubRegWrite(d, imm, byte) => a.emit(Inst::Mov {
                size: if *byte { Size::B } else { Size::W },
                dst: Operand::Reg(reg(*d)),
                src: Operand::Imm(*imm),
            }),
            Op::MovzxB(d, s) => {
                a.emit(Inst::Movzx { from: Size::B, dst: reg(*d), src: Operand::Reg(reg(*s)) })
            }
            Op::MovsxB(d, s) => {
                a.emit(Inst::Movsx { from: Size::B, dst: reg(*d), src: Operand::Reg(reg(*s)) })
            }
            Op::Shift(o, d, k) => {
                let op = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][*o as usize % 3];
                a.emit(Inst::Shift {
                    op,
                    size: Size::D,
                    dst: Operand::Reg(reg(*d)),
                    // Nonzero amounts only: a zero-count shift preserves
                    // flags on real hardware, which straight-line lifting
                    // does not model (and compilers never emit).
                    amount: ShiftAmount::Imm(1 + (*k % 31)),
                });
            }
            Op::Neg(d) => a.emit(Inst::Neg { size: Size::D, dst: Operand::Reg(reg(*d)) }),
            Op::Not(d) => a.emit(Inst::Not { size: Size::D, dst: Operand::Reg(reg(*d)) }),
            Op::StoreMem(s, r) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Mem(slot(*s)),
                src: Operand::Reg(reg(*r)),
            }),
            Op::LoadMem(r, s) => a.emit(Inst::Mov {
                size: Size::D,
                dst: Operand::Reg(reg(*r)),
                src: Operand::Mem(slot(*s)),
            }),
            Op::StoreByte(s, r) => a.emit(Inst::Mov {
                size: Size::B,
                dst: Operand::Mem(slot(*s)),
                src: Operand::Reg(reg(*r)),
            }),
            Op::LoadByteSx(r, s) => {
                a.emit(Inst::Movsx { from: Size::B, dst: reg(*r), src: Operand::Mem(slot(*s)) })
            }
            Op::CmpSet(x, y, cc, d) => {
                let cc =
                    [Cc::E, Cc::Ne, Cc::L, Cc::Le, Cc::G, Cc::Ge, Cc::B, Cc::Be, Cc::A, Cc::Ae]
                        [*cc as usize % 10];
                a.emit(Inst::Cmp {
                    size: Size::D,
                    a: Operand::Reg(reg(*x)),
                    b: Operand::Reg(reg(*y)),
                });
                a.emit(Inst::Setcc { cc, dst: reg(*d) });
            }
            Op::TestSet(x, y, cc, d) => {
                let cc = [Cc::E, Cc::Ne][*cc as usize % 2];
                a.emit(Inst::Test {
                    size: Size::D,
                    a: Operand::Reg(reg(*x)),
                    b: Operand::Reg(reg(*y)),
                });
                a.emit(Inst::Setcc { cc, dst: reg(*d) });
            }
            Op::Lea(d, b, i, disp) => {
                a.emit(Inst::Lea { dst: reg(*d), mem: Mem::base_index(reg(*b), reg(*i), 4, *disp) })
            }
            Op::ImulI(d, s, imm) => {
                a.emit(Inst::ImulI { dst: reg(*d), src: Operand::Reg(reg(*s)), imm: *imm })
            }
        }
    }
    // Fold every register into eax so the whole state is observable.
    for r in &GPRS[1..] {
        a.emit(Inst::Alu {
            op: AluOp::Xor,
            size: Size::D,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Reg(*r),
        });
    }
    a.emit(Inst::Halt);
    let mut img = Image::new();
    img.data = vec![0u8; 128];
    let out = a.finish(img.text_base);
    img.text = out.bytes;
    img.entry = img.text_base;
    img
}

#[test]
fn lifted_ir_matches_machine() {
    check(
        "lifted_ir_matches_machine",
        &Config::cases(64),
        |rng| vec_of(rng, 1, 40, arb_op),
        |ops| shrink_vec(ops),
        |ops| {
            let img = build(ops);
            let native = run_image(&img, vec![]);
            if !native.ok() {
                return Err(format!("native trap: {:?}", native.trap));
            }
            let lifted = lift_image(&img, &[vec![]]).map_err(|e| format!("lift failed: {e}"))?;
            wyt_ir::verify::verify_module(&lifted.module)
                .map_err(|e| format!("verify failed: {e}"))?;
            let out = Interp::new(&lifted.module, vec![], NoHooks).run();
            if !out.ok() {
                return Err(format!("lifted error: {:?}", out.error));
            }
            if out.exit_code != native.exit_code {
                return Err(format!(
                    "state checksum differs: lifted {} vs native {}",
                    out.exit_code, native.exit_code
                ));
            }
            Ok(())
        },
    );
}
