//! # wyt-isa — the machine layer of the WYTIWYG reproduction
//!
//! This crate defines a 32-bit, x86-*shaped* instruction set: eight general
//! purpose registers (with stale-upper-bits sub-register writes, as on x86),
//! `[base + index*scale + disp]` addressing, push/pop/call/ret stack
//! discipline, condition codes, and a small vector move (`vmov`) standing in
//! for SSE block moves. It deliberately reproduces every machine-level
//! behaviour the WYTIWYG paper reasons about — sp0-relative stack
//! references, register spills, tail calls, sub-register false dependencies,
//! out-of-bounds end pointers, jump tables — without the encoding baggage of
//! real x86.
//!
//! It also provides:
//! - a compact, total binary [`encode`]/[`decode`] pair,
//! - a two-pass [`asm::Asm`] assembler with labels,
//! - the [`image::Image`] executable format (text/data/imports/symbols),
//!   including the ground-truth [`image::FrameLayout`] sidecar used *only*
//!   by the accuracy evaluation (the analogue of LLVM's Stack Frame Layout
//!   analysis in the paper's §6.3).
//!
//! ```
//! use wyt_isa::{Inst, Operand, Reg, Size, encode, decode};
//! let inst = Inst::Mov { size: Size::D, dst: Operand::Reg(Reg::Eax), src: Operand::Imm(42) };
//! let mut buf = Vec::new();
//! encode(&inst, &mut buf);
//! let (back, len) = decode(&buf).unwrap();
//! assert_eq!(back, inst);
//! assert_eq!(len, buf.len());
//! ```

pub mod asm;
mod encode;
pub mod image;
mod inst;
pub mod limits;
pub mod trap;

pub use encode::{decode, encode, encoded_len, DecodeError};
pub use inst::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
pub use limits::{DecodeLimits, LimitError};
pub use trap::{GuardKind, GuardSite, TrapCode};

/// Number of general purpose registers.
pub const NUM_REGS: usize = 8;
