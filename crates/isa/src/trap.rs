//! Named trap codes and guard-site attribution.
//!
//! The recompiler compiles untraced paths to explicit trap instructions
//! (paper §7.2: what you trace is what you get — anything else traps).
//! Those traps used to be bare magic bytes; [`TrapCode`] names them, and
//! [`GuardSite`] is the per-module side table the backend emits so a
//! firing guard can be attributed to the function and site kind that
//! produced it — the raw material of the self-healing loop.

use std::fmt;

/// Reserved trap codes emitted by the recompiler itself. Codes below
/// [`TrapCode::FIRST_RESERVED`] are free for original-program traps and
/// pass through untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TrapCode {
    /// An untraced direct branch/fall-through target was reached.
    UntracedBranch = 0xfe,
    /// An untraced indirect jump or indirect-call target was reached.
    UntracedIndirect = 0xfd,
    /// Control reached IR `unreachable` (e.g. past a noreturn exit).
    Unreachable = 0xff,
}

impl TrapCode {
    /// Lowest code reserved for recompiler-emitted traps.
    pub const FIRST_RESERVED: u8 = 0xfd;

    /// The encoded trap-instruction payload.
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decode a trap payload into a named code, if it is one of ours.
    pub fn from_code(code: u8) -> Option<TrapCode> {
        match code {
            0xfe => Some(TrapCode::UntracedBranch),
            0xfd => Some(TrapCode::UntracedIndirect),
            0xff => Some(TrapCode::Unreachable),
            _ => None,
        }
    }

    /// `true` for the two guard codes — traps that mean "an untraced
    /// path was reached", as opposed to `Unreachable` or an original-
    /// program trap.
    pub fn is_guard(code: u8) -> bool {
        matches!(
            TrapCode::from_code(code),
            Some(TrapCode::UntracedBranch | TrapCode::UntracedIndirect)
        )
    }

    /// The guard kind for a guard code (`None` for non-guard codes).
    pub fn guard_kind(code: u8) -> Option<GuardKind> {
        match TrapCode::from_code(code) {
            Some(TrapCode::UntracedBranch) => Some(GuardKind::UntracedBranch),
            Some(TrapCode::UntracedIndirect) => Some(GuardKind::UntracedIndirect),
            _ => None,
        }
    }
}

impl fmt::Display for TrapCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCode::UntracedBranch => write!(f, "untraced-branch"),
            TrapCode::UntracedIndirect => write!(f, "untraced-indirect"),
            TrapCode::Unreachable => write!(f, "unreachable"),
        }
    }
}

/// What kind of untraced site a guard protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GuardKind {
    /// A direct branch / fall-through edge the trace never took.
    UntracedBranch,
    /// An indirect jump or indirect call to a target the trace never
    /// observed.
    UntracedIndirect,
}

impl GuardKind {
    /// The trap code a guard of this kind compiles to.
    pub const fn trap_code(self) -> TrapCode {
        match self {
            GuardKind::UntracedBranch => TrapCode::UntracedBranch,
            GuardKind::UntracedIndirect => TrapCode::UntracedIndirect,
        }
    }

    /// Stable short name (used in obs counters and reports).
    pub const fn name(self) -> &'static str {
        match self {
            GuardKind::UntracedBranch => "branch",
            GuardKind::UntracedIndirect => "indirect",
        }
    }

    /// Inverse of [`GuardKind::name`] (used when decoding persisted
    /// guard-site tables).
    pub fn from_name(name: &str) -> Option<GuardKind> {
        match name {
            "branch" => Some(GuardKind::UntracedBranch),
            "indirect" => Some(GuardKind::UntracedIndirect),
            _ => None,
        }
    }
}

impl fmt::Display for GuardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One guard trap site in a recompiled image: the machine address of the
/// emitted trap instruction, the IR function it belongs to, and the site
/// kind. The backend records one entry per guard trap it emits, sorted by
/// address, so a machine-level `TrapInst { pc, .. }` can be attributed
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardSite {
    /// Address of the trap instruction in the recompiled text segment.
    pub pc: u32,
    /// Index of the IR function containing the site.
    pub func: u32,
    /// Untraced-branch or untraced-indirect.
    pub kind: GuardKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for tc in [TrapCode::UntracedBranch, TrapCode::UntracedIndirect, TrapCode::Unreachable] {
            assert_eq!(TrapCode::from_code(tc.code()), Some(tc));
            assert!(tc.code() >= TrapCode::FIRST_RESERVED);
        }
        assert_eq!(TrapCode::from_code(0x07), None);
    }

    #[test]
    fn guard_partition() {
        assert!(TrapCode::is_guard(TrapCode::UntracedBranch.code()));
        assert!(TrapCode::is_guard(TrapCode::UntracedIndirect.code()));
        assert!(!TrapCode::is_guard(TrapCode::Unreachable.code()));
        assert!(!TrapCode::is_guard(9));
        assert_eq!(TrapCode::guard_kind(0xfe), Some(GuardKind::UntracedBranch));
        assert_eq!(TrapCode::guard_kind(0xfd), Some(GuardKind::UntracedIndirect));
        assert_eq!(TrapCode::guard_kind(0xff), None);
        assert_eq!(GuardKind::UntracedBranch.trap_code().code(), 0xfe);
        assert_eq!(GuardKind::UntracedIndirect.trap_code().code(), 0xfd);
        assert_eq!(GuardKind::UntracedBranch.name(), "branch");
        for k in [GuardKind::UntracedBranch, GuardKind::UntracedIndirect] {
            assert_eq!(GuardKind::from_name(k.name()), Some(k));
        }
        assert_eq!(GuardKind::from_name("bogus"), None);
    }
}
