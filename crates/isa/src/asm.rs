//! A small two-pass assembler with labels.
//!
//! Direct control transfers in this ISA carry absolute 32-bit targets, so
//! instruction lengths never depend on label values: the assembler lays out
//! all instructions once, then patches targets.
//!
//! ```
//! use wyt_isa::asm::Asm;
//! use wyt_isa::{Inst, Operand, Reg, Size};
//!
//! let mut a = Asm::new();
//! let loop_top = a.fresh_label();
//! a.emit(Inst::Mov { size: Size::D, dst: Operand::Reg(Reg::Ecx), src: Operand::Imm(3) });
//! a.bind(loop_top);
//! a.emit(Inst::Alu { op: wyt_isa::AluOp::Sub, size: Size::D,
//!                    dst: Operand::Reg(Reg::Ecx), src: Operand::Imm(1) });
//! a.jcc(wyt_isa::Cc::Ne, loop_top);
//! a.emit(Inst::Halt);
//! let out = a.finish(0x1000);
//! assert!(!out.bytes.is_empty());
//! ```

use crate::encode::{encode, encoded_len};
use crate::inst::{Cc, Inst};

/// An unresolved code position. Create with [`Asm::fresh_label`], place with
/// [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

#[derive(Debug, Clone)]
enum Item {
    Fixed(Inst),
    Jmp(Label),
    Jcc(Cc, Label),
    Call(Label),
    /// `push` of a label address (used for computed jump tables in tests).
    PushAddr(Label),
    /// `mov reg, imm(label address)` (function-address materialization).
    MovRegLabel(crate::Reg, Label),
}

/// Result of assembling: the encoded bytes plus resolved addresses.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// The encoded text bytes.
    pub bytes: Vec<u8>,
    /// Absolute address of each label, indexed by label id.
    pub label_addrs: Vec<u32>,
}

impl Assembled {
    /// Absolute address of `label`.
    pub fn addr_of(&self, label: Label) -> u32 {
        self.label_addrs[label.0 as usize]
    }
}

/// The assembler. See the [module documentation](self) for an example.
#[derive(Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    /// label id -> item index it is bound before
    bindings: Vec<Option<usize>>,
}

impl Asm {
    /// An empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Allocate a new, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() as u32 - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.bindings[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.items.len());
    }

    /// Allocate and immediately bind a label at the current position.
    pub fn here(&mut self) -> Label {
        let l = self.fresh_label();
        self.bind(l);
        l
    }

    /// Emit a fixed instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::Jmp(label));
    }

    /// Emit a conditional jump to `label`.
    pub fn jcc(&mut self, cc: Cc, label: Label) {
        self.items.push(Item::Jcc(cc, label));
    }

    /// Emit a direct call to `label`.
    pub fn call(&mut self, label: Label) {
        self.items.push(Item::Call(label));
    }

    /// Emit a `push` of the absolute address of `label`.
    pub fn push_addr(&mut self, label: Label) {
        self.items.push(Item::PushAddr(label));
    }

    /// Emit `mov reg, <address of label>`.
    pub fn mov_label(&mut self, reg: crate::Reg, label: Label) {
        self.items.push(Item::MovRegLabel(reg, label));
    }

    /// Number of items emitted so far (monotonic position marker).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lay out and encode everything at `base`.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(self, base: u32) -> Assembled {
        // Pass 1: compute the offset of every item. Lengths of label-using
        // items equal the length with a zero target.
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut off = 0usize;
        for item in &self.items {
            offsets.push(off);
            off += match item {
                Item::Fixed(i) => encoded_len(i),
                Item::Jmp(_) => encoded_len(&Inst::Jmp { target: 0 }),
                Item::Jcc(cc, _) => encoded_len(&Inst::Jcc { cc: *cc, target: 0 }),
                Item::Call(_) => encoded_len(&Inst::Call { target: 0 }),
                Item::PushAddr(_) => encoded_len(&Inst::Push { src: crate::Operand::Imm(0) }),
                Item::MovRegLabel(r, _) => encoded_len(&Inst::Mov {
                    size: crate::Size::D,
                    dst: crate::Operand::Reg(*r),
                    src: crate::Operand::Imm(0),
                }),
            };
        }
        offsets.push(off);

        let label_addrs: Vec<u32> = self
            .bindings
            .iter()
            .map(|b| match b {
                Some(idx) => base + offsets[*idx] as u32,
                None => u32::MAX, // unbound; only an error if referenced
            })
            .collect();

        let resolve = |l: &Label| {
            let a = label_addrs[l.0 as usize];
            assert_ne!(a, u32::MAX, "referenced label was never bound");
            a
        };

        // Pass 2: encode with resolved targets.
        let mut bytes = Vec::with_capacity(off);
        for item in &self.items {
            let inst = match item {
                Item::Fixed(i) => *i,
                Item::Jmp(l) => Inst::Jmp { target: resolve(l) },
                Item::Jcc(cc, l) => Inst::Jcc { cc: *cc, target: resolve(l) },
                Item::Call(l) => Inst::Call { target: resolve(l) },
                Item::PushAddr(l) => Inst::Push { src: crate::Operand::Imm(resolve(l) as i32) },
                Item::MovRegLabel(r, l) => Inst::Mov {
                    size: crate::Size::D,
                    dst: crate::Operand::Reg(*r),
                    src: crate::Operand::Imm(resolve(l) as i32),
                },
            };
            encode(&inst, &mut bytes);
        }
        debug_assert_eq!(bytes.len(), off);
        Assembled { bytes, label_addrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, Operand, Reg, Size};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.fresh_label();
        let back = a.here();
        a.emit(Inst::Nop);
        a.jmp(fwd);
        a.jcc(Cc::E, back);
        a.bind(fwd);
        a.emit(Inst::Halt);
        let out = a.finish(0x1000);

        assert_eq!(out.addr_of(back), 0x1000);
        // Walk and find the jmp target equals the halt address.
        let mut pos = 0;
        let mut insts = Vec::new();
        while pos < out.bytes.len() {
            let (i, l) = decode(&out.bytes[pos..]).unwrap();
            insts.push((0x1000 + pos as u32, i));
            pos += l;
        }
        let halt_addr = insts.iter().find(|(_, i)| *i == Inst::Halt).unwrap().0;
        assert!(insts
            .iter()
            .any(|(_, i)| matches!(i, Inst::Jmp { target } if *target == halt_addr)));
        assert!(insts
            .iter()
            .any(|(_, i)| matches!(i, Inst::Jcc { cc: Cc::E, target } if *target == 0x1000)));
        assert_eq!(out.addr_of(fwd), halt_addr);
    }

    #[test]
    fn call_and_push_addr() {
        let mut a = Asm::new();
        let f = a.fresh_label();
        a.push_addr(f);
        a.call(f);
        a.emit(Inst::Halt);
        a.bind(f);
        a.emit(Inst::Ret { pop: 0 });
        let out = a.finish(0x2000);
        let target = out.addr_of(f);

        let (push, l0) = decode(&out.bytes).unwrap();
        assert_eq!(push, Inst::Push { src: Operand::Imm(target as i32) });
        let (call, _) = decode(&out.bytes[l0..]).unwrap();
        assert_eq!(call, Inst::Call { target });
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_referenced_label_panics() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.jmp(l);
        let _ = a.finish(0);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn emit_positions_are_stable() {
        let mut a = Asm::new();
        a.emit(Inst::Mov { size: Size::D, dst: Operand::Reg(Reg::Eax), src: Operand::Imm(7) });
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
