//! Instruction, operand and register definitions.

use std::fmt;

/// A general purpose register. Mirrors the x86-32 GPR file: [`Reg::Esp`] is
/// the hardware stack pointer used by `push`/`pop`/`call`/`ret`, and
/// [`Reg::Ebp`] is conventionally (but not necessarily) the frame pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; return values live here by convention.
    Eax = 0,
    /// Count register; shift-by-register amounts use its low byte (`cl`).
    Ecx = 1,
    /// Data register.
    Edx = 2,
    /// Callee-saved by the default convention.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer by convention; callee-saved.
    Ebp = 5,
    /// Callee-saved.
    Esi = 6,
    /// Callee-saved.
    Edi = 7,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 8] =
        [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esp, Reg::Ebp, Reg::Esi, Reg::Edi];

    /// The register with encoding `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= 8`.
    pub fn from_index(idx: u8) -> Reg {
        Self::ALL[idx as usize]
    }

    /// The encoding index of the register (0..8).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Registers that the default calling convention requires a callee to
    /// preserve (`ebx`, `esp`, `ebp`, `esi`, `edi`). Note that WYTIWYG never
    /// *relies* on this — compilers may deviate for internal functions — it
    /// exists so the mini-C compiler can emit conventional code.
    pub fn is_callee_saved_by_convention(self) -> bool {
        matches!(self, Reg::Ebx | Reg::Esp | Reg::Ebp | Reg::Esi | Reg::Edi)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        };
        f.write_str(s)
    }
}

/// Operand size. Sub-register writes ([`Size::B`], [`Size::W`]) leave the
/// upper bits of the destination register *stale*, exactly like x86 — this
/// is the source of the "false derives" discussed in §4.2.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Size {
    /// 1 byte.
    B = 0,
    /// 2 bytes.
    W = 1,
    /// 4 bytes.
    D = 2,
}

impl Size {
    /// Width in bytes (1, 2 or 4).
    pub fn bytes(self) -> u32 {
        match self {
            Size::B => 1,
            Size::W => 2,
            Size::D => 4,
        }
    }

    /// Mask selecting the low `bytes()` of a 32-bit value.
    pub fn mask(self) -> u32 {
        match self {
            Size::B => 0xff,
            Size::W => 0xffff,
            Size::D => 0xffff_ffff,
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Size::B => "b",
            Size::W => "w",
            Size::D => "d",
        })
    }
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional scaled index: `(register, scale)` with scale ∈ {1, 2, 4, 8}.
    pub index: Option<(Reg, u8)>,
    /// Constant displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem { base: Some(base), index: None, disp }
    }

    /// `[disp]` — an absolute address.
    pub fn abs(disp: i32) -> Mem {
        Mem { base: None, index: None, disp }
    }

    /// `[base + index*scale + disp]`.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Mem {
        Mem { base: Some(base), index: Some((index, scale)), disp }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some((i, s)) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// An instruction operand: register, immediate or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate constant.
    Imm(i32),
    /// A memory operand.
    Mem(Mem),
}

impl Operand {
    /// `true` for [`Operand::Mem`].
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "${i}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Two-operand ALU operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Bitwise and. Used with constant masks for alignment — the bounds
    /// recovery runtime records alignment factors from these (§4.2.2).
    And = 2,
    /// Bitwise or.
    Or = 3,
    /// Bitwise xor.
    Xor = 4,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
        })
    }
}

/// Shift operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl = 0,
    /// Logical right shift.
    Shr = 1,
    /// Arithmetic right shift.
    Sar = 2,
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        })
    }
}

/// Shift amount: an immediate or the low byte of `ecx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftAmount {
    /// Constant shift amount (masked to 0..32).
    Imm(u8),
    /// Shift by `cl`.
    Cl,
}

/// Condition code for [`Inst::Jcc`] and [`Inst::Setcc`]. Signed and
/// unsigned comparisons are distinguished exactly as on x86.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cc {
    /// Equal (ZF).
    E = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less-than.
    L = 2,
    /// Signed less-or-equal.
    Le = 3,
    /// Signed greater-than.
    G = 4,
    /// Signed greater-or-equal.
    Ge = 5,
    /// Unsigned below.
    B = 6,
    /// Unsigned below-or-equal.
    Be = 7,
    /// Unsigned above.
    A = 8,
    /// Unsigned above-or-equal.
    Ae = 9,
    /// Sign flag set.
    S = 10,
    /// Sign flag clear.
    Ns = 11,
}

impl Cc {
    /// The condition testing the negation of `self`.
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::L => Cc::Ge,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
            Cc::Ge => Cc::L,
            Cc::B => Cc::Ae,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
            Cc::Ae => Cc::B,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
        }
    }

    /// All condition codes.
    pub const ALL: [Cc; 12] =
        [Cc::E, Cc::Ne, Cc::L, Cc::Le, Cc::G, Cc::Ge, Cc::B, Cc::Be, Cc::A, Cc::Ae, Cc::S, Cc::Ns];
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::L => "l",
            Cc::Le => "le",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::B => "b",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::Ae => "ae",
            Cc::S => "s",
            Cc::Ns => "ns",
        })
    }
}

/// A machine instruction.
///
/// The set is the subset of x86-32 that optimizing C compilers actually emit
/// for integer programs, plus [`Inst::VmovLd`]/[`Inst::VmovSt`] which stand
/// in for the 64-bit SSE moves modern compilers use for block copies (the
/// paper's SIMD-lifting pathology, §6.2), and [`Inst::Trap`] which the
/// recompiler emits on untraced paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stop execution with exit code in `eax`.
    Halt,
    /// `dst <- src`. Sub-register stores/loads only move the low bytes;
    /// register destinations keep stale upper bits. `Mem <- Mem` is invalid.
    Mov { size: Size, dst: Operand, src: Operand },
    /// Zero-extending load of a `from`-sized value into a full register.
    Movzx { from: Size, dst: Reg, src: Operand },
    /// Sign-extending load of a `from`-sized value into a full register.
    Movsx { from: Size, dst: Reg, src: Operand },
    /// `dst <- effective address of mem` (no memory access).
    Lea { dst: Reg, mem: Mem },
    /// `dst <- dst op src`, setting flags. `Mem op Mem` is invalid.
    Alu { op: AluOp, size: Size, dst: Operand, src: Operand },
    /// Compare `a` with `b` (computes `a - b`, sets flags, no writeback).
    Cmp { size: Size, a: Operand, b: Operand },
    /// Test `a` against `b` (computes `a & b`, sets flags, no writeback).
    Test { size: Size, a: Operand, b: Operand },
    /// 32-bit `dst <- dst * src` (low 32 bits).
    Imul { dst: Reg, src: Operand },
    /// 32-bit three-operand `dst <- src * imm`.
    ImulI { dst: Reg, src: Operand, imm: i32 },
    /// Signed division: `eax <- eax / src`, `edx <- eax % src`.
    /// (Simplification of x86 `cdq; idiv`: the dividend is `eax` alone.)
    Idiv { src: Operand },
    /// Two's complement negation (sets flags).
    Neg { size: Size, dst: Operand },
    /// Bitwise complement (no flags).
    Not { size: Size, dst: Operand },
    /// Shift `dst` by `amount` (sets ZF/SF on result).
    Shift { op: ShiftOp, size: Size, dst: Operand, amount: ShiftAmount },
    /// Push a 32-bit value: `esp -= 4; [esp] <- src`.
    Push { src: Operand },
    /// Pop a 32-bit value: `dst <- [esp]; esp += 4`.
    Pop { dst: Operand },
    /// Direct call: push return address, jump to `target`.
    Call { target: u32 },
    /// Indirect call through a register or memory operand.
    CallInd { target: Operand },
    /// Call an imported external function (index into the image's import
    /// table). Does *not* push a return address; arguments start at `[esp]`.
    CallExt { idx: u16 },
    /// Return: pop return address, then pop `pop` extra bytes of arguments.
    Ret { pop: u16 },
    /// Unconditional direct jump.
    Jmp { target: u32 },
    /// Indirect jump (jump tables, computed gotos).
    JmpInd { target: Operand },
    /// Conditional direct jump.
    Jcc { cc: Cc, target: u32 },
    /// Set the low byte of `dst` to 0/1 according to `cc` (upper bits stale).
    Setcc { cc: Cc, dst: Reg },
    /// `esp <- ebp; ebp <- pop()` — the x86 frame epilogue.
    Leave,
    /// Load 8 bytes at `mem` into the vector register `v0`.
    VmovLd { mem: Mem },
    /// Store the 8 bytes of `v0` to `mem`.
    VmovSt { mem: Mem },
    /// Abort execution with a trap code (recompiler-emitted guard).
    Trap { code: u8 },
}

impl Inst {
    /// `true` if the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Halt
                | Inst::Ret { .. }
                | Inst::Jmp { .. }
                | Inst::JmpInd { .. }
                | Inst::Jcc { .. }
                | Inst::Trap { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::Mov { size, dst, src } => write!(f, "mov{size} {dst}, {src}"),
            Inst::Movzx { from, dst, src } => write!(f, "movzx{from} {dst}, {src}"),
            Inst::Movsx { from, dst, src } => write!(f, "movsx{from} {dst}, {src}"),
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::Alu { op, size, dst, src } => write!(f, "{op}{size} {dst}, {src}"),
            Inst::Cmp { size, a, b } => write!(f, "cmp{size} {a}, {b}"),
            Inst::Test { size, a, b } => write!(f, "test{size} {a}, {b}"),
            Inst::Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::ImulI { dst, src, imm } => write!(f, "imul {dst}, {src}, {imm}"),
            Inst::Idiv { src } => write!(f, "idiv {src}"),
            Inst::Neg { size, dst } => write!(f, "neg{size} {dst}"),
            Inst::Not { size, dst } => write!(f, "not{size} {dst}"),
            Inst::Shift { op, size, dst, amount } => match amount {
                ShiftAmount::Imm(i) => write!(f, "{op}{size} {dst}, {i}"),
                ShiftAmount::Cl => write!(f, "{op}{size} {dst}, cl"),
            },
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::Call { target } => write!(f, "call {target:#x}"),
            Inst::CallInd { target } => write!(f, "call {target}"),
            Inst::CallExt { idx } => write!(f, "callext #{idx}"),
            Inst::Ret { pop } => {
                if *pop == 0 {
                    write!(f, "ret")
                } else {
                    write!(f, "ret {pop}")
                }
            }
            Inst::Jmp { target } => write!(f, "jmp {target:#x}"),
            Inst::JmpInd { target } => write!(f, "jmp {target}"),
            Inst::Jcc { cc, target } => write!(f, "j{cc} {target:#x}"),
            Inst::Setcc { cc, dst } => write!(f, "set{cc} {dst}"),
            Inst::Leave => write!(f, "leave"),
            Inst::VmovLd { mem } => write!(f, "vmov v0, {mem}"),
            Inst::VmovSt { mem } => write!(f, "vmov {mem}, v0"),
            Inst::Trap { code } => write!(f, "trap {code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), r);
        }
    }

    #[test]
    fn cc_negate_is_involution() {
        for cc in Cc::ALL {
            assert_eq!(cc.negate().negate(), cc);
        }
    }

    #[test]
    fn size_masks() {
        assert_eq!(Size::B.mask(), 0xff);
        assert_eq!(Size::W.mask(), 0xffff);
        assert_eq!(Size::D.mask(), u32::MAX);
        assert_eq!(Size::B.bytes() + Size::W.bytes() + Size::D.bytes(), 7);
    }

    #[test]
    fn display_formats() {
        let m = Mem::base_index(Reg::Ebp, Reg::Eax, 8, -44);
        assert_eq!(m.to_string(), "[ebp+eax*8-44]");
        let i = Inst::Mov { size: Size::D, dst: Operand::Mem(m), src: Operand::Reg(Reg::Ecx) };
        assert_eq!(i.to_string(), "movd [ebp+eax*8-44], ecx");
        assert_eq!(Inst::Ret { pop: 0 }.to_string(), "ret");
        assert_eq!(Inst::Jcc { cc: Cc::Le, target: 0x40 }.to_string(), "jle 0x40");
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret { pop: 0 }.is_terminator());
        assert!(Inst::Jmp { target: 0 }.is_terminator());
        assert!(!Inst::Call { target: 0 }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
    }
}
