//! The executable image format and its ground-truth debug sidecar.
//!
//! An [`Image`] is the reproduction's stand-in for a COTS ELF binary: a text
//! segment of encoded instructions, an initialized data segment, a BSS size,
//! an import table of external ("libc") functions, an entry point and an
//! optional symbol table. [`FrameLayout`] records, per function, the
//! compiler's actual placement of stack objects — the analogue of LLVM 16's
//! Stack Frame Layout analysis that the paper compares against in §6.3. It
//! is **never** consulted by the lifter or by WYTIWYG itself, only by the
//! accuracy evaluation.

use std::fmt;

/// Default load address of the text segment.
pub const TEXT_BASE: u32 = 0x0010_0000;
/// Default load address of the data segment (globals, string literals,
/// jump tables).
pub const DATA_BASE: u32 = 0x0040_0000;
/// Start of the heap served by the emulated `malloc`.
pub const HEAP_BASE: u32 = 0x0080_0000;
/// Initial stack pointer of a native run (the stack grows down).
pub const STACK_TOP: u32 = 0x0ff0_0000;

/// A named code address (function symbols).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Virtual address.
    pub addr: u32,
}

/// Classification of a ground-truth stack object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GtVarKind {
    /// A named source-level local (scalar, array or struct).
    Named,
    /// A compiler-introduced spill slot.
    Spill,
}

/// A ground-truth stack object within one frame.
///
/// Offsets are relative to `sp0`, the value of `esp` immediately after the
/// `call` into the function (so the return address occupies `[sp0, sp0+4)`
/// and locals live at negative offsets), matching the paper's convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtVar {
    /// Source name, or a synthesized name for spill slots.
    pub name: String,
    /// Offset of the object's lowest byte relative to sp0 (negative for
    /// locals).
    pub sp0_offset: i32,
    /// Object size in bytes.
    pub size: u32,
    /// Whether this is a source local or a spill slot.
    pub kind: GtVarKind,
}

/// Ground-truth stack layout of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameLayout {
    /// Entry address of the function.
    pub func: u32,
    /// Function name (for reporting).
    pub func_name: String,
    /// Stack objects, in no particular order.
    pub vars: Vec<GtVar>,
}

/// A recorded "relocation": the word at `data_offset` within the data
/// segment holds an absolute code address (jump-table entries). Binaries
/// built as position independent code omit these records and store
/// table-relative offsets instead — which is exactly what defeats
/// SecondWrite-style static jump-table recovery in the paper's §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeReloc {
    /// Byte offset of the 32-bit slot within the data segment.
    pub data_offset: u32,
}

/// An executable image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    /// Load address of `text`.
    pub text_base: u32,
    /// Encoded instruction stream.
    pub text: Vec<u8>,
    /// Load address of `data`.
    pub data_base: u32,
    /// Initialized data.
    pub data: Vec<u8>,
    /// Size of zero-initialized memory following `data`.
    pub bss_size: u32,
    /// Entry point address.
    pub entry: u32,
    /// Imported external function names; `CallExt { idx }` indexes this.
    pub imports: Vec<String>,
    /// Function symbols (may be empty for "stripped" images).
    pub symbols: Vec<Symbol>,
    /// Ground-truth stack layouts (debug sidecar; evaluation only).
    pub frame_layouts: Vec<FrameLayout>,
    /// Absolute-address relocations in `data` (absent under PIC).
    pub code_relocs: Vec<CodeReloc>,
    /// Whether the image was built as position independent code.
    pub pic: bool,
    /// Guard trap sites emitted by the recompiler, sorted by address.
    /// Empty for original (non-recompiled) images.
    pub guard_sites: Vec<crate::trap::GuardSite>,
}

impl Image {
    /// An empty image with the default segment bases.
    pub fn new() -> Image {
        Image { text_base: TEXT_BASE, data_base: DATA_BASE, ..Image::default() }
    }

    /// End address (exclusive) of the text segment. Saturates at
    /// `u32::MAX` for images whose text would wrap the address space
    /// (such images fail `DecodeLimits::validate_image`; this keeps
    /// inspection of them panic-free in the meantime).
    pub fn text_end(&self) -> u32 {
        let end = u64::from(self.text_base) + self.text.len() as u64;
        u32::try_from(end).unwrap_or(u32::MAX)
    }

    /// `true` if `addr` lies within the text segment.
    pub fn contains_code(&self, addr: u32) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }

    /// Decode the instruction at virtual address `addr`.
    ///
    /// # Errors
    /// Returns an error if `addr` is outside the text segment or the bytes
    /// do not form a valid instruction.
    pub fn decode_at(&self, addr: u32) -> Result<(crate::Inst, usize), ImageError> {
        if !self.contains_code(addr) {
            return Err(ImageError::BadCodeAddress(addr));
        }
        let off = (addr - self.text_base) as usize;
        crate::decode(&self.text[off..]).map_err(|e| ImageError::Decode(addr, e))
    }

    /// Look up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    /// Look up the name of the symbol at `addr`, if any.
    pub fn symbol_name_at(&self, addr: u32) -> Option<&str> {
        self.symbols.iter().find(|s| s.addr == addr).map(|s| s.name.as_str())
    }

    /// The ground-truth frame layout for the function at `addr`, if any.
    pub fn frame_layout_at(&self, addr: u32) -> Option<&FrameLayout> {
        self.frame_layouts.iter().find(|f| f.func == addr)
    }

    /// Return a copy with symbol table and ground truth removed, as a
    /// "stripped COTS binary" (what the recompiler actually consumes).
    pub fn stripped(&self) -> Image {
        let mut img = self.clone();
        img.symbols.clear();
        img.frame_layouts.clear();
        img
    }

    /// Disassemble the whole text segment (debugging aid).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let mut addr = self.text_base;
        use std::fmt::Write as _;
        while addr < self.text_end() {
            match self.decode_at(addr) {
                Ok((inst, len)) => {
                    if let Some(name) = self.symbol_name_at(addr) {
                        let _ = writeln!(out, "{name}:");
                    }
                    let _ = writeln!(out, "  {addr:#08x}: {inst}");
                    addr += len as u32;
                }
                Err(_) => {
                    let _ = writeln!(out, "  {addr:#08x}: <bad>");
                    break;
                }
            }
        }
        out
    }
}

/// Errors raised by image inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The address is not inside the text segment.
    BadCodeAddress(u32),
    /// The bytes at the address are not a valid instruction.
    Decode(u32, crate::DecodeError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadCodeAddress(a) => write!(f, "address {a:#x} is not code"),
            ImageError::Decode(a, e) => write!(f, "bad instruction at {a:#x}: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, Inst};

    fn tiny_image() -> Image {
        let mut img = Image::new();
        encode(&Inst::Nop, &mut img.text);
        encode(&Inst::Halt, &mut img.text);
        img.entry = img.text_base;
        img.symbols.push(Symbol { name: "main".into(), addr: img.text_base });
        img.frame_layouts.push(FrameLayout {
            func: img.text_base,
            func_name: "main".into(),
            vars: vec![GtVar { name: "x".into(), sp0_offset: -8, size: 4, kind: GtVarKind::Named }],
        });
        img
    }

    #[test]
    fn decode_at_walks_text() {
        let img = tiny_image();
        let (i0, l0) = img.decode_at(img.text_base).unwrap();
        assert_eq!(i0, Inst::Nop);
        let (i1, _) = img.decode_at(img.text_base + l0 as u32).unwrap();
        assert_eq!(i1, Inst::Halt);
        assert!(img.decode_at(0).is_err());
    }

    #[test]
    fn symbols_and_ground_truth() {
        let img = tiny_image();
        assert_eq!(img.symbol("main"), Some(img.text_base));
        assert_eq!(img.symbol("absent"), None);
        assert_eq!(img.symbol_name_at(img.text_base), Some("main"));
        assert_eq!(img.frame_layout_at(img.text_base).unwrap().vars.len(), 1);
    }

    #[test]
    fn stripped_removes_debug_info() {
        let img = tiny_image().stripped();
        assert!(img.symbols.is_empty());
        assert!(img.frame_layouts.is_empty());
        assert_eq!(img.text.len(), 2 + 0); // nop + halt are 1 byte each
    }

    #[test]
    fn disassemble_lists_all() {
        let img = tiny_image();
        let dis = img.disassemble();
        assert!(dis.contains("main:"));
        assert!(dis.contains("nop"));
        assert!(dis.contains("halt"));
    }
}
