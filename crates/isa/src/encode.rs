//! Binary encoding and decoding of instructions.
//!
//! The encoding is compact and total: one opcode byte, followed by operand
//! bytes. It is *not* x86 machine code — the paper's algorithms are
//! independent of encoding details — but it is a real variable-length
//! encoding that must be decoded at arbitrary program counters, which is all
//! a lifter cares about.

use crate::inst::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
use std::fmt;

/// Error produced by [`decode`] on malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended in the middle of an instruction.
    Truncated,
    /// An unknown opcode byte.
    BadOpcode(u8),
    /// A field had an out-of-range value.
    BadField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadField(what) => write!(f, "malformed {what} field"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const MOVZX: u8 = 0x03;
    pub const MOVSX: u8 = 0x04;
    pub const LEA: u8 = 0x05;
    pub const ALU: u8 = 0x06;
    pub const CMP: u8 = 0x07;
    pub const TEST: u8 = 0x08;
    pub const IMUL: u8 = 0x09;
    pub const IMULI: u8 = 0x0a;
    pub const IDIV: u8 = 0x0b;
    pub const NEG: u8 = 0x0c;
    pub const NOT: u8 = 0x0d;
    pub const SHIFT: u8 = 0x0e;
    pub const PUSH: u8 = 0x0f;
    pub const POP: u8 = 0x10;
    pub const CALL: u8 = 0x11;
    pub const CALLIND: u8 = 0x12;
    pub const CALLEXT: u8 = 0x13;
    pub const RET: u8 = 0x14;
    pub const JMP: u8 = 0x15;
    pub const JMPIND: u8 = 0x16;
    pub const JCC: u8 = 0x17;
    pub const SETCC: u8 = 0x18;
    pub const LEAVE: u8 = 0x19;
    pub const VMOVLD: u8 = 0x1a;
    pub const VMOVST: u8 = 0x1b;
    pub const TRAP: u8 = 0x1c;
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_mem(buf: &mut Vec<u8>, m: &Mem) {
    let mut flags = 0u8;
    if let Some(b) = m.base {
        flags |= 0x08 | b.index() as u8;
    }
    if let Some((i, _)) = m.index {
        flags |= 0x80 | ((i.index() as u8) << 4);
    }
    buf.push(flags);
    if let Some((_, scale)) = m.index {
        buf.push(scale);
    }
    put_i32(buf, m.disp);
}

fn put_operand(buf: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            buf.push(0);
            buf.push(r.index() as u8);
        }
        Operand::Imm(i) => {
            buf.push(1);
            put_i32(buf, *i);
        }
        Operand::Mem(m) => {
            buf.push(2);
            put_mem(buf, m);
        }
    }
}

/// Append the encoding of `inst` to `buf`.
pub fn encode(inst: &Inst, buf: &mut Vec<u8>) {
    match inst {
        Inst::Nop => buf.push(op::NOP),
        Inst::Halt => buf.push(op::HALT),
        Inst::Mov { size, dst, src } => {
            buf.push(op::MOV);
            buf.push(*size as u8);
            put_operand(buf, dst);
            put_operand(buf, src);
        }
        Inst::Movzx { from, dst, src } => {
            buf.push(op::MOVZX);
            buf.push(*from as u8);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::Movsx { from, dst, src } => {
            buf.push(op::MOVSX);
            buf.push(*from as u8);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::Lea { dst, mem } => {
            buf.push(op::LEA);
            buf.push(dst.index() as u8);
            put_mem(buf, mem);
        }
        Inst::Alu { op: a, size, dst, src } => {
            buf.push(op::ALU);
            buf.push(*a as u8);
            buf.push(*size as u8);
            put_operand(buf, dst);
            put_operand(buf, src);
        }
        Inst::Cmp { size, a, b } => {
            buf.push(op::CMP);
            buf.push(*size as u8);
            put_operand(buf, a);
            put_operand(buf, b);
        }
        Inst::Test { size, a, b } => {
            buf.push(op::TEST);
            buf.push(*size as u8);
            put_operand(buf, a);
            put_operand(buf, b);
        }
        Inst::Imul { dst, src } => {
            buf.push(op::IMUL);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::ImulI { dst, src, imm } => {
            buf.push(op::IMULI);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
            put_i32(buf, *imm);
        }
        Inst::Idiv { src } => {
            buf.push(op::IDIV);
            put_operand(buf, src);
        }
        Inst::Neg { size, dst } => {
            buf.push(op::NEG);
            buf.push(*size as u8);
            put_operand(buf, dst);
        }
        Inst::Not { size, dst } => {
            buf.push(op::NOT);
            buf.push(*size as u8);
            put_operand(buf, dst);
        }
        Inst::Shift { op: s, size, dst, amount } => {
            buf.push(op::SHIFT);
            buf.push(*s as u8);
            buf.push(*size as u8);
            put_operand(buf, dst);
            match amount {
                ShiftAmount::Imm(i) => {
                    buf.push(0);
                    buf.push(*i);
                }
                ShiftAmount::Cl => buf.push(1),
            }
        }
        Inst::Push { src } => {
            buf.push(op::PUSH);
            put_operand(buf, src);
        }
        Inst::Pop { dst } => {
            buf.push(op::POP);
            put_operand(buf, dst);
        }
        Inst::Call { target } => {
            buf.push(op::CALL);
            put_u32(buf, *target);
        }
        Inst::CallInd { target } => {
            buf.push(op::CALLIND);
            put_operand(buf, target);
        }
        Inst::CallExt { idx } => {
            buf.push(op::CALLEXT);
            put_u16(buf, *idx);
        }
        Inst::Ret { pop } => {
            buf.push(op::RET);
            put_u16(buf, *pop);
        }
        Inst::Jmp { target } => {
            buf.push(op::JMP);
            put_u32(buf, *target);
        }
        Inst::JmpInd { target } => {
            buf.push(op::JMPIND);
            put_operand(buf, target);
        }
        Inst::Jcc { cc, target } => {
            buf.push(op::JCC);
            buf.push(*cc as u8);
            put_u32(buf, *target);
        }
        Inst::Setcc { cc, dst } => {
            buf.push(op::SETCC);
            buf.push(*cc as u8);
            buf.push(dst.index() as u8);
        }
        Inst::Leave => buf.push(op::LEAVE),
        Inst::VmovLd { mem } => {
            buf.push(op::VMOVLD);
            put_mem(buf, mem);
        }
        Inst::VmovSt { mem } => {
            buf.push(op::VMOVST);
            put_mem(buf, mem);
        }
        Inst::Trap { code } => {
            buf.push(op::TRAP);
            buf.push(*code);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let lo = self.u16()? as u32;
        let hi = self.u16()? as u32;
        Ok(lo | (hi << 16))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        if b >= 8 {
            return Err(DecodeError::BadField("register"));
        }
        Ok(Reg::from_index(b))
    }

    fn size(&mut self) -> Result<Size, DecodeError> {
        match self.u8()? {
            0 => Ok(Size::B),
            1 => Ok(Size::W),
            2 => Ok(Size::D),
            _ => Err(DecodeError::BadField("size")),
        }
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        let base = if flags & 0x08 != 0 {
            Some(Reg::from_index(flags & 0x07))
        } else {
            None
        };
        let index = if flags & 0x80 != 0 {
            let reg = Reg::from_index((flags >> 4) & 0x07);
            let scale = self.u8()?;
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadField("scale"));
            }
            Some((reg, scale))
        } else {
            None
        };
        let disp = self.i32()?;
        Ok(Mem { base, index, disp })
    }

    fn operand(&mut self) -> Result<Operand, DecodeError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::Imm(self.i32()?)),
            2 => Ok(Operand::Mem(self.mem()?)),
            _ => Err(DecodeError::BadField("operand tag")),
        }
    }

    fn cc(&mut self) -> Result<Cc, DecodeError> {
        let b = self.u8()?;
        Cc::ALL
            .get(b as usize)
            .copied()
            .ok_or(DecodeError::BadField("condition code"))
    }
}

/// Decode one instruction from the start of `buf`.
///
/// Returns the instruction and the number of bytes consumed.
///
/// # Errors
/// Returns a [`DecodeError`] if the bytes are truncated or malformed.
pub fn decode(buf: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let opcode = c.u8()?;
    let inst = match opcode {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::MOV => {
            let size = c.size()?;
            let dst = c.operand()?;
            let src = c.operand()?;
            Inst::Mov { size, dst, src }
        }
        op::MOVZX => {
            let from = c.size()?;
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Movzx { from, dst, src }
        }
        op::MOVSX => {
            let from = c.size()?;
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Movsx { from, dst, src }
        }
        op::LEA => {
            let dst = c.reg()?;
            let mem = c.mem()?;
            Inst::Lea { dst, mem }
        }
        op::ALU => {
            let a = match c.u8()? {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::And,
                3 => AluOp::Or,
                4 => AluOp::Xor,
                _ => return Err(DecodeError::BadField("alu op")),
            };
            let size = c.size()?;
            let dst = c.operand()?;
            let src = c.operand()?;
            Inst::Alu { op: a, size, dst, src }
        }
        op::CMP => {
            let size = c.size()?;
            let a = c.operand()?;
            let b = c.operand()?;
            Inst::Cmp { size, a, b }
        }
        op::TEST => {
            let size = c.size()?;
            let a = c.operand()?;
            let b = c.operand()?;
            Inst::Test { size, a, b }
        }
        op::IMUL => {
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Imul { dst, src }
        }
        op::IMULI => {
            let dst = c.reg()?;
            let src = c.operand()?;
            let imm = c.i32()?;
            Inst::ImulI { dst, src, imm }
        }
        op::IDIV => Inst::Idiv { src: c.operand()? },
        op::NEG => {
            let size = c.size()?;
            let dst = c.operand()?;
            Inst::Neg { size, dst }
        }
        op::NOT => {
            let size = c.size()?;
            let dst = c.operand()?;
            Inst::Not { size, dst }
        }
        op::SHIFT => {
            let s = match c.u8()? {
                0 => ShiftOp::Shl,
                1 => ShiftOp::Shr,
                2 => ShiftOp::Sar,
                _ => return Err(DecodeError::BadField("shift op")),
            };
            let size = c.size()?;
            let dst = c.operand()?;
            let amount = match c.u8()? {
                0 => ShiftAmount::Imm(c.u8()?),
                1 => ShiftAmount::Cl,
                _ => return Err(DecodeError::BadField("shift amount")),
            };
            Inst::Shift { op: s, size, dst, amount }
        }
        op::PUSH => Inst::Push { src: c.operand()? },
        op::POP => Inst::Pop { dst: c.operand()? },
        op::CALL => Inst::Call { target: c.u32()? },
        op::CALLIND => Inst::CallInd { target: c.operand()? },
        op::CALLEXT => Inst::CallExt { idx: c.u16()? },
        op::RET => Inst::Ret { pop: c.u16()? },
        op::JMP => Inst::Jmp { target: c.u32()? },
        op::JMPIND => Inst::JmpInd { target: c.operand()? },
        op::JCC => {
            let cc = c.cc()?;
            let target = c.u32()?;
            Inst::Jcc { cc, target }
        }
        op::SETCC => {
            let cc = c.cc()?;
            let dst = c.reg()?;
            Inst::Setcc { cc, dst }
        }
        op::LEAVE => Inst::Leave,
        op::VMOVLD => Inst::VmovLd { mem: c.mem()? },
        op::VMOVST => Inst::VmovSt { mem: c.mem()? },
        op::TRAP => Inst::Trap { code: c.u8()? },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((inst, c.pos))
}

/// Encoded length of an instruction without materializing the bytes twice.
pub fn encoded_len(inst: &Inst) -> usize {
    let mut buf = Vec::with_capacity(16);
    encode(inst, &mut buf);
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(i: Inst) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (back, len) = decode(&buf).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn simple_roundtrips() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        roundtrip(Inst::Leave);
        roundtrip(Inst::Ret { pop: 8 });
        roundtrip(Inst::Call { target: 0xdead_beef });
        roundtrip(Inst::CallExt { idx: 7 });
        roundtrip(Inst::Trap { code: 3 });
        roundtrip(Inst::Jcc { cc: Cc::Ae, target: 0x1234 });
        roundtrip(Inst::Setcc { cc: Cc::Ns, dst: Reg::Edx });
        roundtrip(Inst::Lea {
            dst: Reg::Eax,
            mem: Mem::base_index(Reg::Ebp, Reg::Ecx, 8, -44),
        });
        roundtrip(Inst::VmovLd { mem: Mem::base_disp(Reg::Esi, 16) });
        roundtrip(Inst::VmovSt { mem: Mem::abs(0x4000) });
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        // Truncated mov.
        assert_eq!(decode(&[super::op::MOV, 2, 0]), Err(DecodeError::Truncated));
        // Bad register index.
        assert_eq!(
            decode(&[super::op::MOV, 2, 0, 9, 0, 0]),
            Err(DecodeError::BadField("register"))
        );
        // Bad scale.
        let mut buf = vec![super::op::LEA, 0, 0x80 | 0x08, 3];
        buf.extend_from_slice(&0i32.to_le_bytes());
        assert_eq!(decode(&buf), Err(DecodeError::BadField("scale")));
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..8).prop_map(Reg::from_index)
    }

    fn arb_size() -> impl Strategy<Value = Size> {
        prop_oneof![Just(Size::B), Just(Size::W), Just(Size::D)]
    }

    fn arb_mem() -> impl Strategy<Value = Mem> {
        (
            proptest::option::of(arb_reg()),
            proptest::option::of((arb_reg(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])),
            any::<i32>(),
        )
            .prop_map(|(base, index, disp)| Mem { base, index, disp })
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            arb_reg().prop_map(Operand::Reg),
            any::<i32>().prop_map(Operand::Imm),
            arb_mem().prop_map(Operand::Mem),
        ]
    }

    fn arb_cc() -> impl Strategy<Value = Cc> {
        (0usize..Cc::ALL.len()).prop_map(|i| Cc::ALL[i])
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            Just(Inst::Nop),
            Just(Inst::Halt),
            Just(Inst::Leave),
            (arb_size(), arb_operand(), arb_operand())
                .prop_map(|(size, dst, src)| Inst::Mov { size, dst, src }),
            (arb_size(), arb_reg(), arb_operand())
                .prop_map(|(from, dst, src)| Inst::Movzx { from, dst, src }),
            (arb_size(), arb_reg(), arb_operand())
                .prop_map(|(from, dst, src)| Inst::Movsx { from, dst, src }),
            (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
            (
                prop_oneof![
                    Just(AluOp::Add),
                    Just(AluOp::Sub),
                    Just(AluOp::And),
                    Just(AluOp::Or),
                    Just(AluOp::Xor)
                ],
                arb_size(),
                arb_operand(),
                arb_operand()
            )
                .prop_map(|(op, size, dst, src)| Inst::Alu { op, size, dst, src }),
            (arb_size(), arb_operand(), arb_operand())
                .prop_map(|(size, a, b)| Inst::Cmp { size, a, b }),
            (arb_size(), arb_operand(), arb_operand())
                .prop_map(|(size, a, b)| Inst::Test { size, a, b }),
            (arb_reg(), arb_operand()).prop_map(|(dst, src)| Inst::Imul { dst, src }),
            (arb_reg(), arb_operand(), any::<i32>())
                .prop_map(|(dst, src, imm)| Inst::ImulI { dst, src, imm }),
            arb_operand().prop_map(|src| Inst::Idiv { src }),
            (arb_size(), arb_operand()).prop_map(|(size, dst)| Inst::Neg { size, dst }),
            (arb_size(), arb_operand()).prop_map(|(size, dst)| Inst::Not { size, dst }),
            (
                prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
                arb_size(),
                arb_operand(),
                prop_oneof![any::<u8>().prop_map(ShiftAmount::Imm), Just(ShiftAmount::Cl)]
            )
                .prop_map(|(op, size, dst, amount)| Inst::Shift { op, size, dst, amount }),
            arb_operand().prop_map(|src| Inst::Push { src }),
            arb_operand().prop_map(|dst| Inst::Pop { dst }),
            any::<u32>().prop_map(|target| Inst::Call { target }),
            arb_operand().prop_map(|target| Inst::CallInd { target }),
            any::<u16>().prop_map(|idx| Inst::CallExt { idx }),
            any::<u16>().prop_map(|pop| Inst::Ret { pop }),
            any::<u32>().prop_map(|target| Inst::Jmp { target }),
            arb_operand().prop_map(|target| Inst::JmpInd { target }),
            (arb_cc(), any::<u32>()).prop_map(|(cc, target)| Inst::Jcc { cc, target }),
            (arb_cc(), arb_reg()).prop_map(|(cc, dst)| Inst::Setcc { cc, dst }),
            arb_mem().prop_map(|mem| Inst::VmovLd { mem }),
            arb_mem().prop_map(|mem| Inst::VmovSt { mem }),
            any::<u8>().prop_map(|code| Inst::Trap { code }),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(inst in arb_inst()) {
            roundtrip(inst);
        }

        #[test]
        fn prop_encoded_len_matches(inst in arb_inst()) {
            let mut buf = Vec::new();
            encode(&inst, &mut buf);
            prop_assert_eq!(encoded_len(&inst), buf.len());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
            let _ = decode(&bytes);
        }
    }
}
