//! Binary encoding and decoding of instructions.
//!
//! The encoding is compact and total: one opcode byte, followed by operand
//! bytes. It is *not* x86 machine code — the paper's algorithms are
//! independent of encoding details — but it is a real variable-length
//! encoding that must be decoded at arbitrary program counters, which is all
//! a lifter cares about.

use crate::inst::{AluOp, Cc, Inst, Mem, Operand, Reg, ShiftAmount, ShiftOp, Size};
use std::fmt;

/// Error produced by [`decode`] on malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended in the middle of an instruction.
    Truncated,
    /// An unknown opcode byte.
    BadOpcode(u8),
    /// A field had an out-of-range value.
    BadField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadField(what) => write!(f, "malformed {what} field"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const MOVZX: u8 = 0x03;
    pub const MOVSX: u8 = 0x04;
    pub const LEA: u8 = 0x05;
    pub const ALU: u8 = 0x06;
    pub const CMP: u8 = 0x07;
    pub const TEST: u8 = 0x08;
    pub const IMUL: u8 = 0x09;
    pub const IMULI: u8 = 0x0a;
    pub const IDIV: u8 = 0x0b;
    pub const NEG: u8 = 0x0c;
    pub const NOT: u8 = 0x0d;
    pub const SHIFT: u8 = 0x0e;
    pub const PUSH: u8 = 0x0f;
    pub const POP: u8 = 0x10;
    pub const CALL: u8 = 0x11;
    pub const CALLIND: u8 = 0x12;
    pub const CALLEXT: u8 = 0x13;
    pub const RET: u8 = 0x14;
    pub const JMP: u8 = 0x15;
    pub const JMPIND: u8 = 0x16;
    pub const JCC: u8 = 0x17;
    pub const SETCC: u8 = 0x18;
    pub const LEAVE: u8 = 0x19;
    pub const VMOVLD: u8 = 0x1a;
    pub const VMOVST: u8 = 0x1b;
    pub const TRAP: u8 = 0x1c;
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_mem(buf: &mut Vec<u8>, m: &Mem) {
    let mut flags = 0u8;
    if let Some(b) = m.base {
        flags |= 0x08 | b.index() as u8;
    }
    if let Some((i, _)) = m.index {
        flags |= 0x80 | ((i.index() as u8) << 4);
    }
    buf.push(flags);
    if let Some((_, scale)) = m.index {
        buf.push(scale);
    }
    put_i32(buf, m.disp);
}

fn put_operand(buf: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            buf.push(0);
            buf.push(r.index() as u8);
        }
        Operand::Imm(i) => {
            buf.push(1);
            put_i32(buf, *i);
        }
        Operand::Mem(m) => {
            buf.push(2);
            put_mem(buf, m);
        }
    }
}

/// Append the encoding of `inst` to `buf`.
pub fn encode(inst: &Inst, buf: &mut Vec<u8>) {
    match inst {
        Inst::Nop => buf.push(op::NOP),
        Inst::Halt => buf.push(op::HALT),
        Inst::Mov { size, dst, src } => {
            buf.push(op::MOV);
            buf.push(*size as u8);
            put_operand(buf, dst);
            put_operand(buf, src);
        }
        Inst::Movzx { from, dst, src } => {
            buf.push(op::MOVZX);
            buf.push(*from as u8);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::Movsx { from, dst, src } => {
            buf.push(op::MOVSX);
            buf.push(*from as u8);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::Lea { dst, mem } => {
            buf.push(op::LEA);
            buf.push(dst.index() as u8);
            put_mem(buf, mem);
        }
        Inst::Alu { op: a, size, dst, src } => {
            buf.push(op::ALU);
            buf.push(*a as u8);
            buf.push(*size as u8);
            put_operand(buf, dst);
            put_operand(buf, src);
        }
        Inst::Cmp { size, a, b } => {
            buf.push(op::CMP);
            buf.push(*size as u8);
            put_operand(buf, a);
            put_operand(buf, b);
        }
        Inst::Test { size, a, b } => {
            buf.push(op::TEST);
            buf.push(*size as u8);
            put_operand(buf, a);
            put_operand(buf, b);
        }
        Inst::Imul { dst, src } => {
            buf.push(op::IMUL);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
        }
        Inst::ImulI { dst, src, imm } => {
            buf.push(op::IMULI);
            buf.push(dst.index() as u8);
            put_operand(buf, src);
            put_i32(buf, *imm);
        }
        Inst::Idiv { src } => {
            buf.push(op::IDIV);
            put_operand(buf, src);
        }
        Inst::Neg { size, dst } => {
            buf.push(op::NEG);
            buf.push(*size as u8);
            put_operand(buf, dst);
        }
        Inst::Not { size, dst } => {
            buf.push(op::NOT);
            buf.push(*size as u8);
            put_operand(buf, dst);
        }
        Inst::Shift { op: s, size, dst, amount } => {
            buf.push(op::SHIFT);
            buf.push(*s as u8);
            buf.push(*size as u8);
            put_operand(buf, dst);
            match amount {
                ShiftAmount::Imm(i) => {
                    buf.push(0);
                    buf.push(*i);
                }
                ShiftAmount::Cl => buf.push(1),
            }
        }
        Inst::Push { src } => {
            buf.push(op::PUSH);
            put_operand(buf, src);
        }
        Inst::Pop { dst } => {
            buf.push(op::POP);
            put_operand(buf, dst);
        }
        Inst::Call { target } => {
            buf.push(op::CALL);
            put_u32(buf, *target);
        }
        Inst::CallInd { target } => {
            buf.push(op::CALLIND);
            put_operand(buf, target);
        }
        Inst::CallExt { idx } => {
            buf.push(op::CALLEXT);
            put_u16(buf, *idx);
        }
        Inst::Ret { pop } => {
            buf.push(op::RET);
            put_u16(buf, *pop);
        }
        Inst::Jmp { target } => {
            buf.push(op::JMP);
            put_u32(buf, *target);
        }
        Inst::JmpInd { target } => {
            buf.push(op::JMPIND);
            put_operand(buf, target);
        }
        Inst::Jcc { cc, target } => {
            buf.push(op::JCC);
            buf.push(*cc as u8);
            put_u32(buf, *target);
        }
        Inst::Setcc { cc, dst } => {
            buf.push(op::SETCC);
            buf.push(*cc as u8);
            buf.push(dst.index() as u8);
        }
        Inst::Leave => buf.push(op::LEAVE),
        Inst::VmovLd { mem } => {
            buf.push(op::VMOVLD);
            put_mem(buf, mem);
        }
        Inst::VmovSt { mem } => {
            buf.push(op::VMOVST);
            put_mem(buf, mem);
        }
        Inst::Trap { code } => {
            buf.push(op::TRAP);
            buf.push(*code);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let lo = self.u16()? as u32;
        let hi = self.u16()? as u32;
        Ok(lo | (hi << 16))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        if b >= 8 {
            return Err(DecodeError::BadField("register"));
        }
        Ok(Reg::from_index(b))
    }

    fn size(&mut self) -> Result<Size, DecodeError> {
        match self.u8()? {
            0 => Ok(Size::B),
            1 => Ok(Size::W),
            2 => Ok(Size::D),
            _ => Err(DecodeError::BadField("size")),
        }
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        let base = if flags & 0x08 != 0 { Some(Reg::from_index(flags & 0x07)) } else { None };
        let index = if flags & 0x80 != 0 {
            let reg = Reg::from_index((flags >> 4) & 0x07);
            let scale = self.u8()?;
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadField("scale"));
            }
            Some((reg, scale))
        } else {
            None
        };
        let disp = self.i32()?;
        Ok(Mem { base, index, disp })
    }

    fn operand(&mut self) -> Result<Operand, DecodeError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::Imm(self.i32()?)),
            2 => Ok(Operand::Mem(self.mem()?)),
            _ => Err(DecodeError::BadField("operand tag")),
        }
    }

    /// An operand that will be written to: immediates are rejected here
    /// so no consumer (emulator, lifter) ever sees `Imm` as a
    /// destination — hostile encodings become a decode error, not a
    /// downstream panic.
    fn dst_operand(&mut self) -> Result<Operand, DecodeError> {
        match self.operand()? {
            Operand::Imm(_) => Err(DecodeError::BadField("destination")),
            o => Ok(o),
        }
    }

    fn cc(&mut self) -> Result<Cc, DecodeError> {
        let b = self.u8()?;
        Cc::ALL.get(b as usize).copied().ok_or(DecodeError::BadField("condition code"))
    }
}

/// Decode one instruction from the start of `buf`.
///
/// Returns the instruction and the number of bytes consumed.
///
/// # Errors
/// Returns a [`DecodeError`] if the bytes are truncated or malformed.
pub fn decode(buf: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let opcode = c.u8()?;
    let inst = match opcode {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::MOV => {
            let size = c.size()?;
            let dst = c.dst_operand()?;
            let src = c.operand()?;
            Inst::Mov { size, dst, src }
        }
        op::MOVZX => {
            let from = c.size()?;
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Movzx { from, dst, src }
        }
        op::MOVSX => {
            let from = c.size()?;
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Movsx { from, dst, src }
        }
        op::LEA => {
            let dst = c.reg()?;
            let mem = c.mem()?;
            Inst::Lea { dst, mem }
        }
        op::ALU => {
            let a = match c.u8()? {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::And,
                3 => AluOp::Or,
                4 => AluOp::Xor,
                _ => return Err(DecodeError::BadField("alu op")),
            };
            let size = c.size()?;
            let dst = c.dst_operand()?;
            let src = c.operand()?;
            Inst::Alu { op: a, size, dst, src }
        }
        op::CMP => {
            let size = c.size()?;
            let a = c.operand()?;
            let b = c.operand()?;
            Inst::Cmp { size, a, b }
        }
        op::TEST => {
            let size = c.size()?;
            let a = c.operand()?;
            let b = c.operand()?;
            Inst::Test { size, a, b }
        }
        op::IMUL => {
            let dst = c.reg()?;
            let src = c.operand()?;
            Inst::Imul { dst, src }
        }
        op::IMULI => {
            let dst = c.reg()?;
            let src = c.operand()?;
            let imm = c.i32()?;
            Inst::ImulI { dst, src, imm }
        }
        op::IDIV => Inst::Idiv { src: c.operand()? },
        op::NEG => {
            let size = c.size()?;
            let dst = c.dst_operand()?;
            Inst::Neg { size, dst }
        }
        op::NOT => {
            let size = c.size()?;
            let dst = c.dst_operand()?;
            Inst::Not { size, dst }
        }
        op::SHIFT => {
            let s = match c.u8()? {
                0 => ShiftOp::Shl,
                1 => ShiftOp::Shr,
                2 => ShiftOp::Sar,
                _ => return Err(DecodeError::BadField("shift op")),
            };
            let size = c.size()?;
            let dst = c.dst_operand()?;
            let amount = match c.u8()? {
                0 => ShiftAmount::Imm(c.u8()?),
                1 => ShiftAmount::Cl,
                _ => return Err(DecodeError::BadField("shift amount")),
            };
            Inst::Shift { op: s, size, dst, amount }
        }
        op::PUSH => Inst::Push { src: c.operand()? },
        op::POP => Inst::Pop { dst: c.dst_operand()? },
        op::CALL => Inst::Call { target: c.u32()? },
        op::CALLIND => Inst::CallInd { target: c.operand()? },
        op::CALLEXT => Inst::CallExt { idx: c.u16()? },
        op::RET => Inst::Ret { pop: c.u16()? },
        op::JMP => Inst::Jmp { target: c.u32()? },
        op::JMPIND => Inst::JmpInd { target: c.operand()? },
        op::JCC => {
            let cc = c.cc()?;
            let target = c.u32()?;
            Inst::Jcc { cc, target }
        }
        op::SETCC => {
            let cc = c.cc()?;
            let dst = c.reg()?;
            Inst::Setcc { cc, dst }
        }
        op::LEAVE => Inst::Leave,
        op::VMOVLD => Inst::VmovLd { mem: c.mem()? },
        op::VMOVST => Inst::VmovSt { mem: c.mem()? },
        op::TRAP => Inst::Trap { code: c.u8()? },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((inst, c.pos))
}

/// Encoded length of an instruction without materializing the bytes twice.
pub fn encoded_len(inst: &Inst) -> usize {
    let mut buf = Vec::with_capacity(16);
    encode(inst, &mut buf);
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wyt_testkit::prop::{check, shrink_vec, vec_of, Config};
    use wyt_testkit::Rng;

    fn roundtrip(i: Inst) {
        let mut buf = Vec::new();
        encode(&i, &mut buf);
        let (back, len) = decode(&buf).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn simple_roundtrips() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        roundtrip(Inst::Leave);
        roundtrip(Inst::Ret { pop: 8 });
        roundtrip(Inst::Call { target: 0xdead_beef });
        roundtrip(Inst::CallExt { idx: 7 });
        roundtrip(Inst::Trap { code: 3 });
        roundtrip(Inst::Jcc { cc: Cc::Ae, target: 0x1234 });
        roundtrip(Inst::Setcc { cc: Cc::Ns, dst: Reg::Edx });
        roundtrip(Inst::Lea { dst: Reg::Eax, mem: Mem::base_index(Reg::Ebp, Reg::Ecx, 8, -44) });
        roundtrip(Inst::VmovLd { mem: Mem::base_disp(Reg::Esi, 16) });
        roundtrip(Inst::VmovSt { mem: Mem::abs(0x4000) });
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        // Truncated mov.
        assert_eq!(decode(&[super::op::MOV, 2, 0]), Err(DecodeError::Truncated));
        // Bad register index.
        assert_eq!(
            decode(&[super::op::MOV, 2, 0, 9, 0, 0]),
            Err(DecodeError::BadField("register"))
        );
        // Bad scale.
        let mut buf = vec![super::op::LEA, 0, 0x80 | 0x08, 3];
        buf.extend_from_slice(&0i32.to_le_bytes());
        assert_eq!(decode(&buf), Err(DecodeError::BadField("scale")));
        // Immediate destinations are rejected at decode time.
        let mut buf = vec![super::op::MOV, 2, 1];
        buf.extend_from_slice(&7i32.to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        assert_eq!(decode(&buf), Err(DecodeError::BadField("destination")));
        let mut buf = vec![super::op::POP, 1];
        buf.extend_from_slice(&7i32.to_le_bytes());
        assert_eq!(decode(&buf), Err(DecodeError::BadField("destination")));
    }

    fn arb_reg(rng: &mut Rng) -> Reg {
        Reg::from_index(rng.range_u32(0, 8) as u8)
    }

    fn arb_size(rng: &mut Rng) -> Size {
        *rng.choose(&[Size::B, Size::W, Size::D])
    }

    fn arb_mem(rng: &mut Rng) -> Mem {
        let base = if rng.next_bool() { Some(arb_reg(rng)) } else { None };
        let index =
            if rng.next_bool() { Some((arb_reg(rng), *rng.choose(&[1u8, 2, 4, 8]))) } else { None };
        Mem { base, index, disp: rng.next_i32() }
    }

    fn arb_dst(rng: &mut Rng) -> Operand {
        if rng.next_bool() {
            Operand::Reg(arb_reg(rng))
        } else {
            Operand::Mem(arb_mem(rng))
        }
    }

    fn arb_operand(rng: &mut Rng) -> Operand {
        match rng.range_u32(0, 3) {
            0 => Operand::Reg(arb_reg(rng)),
            1 => Operand::Imm(rng.next_i32()),
            _ => Operand::Mem(arb_mem(rng)),
        }
    }

    fn arb_cc(rng: &mut Rng) -> Cc {
        *rng.choose(&Cc::ALL)
    }

    fn arb_inst(rng: &mut Rng) -> Inst {
        match rng.range_u32(0, 27) {
            0 => Inst::Nop,
            1 => Inst::Halt,
            2 => Inst::Leave,
            3 => Inst::Mov { size: arb_size(rng), dst: arb_dst(rng), src: arb_operand(rng) },
            4 => Inst::Movzx { from: arb_size(rng), dst: arb_reg(rng), src: arb_operand(rng) },
            5 => Inst::Movsx { from: arb_size(rng), dst: arb_reg(rng), src: arb_operand(rng) },
            6 => Inst::Lea { dst: arb_reg(rng), mem: arb_mem(rng) },
            7 => Inst::Alu {
                op: *rng.choose(&[AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor]),
                size: arb_size(rng),
                dst: arb_dst(rng),
                src: arb_operand(rng),
            },
            8 => Inst::Cmp { size: arb_size(rng), a: arb_operand(rng), b: arb_operand(rng) },
            9 => Inst::Test { size: arb_size(rng), a: arb_operand(rng), b: arb_operand(rng) },
            10 => Inst::Imul { dst: arb_reg(rng), src: arb_operand(rng) },
            11 => Inst::ImulI { dst: arb_reg(rng), src: arb_operand(rng), imm: rng.next_i32() },
            12 => Inst::Idiv { src: arb_operand(rng) },
            13 => Inst::Neg { size: arb_size(rng), dst: arb_dst(rng) },
            14 => Inst::Not { size: arb_size(rng), dst: arb_dst(rng) },
            15 => Inst::Shift {
                op: *rng.choose(&[ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]),
                size: arb_size(rng),
                dst: arb_dst(rng),
                amount: if rng.next_bool() {
                    ShiftAmount::Imm(rng.next_u8())
                } else {
                    ShiftAmount::Cl
                },
            },
            16 => Inst::Push { src: arb_operand(rng) },
            17 => Inst::Pop { dst: arb_dst(rng) },
            18 => Inst::Call { target: rng.next_u32() },
            19 => Inst::CallInd { target: arb_operand(rng) },
            20 => Inst::CallExt { idx: rng.next_u32() as u16 },
            21 => Inst::Ret { pop: rng.next_u32() as u16 },
            22 => Inst::Jmp { target: rng.next_u32() },
            23 => Inst::JmpInd { target: arb_operand(rng) },
            24 => Inst::Jcc { cc: arb_cc(rng), target: rng.next_u32() },
            25 => Inst::Setcc { cc: arb_cc(rng), dst: arb_reg(rng) },
            _ => match rng.range_u32(0, 3) {
                0 => Inst::VmovLd { mem: arb_mem(rng) },
                1 => Inst::VmovSt { mem: arb_mem(rng) },
                _ => Inst::Trap { code: rng.next_u8() },
            },
        }
    }

    #[test]
    fn prop_encode_decode_roundtrip() {
        check(
            "prop_encode_decode_roundtrip",
            &Config::cases(512),
            arb_inst,
            |_| Vec::new(),
            |inst| {
                let mut buf = Vec::new();
                encode(inst, &mut buf);
                let (back, len) =
                    decode(&buf).map_err(|e| format!("decode of {inst} failed: {e}"))?;
                if back != *inst {
                    return Err(format!("roundtrip changed {inst} into {back}"));
                }
                if len != buf.len() {
                    return Err(format!("decode consumed {len} of {} bytes", buf.len()));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn prop_encoded_len_matches() {
        check(
            "prop_encoded_len_matches",
            &Config::cases(512),
            arb_inst,
            |_| Vec::new(),
            |inst| {
                let mut buf = Vec::new();
                encode(inst, &mut buf);
                if encoded_len(inst) != buf.len() {
                    return Err(format!(
                        "encoded_len {} but encoding is {} bytes for {inst}",
                        encoded_len(inst),
                        buf.len()
                    ));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn prop_decode_never_panics() {
        check(
            "prop_decode_never_panics",
            &Config::cases(512),
            |rng| vec_of(rng, 0, 24, |r| r.next_u8()),
            |bytes| shrink_vec(bytes),
            |bytes| {
                let _ = decode(bytes);
                Ok(())
            },
        );
    }
}
