//! Resource ceilings for ingesting untrusted images.
//!
//! A hostile image can claim segment bases near `u32::MAX`, carry
//! megabytes of junk text, or decode into pathological instruction
//! streams. [`DecodeLimits`] is the single knob bundle every ingestion
//! frontend shares: [`validate_image`](DecodeLimits::validate_image)
//! runs before any decoding work, and the lifter charges its CFG walk
//! and function-recovery fixpoint against the same limits so lifting a
//! hostile image is fuel-bounded like any other budgeted job.

use crate::image::Image;
use std::fmt;

/// Ceilings applied while decoding and lifting an untrusted image.
///
/// Defaults are far above anything the in-tree compiler produces but
/// low enough that a hostile artifact cannot drive unbounded work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum instructions decoded across one CFG build.
    pub max_insts: usize,
    /// Maximum basic blocks in one CFG build.
    pub max_blocks: usize,
    /// Maximum recovered functions per module.
    pub max_funcs: usize,
    /// Maximum total module size (text + data + bss) in bytes.
    pub max_module_bytes: usize,
}

impl Default for DecodeLimits {
    fn default() -> DecodeLimits {
        DecodeLimits {
            max_insts: 1 << 22,
            max_blocks: 1 << 20,
            max_funcs: 1 << 16,
            max_module_bytes: 64 << 20,
        }
    }
}

/// Why an image was rejected before any decode work started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LimitError {
    /// text + data + bss exceeds [`DecodeLimits::max_module_bytes`].
    ModuleTooLarge {
        /// Total module size in bytes.
        size: u64,
        /// The configured ceiling.
        limit: usize,
    },
    /// A segment wraps the 32-bit address space.
    SegmentWraps {
        /// `"text"` or `"data"`.
        segment: &'static str,
    },
    /// The entry point is not inside the text segment.
    EntryOutsideText {
        /// The claimed entry address.
        entry: u32,
    },
}

impl fmt::Display for LimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitError::ModuleTooLarge { size, limit } => {
                write!(f, "module size {size} exceeds limit {limit}")
            }
            LimitError::SegmentWraps { segment } => {
                write!(f, "{segment} segment wraps the address space")
            }
            LimitError::EntryOutsideText { entry } => {
                write!(f, "entry {entry:#x} is outside the text segment")
            }
        }
    }
}

impl std::error::Error for LimitError {}

impl DecodeLimits {
    /// Check the structural ceilings an image must satisfy before any
    /// byte of it is decoded: total size, segment wrap-around, entry
    /// placement. Runs in O(1).
    ///
    /// # Errors
    /// The first violated ceiling as a typed [`LimitError`].
    pub fn validate_image(&self, img: &Image) -> Result<(), LimitError> {
        let size = img.text.len() as u64 + img.data.len() as u64 + u64::from(img.bss_size);
        if size > self.max_module_bytes as u64 {
            return Err(LimitError::ModuleTooLarge { size, limit: self.max_module_bytes });
        }
        if u64::from(img.text_base) + img.text.len() as u64 > u64::from(u32::MAX) {
            return Err(LimitError::SegmentWraps { segment: "text" });
        }
        if u64::from(img.data_base) + img.data.len() as u64 + u64::from(img.bss_size)
            > u64::from(u32::MAX)
        {
            return Err(LimitError::SegmentWraps { segment: "data" });
        }
        if !img.contains_code(img.entry) {
            return Err(LimitError::EntryOutsideText { entry: img.entry });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, Inst};

    fn tiny() -> Image {
        let mut img = Image::new();
        encode(&Inst::Halt, &mut img.text);
        img.entry = img.text_base;
        img
    }

    #[test]
    fn well_formed_image_passes() {
        assert_eq!(DecodeLimits::default().validate_image(&tiny()), Ok(()));
    }

    #[test]
    fn oversized_module_is_rejected() {
        let mut img = tiny();
        img.bss_size = u32::MAX;
        let err = DecodeLimits::default().validate_image(&img).unwrap_err();
        assert!(matches!(err, LimitError::ModuleTooLarge { .. }), "{err}");
    }

    #[test]
    fn wrapping_segments_are_rejected() {
        let mut img = tiny();
        img.text_base = u32::MAX - 1;
        img.text = vec![0; 8];
        img.entry = img.text_base;
        assert_eq!(
            DecodeLimits::default().validate_image(&img),
            Err(LimitError::SegmentWraps { segment: "text" })
        );
        let mut img = tiny();
        img.data_base = u32::MAX;
        img.bss_size = 16;
        assert_eq!(
            DecodeLimits::default().validate_image(&img),
            Err(LimitError::SegmentWraps { segment: "data" })
        );
    }

    #[test]
    fn stray_entry_is_rejected() {
        let mut img = tiny();
        img.entry = 0;
        assert_eq!(
            DecodeLimits::default().validate_image(&img),
            Err(LimitError::EntryOutsideText { entry: 0 })
        );
    }
}
