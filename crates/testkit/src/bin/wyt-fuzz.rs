//! Deterministic mutation-fuzzing CLI over the suite's total
//! ingestion frontends (`wyt_testkit::fuzz`).
//!
//! ```sh
//! cargo run --release -p wyt-testkit --bin wyt-fuzz -- \
//!     --surface isa --iters 10000 --seed 0xf0cc5eed00000001
//! cargo run ... --bin wyt-fuzz -- --surface all --iters 1000
//! cargo run ... --bin wyt-fuzz -- --replay tests/crashes
//! ```
//!
//! Exit code is nonzero iff any finding (frontend panic) was observed.
//! A campaign's findings are fully determined by `(surface, iters,
//! seed)` — serial and `WYT_PAR=n` runs report identical results, and
//! `WYT_FUZZ=<seed>` overrides the seed for replays. With `--out DIR`
//! each minimized finding is written to `DIR/<surface>-<seed>-<index>.bin`
//! in the format the crash-corpus regression gate replays.
//!
//! `--replay DIR` drives every `*.bin` file in `DIR` (surface taken
//! from the filename prefix) back through its frontend and fails on
//! any panic — the standing regression gate over `tests/crashes/`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wyt_testkit::fuzz::{self, Surface};

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: wyt-fuzz [--surface isa|image|trace|envelope|json|emu|all] \
         [--iters N] [--seed S] [--out DIR] | --replay DIR"
    );
    ExitCode::FAILURE
}

/// Fuzz one surface; returns the number of findings.
fn run_surface(surface: Surface, iters: usize, seed: u64, out: Option<&Path>) -> usize {
    let findings = fuzz::campaign(surface, iters, seed);
    if findings.is_empty() {
        println!("wyt-fuzz: {}: {} cases, 0 findings", surface.name(), iters);
        return 0;
    }
    for f in &findings {
        eprintln!(
            "wyt-fuzz: FINDING {} case {} (seed {:#x}, WYT_FUZZ={:#x}): {} bytes minimized",
            surface.name(),
            f.index,
            f.case_seed,
            seed,
            f.bytes.len()
        );
        if let Some(dir) = out {
            let name = format!("{}-{:016x}-{}.bin", surface.name(), seed, f.index);
            if std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(&name), &f.bytes))
                .is_err()
            {
                eprintln!("wyt-fuzz: failed to write {}", dir.join(&name).display());
            } else {
                eprintln!("wyt-fuzz: wrote {}", dir.join(name).display());
            }
        }
    }
    findings.len()
}

/// Replay every `*.bin` crash file in `dir`; returns the failure count.
fn replay_dir(dir: &Path) -> Result<usize, String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    names.sort();
    let mut failed = 0usize;
    for path in &names {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let prefix = stem.split('-').next().unwrap_or("");
        let Some(surface) = Surface::parse(prefix) else {
            eprintln!("wyt-fuzz: {}: unknown surface prefix `{prefix}`", path.display());
            failed += 1;
            continue;
        };
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        match fuzz::replay(surface, &bytes) {
            Ok(()) => println!("wyt-fuzz: replay ok: {}", path.display()),
            Err(e) => {
                eprintln!("wyt-fuzz: replay FAILED: {}: {e}", path.display());
                failed += 1;
            }
        }
    }
    println!("wyt-fuzz: replayed {} crash files, {} failures", names.len(), failed);
    Ok(failed)
}

fn main() -> ExitCode {
    wyt_obs::set_enabled(true);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut surface = String::from("all");
    let mut iters = 1000usize;
    let mut seed = fuzz::env_seed().unwrap_or(fuzz::DEFAULT_SEED);
    let mut out: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--surface" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                surface = v.clone();
                i += 2;
            }
            "--iters" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                iters = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|v| parse_seed(v)) else {
                    return usage();
                };
                seed = v;
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                out = Some(PathBuf::from(v));
                i += 2;
            }
            "--replay" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                replay = Some(PathBuf::from(v));
                i += 2;
            }
            other => {
                eprintln!("wyt-fuzz: unknown argument `{other}`");
                return usage();
            }
        }
    }

    if let Some(dir) = replay {
        return match replay_dir(&dir) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("wyt-fuzz: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let surfaces: Vec<Surface> = if surface == "all" {
        Surface::ALL.to_vec()
    } else {
        match Surface::parse(&surface) {
            Some(s) => vec![s],
            None => {
                eprintln!("wyt-fuzz: unknown surface `{surface}`");
                return usage();
            }
        }
    };

    let mut findings = 0usize;
    for s in surfaces {
        findings += run_surface(s, iters, seed, out.as_deref());
    }
    if findings > 0 {
        eprintln!("wyt-fuzz: {findings} finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
