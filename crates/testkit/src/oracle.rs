//! The three-way differential execution oracle.
//!
//! For a mini-C program the oracle compiles it to an [`Image`] and
//! demands *observable-behaviour equality* — exit code, output bytes and
//! trap class, under a bounded fuel budget — across three executions:
//!
//! 1. **native** — the input binary on the machine emulator
//!    ([`wyt_emu::Machine`]);
//! 2. **lifted** — the dynamically lifted IR on the IR interpreter
//!    ([`wyt_ir::interp::Interp`]);
//! 3. **recompiled** — the full `wyt_core::pipeline::recompile`
//!    round-trip (per [`Mode`]), run again on the machine emulator.
//!
//! This is the semantic-preservation claim of the paper (§4–§6) stated as
//! an executable property. Observations are normalized through
//! [`TrapClass`] because the engines report abnormal termination with
//! different types ([`Trap`] vs [`InterpError`]); the class partition is
//! exactly the behaviour the paper considers observable.

use wyt_core::{recompile, Mode};
use wyt_emu::{Machine, RunResult, Trap};
use wyt_ir::interp::{Interp, InterpError, InterpOutput, NoHooks};
use wyt_ir::Module;
use wyt_isa::image::Image;
use wyt_isa::TrapCode;
use wyt_lifter::lift_image;
use wyt_minicc::Profile;

/// Normalized termination behaviour, comparable across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapClass {
    /// Clean exit.
    Exit,
    /// Instruction/step budget exhausted.
    Fuel,
    /// Signed division by zero or overflow.
    Divide,
    /// `abort()` called.
    Abort,
    /// A recompiler guard fired (untraced path reached).
    Guard,
    /// Any other fatal condition (bad pc, bad decode, bad indirect, ...).
    Other,
}

/// Classify a machine-level run. Only the recompiler's reserved guard
/// codes ([`TrapCode::is_guard`]) count as [`TrapClass::Guard`];
/// original-program traps and `Unreachable` stay [`TrapClass::Other`].
pub fn classify_machine(r: &RunResult) -> TrapClass {
    match &r.trap {
        None => TrapClass::Exit,
        Some(Trap::OutOfFuel) => TrapClass::Fuel,
        Some(Trap::DivideError(_)) => TrapClass::Divide,
        Some(Trap::Aborted) => TrapClass::Abort,
        Some(Trap::TrapInst { code, .. }) if TrapCode::is_guard(*code) => TrapClass::Guard,
        Some(_) => TrapClass::Other,
    }
}

/// Classify an IR-interpreter run, with the same code partition as
/// [`classify_machine`]. `BadIndirect` is the IR-level form of the
/// backend's indirect-dispatch-miss guard, so it classifies as Guard.
pub fn classify_interp(o: &InterpOutput) -> TrapClass {
    match &o.error {
        None => TrapClass::Exit,
        Some(InterpError::Fuel) => TrapClass::Fuel,
        Some(InterpError::DivideError(..)) => TrapClass::Divide,
        Some(InterpError::Aborted) => TrapClass::Abort,
        Some(InterpError::Trap(c)) if TrapCode::is_guard(*c) => TrapClass::Guard,
        Some(InterpError::BadIndirect(_)) => TrapClass::Guard,
        Some(_) => TrapClass::Other,
    }
}

/// One engine's observable behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obs {
    /// Normalized termination class.
    pub class: TrapClass,
    /// Exit code (0 for abnormal termination, by both engines' contract).
    pub exit_code: i32,
    /// Bytes written to the output stream.
    pub output: Vec<u8>,
}

impl std::fmt::Display for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} exit={} output={:?}",
            self.class,
            self.exit_code,
            String::from_utf8_lossy(&self.output)
        )
    }
}

/// Run `img` on the machine emulator under `fuel` and observe it.
pub fn observe_native(img: &Image, input: &[u8], fuel: u64) -> Obs {
    let mut m = Machine::new(img, input.to_vec());
    m.set_fuel(fuel);
    let r = m.run();
    Obs { class: classify_machine(&r), exit_code: r.exit_code, output: r.output }
}

/// Run `module` on the IR interpreter under `fuel` and observe it.
pub fn observe_interp(module: &Module, input: &[u8], fuel: u64) -> Obs {
    let mut it = Interp::new(module, input.to_vec(), NoHooks);
    it.set_fuel(fuel);
    let o = it.run();
    Obs { class: classify_interp(&o), exit_code: o.exit_code, output: o.output }
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Instruction budget for the native run. Derived executions (the
    /// interpreter and the recompiled binary) get 4x this budget: step
    /// counts are not comparable across abstraction levels, and the
    /// emulated-stack `NoSymbolize` round-trip legitimately retires more
    /// instructions than its input binary.
    pub fuel: u64,
    /// Recompilation modes to check.
    pub modes: Vec<Mode>,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig { fuel: 2_000_000, modes: vec![Mode::NoSymbolize, Mode::Wytiwyg] }
    }
}

/// Compile `src` under `profile` and check three-way equivalence on
/// `input`.
///
/// # Errors
/// A human-readable description of the first divergence (or of a
/// compile/lift/recompile failure, which the oracle also treats as a
/// property violation — generated programs are valid by construction).
pub fn check_source(
    src: &str,
    profile: &Profile,
    input: &[u8],
    cfg: &OracleConfig,
) -> Result<(), String> {
    let full = wyt_minicc::compile(src, profile)
        .map_err(|e| format!("[{}] compile failed: {e}", profile.name))?;
    let img = full.stripped();
    let derived_fuel = cfg.fuel.saturating_mul(4);

    let native = observe_native(&img, input, cfg.fuel);
    if native.class != TrapClass::Exit {
        return Err(format!("[{}] program misbehaves natively: {native}", profile.name));
    }

    // Leg 2: lift and interpret. The lift traces the same input, so the
    // lifted module covers every path the check executes.
    let lifted = lift_image(&img, &[input.to_vec()])
        .map_err(|e| format!("[{}] lift failed: {e}", profile.name))?;
    wyt_ir::verify::verify_module(&lifted.module)
        .map_err(|e| format!("[{}] lifted module fails verification: {e}", profile.name))?;
    let interp = observe_interp(&lifted.module, input, derived_fuel);
    if interp != native {
        return Err(format!(
            "[{}] lifted-IR interpreter diverges:\n  native: {native}\n  lifted: {interp}",
            profile.name
        ));
    }

    // Leg 3: the full recompile round-trip, per mode.
    for mode in &cfg.modes {
        let out = recompile(&img, &[input.to_vec()], *mode)
            .map_err(|e| format!("[{}] recompile ({mode:?}) failed: {e}", profile.name))?;
        let recompiled = observe_native(&out.image, input, derived_fuel);
        if recompiled != native {
            return Err(format!(
                "[{}] recompiled binary ({mode:?}) diverges:\n  native:     {native}\n  recompiled: {recompiled}",
                profile.name
            ));
        }
    }
    Ok(())
}

/// [`check_source`] for a generated [`crate::progen::Prog`]: renders it,
/// picks its embedded profile and input.
pub fn check_prog(p: &crate::progen::Prog, cfg: &OracleConfig) -> Result<(), String> {
    let src = crate::progen::render(p);
    check_source(&src, &crate::progen::profile(p.profile), &p.input, cfg)
        .map_err(|e| format!("{e}\nsource:\n{src}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_accepts_known_good_programs() {
        let srcs = [
            "int main() { return 41 + 1; }",
            r#"
            int sq(int x) { return x * x; }
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 9; i++) acc += sq(i) - i / 3;
                printf("%d\n", acc);
                return acc & 0x7f;
            }
            "#,
        ];
        for src in srcs {
            for p in [Profile::gcc12_o3(), Profile::gcc12_o0()] {
                check_source(src, &p, b"", &OracleConfig::default())
                    .unwrap_or_else(|e| panic!("oracle must accept correct program: {e}"));
            }
        }
    }

    #[test]
    fn oracle_consumes_input_consistently() {
        let src = r#"
            int main() {
                int a = getchar();
                int b = getchar();
                printf("%d\n", a * 100 + b);
                return (a + b) & 0x7f;
            }
        "#;
        check_source(src, &Profile::gcc44_o3(), b"hi", &OracleConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn trap_classes_partition_both_engines_the_same_way() {
        // The pairs that must coincide for the oracle to be sound.
        let r = |trap| RunResult {
            exit_code: 0,
            trap,
            cycles: 0,
            inst_count: 0,
            mem: Default::default(),
            output: vec![],
        };
        let o = |error| InterpOutput {
            exit_code: 0,
            output: vec![],
            error,
            guard: None,
            steps: 0,
            mem: Default::default(),
        };
        assert_eq!(classify_machine(&r(None)), classify_interp(&o(None)));
        assert_eq!(
            classify_machine(&r(Some(Trap::OutOfFuel))),
            classify_interp(&o(Some(InterpError::Fuel)))
        );
        assert_eq!(
            classify_machine(&r(Some(Trap::Aborted))),
            classify_interp(&o(Some(InterpError::Aborted)))
        );
        // Same code, same class — for every trap code, guard or not.
        for code in [1u8, TrapCode::UntracedBranch.code(), TrapCode::UntracedIndirect.code()] {
            assert_eq!(
                classify_machine(&r(Some(Trap::TrapInst { pc: 0, code }))),
                classify_interp(&o(Some(InterpError::Trap(code)))),
                "code {code:#x}"
            );
        }
        assert_eq!(
            classify_machine(&r(Some(Trap::TrapInst { pc: 0, code: 0xfe }))),
            TrapClass::Guard
        );
        assert_eq!(
            classify_machine(&r(Some(Trap::TrapInst {
                pc: 0,
                code: TrapCode::Unreachable.code()
            }))),
            TrapClass::Other
        );
        // The interpreter's bad-indirect is the machine's dispatch-miss
        // guard: both must be Guard or healing cannot see interp-side
        // misses.
        assert_eq!(classify_interp(&o(Some(InterpError::BadIndirect(0x9999)))), TrapClass::Guard);
        assert_eq!(classify_machine(&r(Some(Trap::DivideError(0)))), TrapClass::Divide);
    }
}
