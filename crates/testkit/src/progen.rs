//! Random mini-C program generation for differential testing.
//!
//! Programs are generated as a small structured AST ([`Prog`]) and
//! rendered to mini-C source. The shape is deliberately constrained so
//! that every generated program is *total* and *deterministic*:
//!
//! - loops have constant trip counts (fuel can never be exhausted by a
//!   well-formed case, so the oracle's fuel bound is purely a safety net);
//! - divisions and remainders are by positive constants (no divide traps);
//! - shift amounts are masked to `& 7` (no C-level undefined behaviour
//!   that compiler profiles could legitimately disagree on);
//! - array indices are masked to the array size;
//! - all variables are initialized before use.
//!
//! Because the AST is plain data, counterexamples shrink structurally:
//! statements are dropped and control structures are unwrapped while the
//! program stays compilable (helpers are never removed, so calls never
//! dangle).

use crate::prop::shrink_vec;
use crate::rng::Rng;
use wyt_minicc::Profile;

/// Compiler profiles the generator can target, in a fixed order so a
/// profile is identified by index inside a generated [`Prog`].
pub const PROFILE_COUNT: usize = 4;

/// Profile for index `i % PROFILE_COUNT`.
pub fn profile(i: usize) -> Profile {
    match i % PROFILE_COUNT {
        0 => Profile::gcc12_o3(),
        1 => Profile::gcc12_o0(),
        2 => Profile::clang16_o3(),
        _ => Profile::gcc44_o3(),
    }
}

/// An expression over `int`s.
#[derive(Debug, Clone)]
pub enum Ex {
    /// Literal.
    Num(i32),
    /// Named variable (index into the enclosing scope's variable list).
    Var(usize),
    /// An active (or previously finished) loop counter `i0`/`i1`.
    Loop(u8),
    /// `arr[(e) & 7]` — main only.
    ArrLoad(Box<Ex>),
    /// Wrapping arithmetic/bitwise: `+ - * & | ^`.
    Bin(&'static str, Box<Ex>, Box<Ex>),
    /// `<<`/`>>` with the amount masked to `& 7`.
    Shift(&'static str, Box<Ex>, Box<Ex>),
    /// Comparison producing 0/1: `< <= > >= == !=`.
    Cmp(&'static str, Box<Ex>, Box<Ex>),
    /// `c ? a : b`.
    Ternary(Box<Ex>, Box<Ex>, Box<Ex>),
    /// Division by a positive constant.
    DivC(Box<Ex>, i32),
    /// Remainder by a positive constant.
    ModC(Box<Ex>, i32),
    /// Helper call `fK(a, b)` — main only (helpers never call helpers).
    Call(usize, Box<Ex>, Box<Ex>),
}

/// A statement.
#[derive(Debug, Clone)]
pub enum St {
    /// `v = e;`
    Assign(usize, Ex),
    /// `v op= e;` for `+= -= ^=`.
    OpAssign(usize, &'static str, Ex),
    /// `arr[(i) & 7] = e;` — main only.
    ArrStore(Ex, Ex),
    /// `if (c) { .. } else { .. }` (else omitted when empty).
    If(Ex, Vec<St>, Vec<St>),
    /// `for (iD = 0; iD < n; iD++) { .. }` with constant trip count.
    For(u8, u32, Vec<St>),
    /// `printf("%d\n", e);`
    Print(Ex),
    /// `v = getchar();`
    ReadCh(usize),
}

/// A helper function `int fK(int a, int b) { int t0; int t1; ..; return e; }`.
#[derive(Debug, Clone)]
pub struct HelperFn {
    /// Body statements (over `a`, `b`, `t0`, `t1`).
    pub body: Vec<St>,
    /// Returned expression.
    pub ret: Ex,
}

/// A complete generated program plus the context it runs in.
#[derive(Debug, Clone)]
pub struct Prog {
    /// Index of the compiler profile to build under (see [`profile`]).
    pub profile: usize,
    /// Number of `int` locals `v0..v{nvars-1}` in `main`.
    pub nvars: usize,
    /// Helper functions `f0..`.
    pub funcs: Vec<HelperFn>,
    /// `main` body statements.
    pub body: Vec<St>,
    /// Input bytes fed to stdin (consumed by [`St::ReadCh`]).
    pub input: Vec<u8>,
}

const BINS: [&str; 6] = ["+", "-", "*", "&", "|", "^"];
const SHIFTS: [&str; 2] = ["<<", ">>"];
const CMPS: [&str; 6] = ["<", "<=", ">", ">=", "==", "!="];
const OPASSIGNS: [&str; 3] = ["+=", "-=", "^="];

/// Generation context: which names are in scope and what is allowed.
#[derive(Clone, Copy)]
struct Ctx {
    /// Variables in scope (main: nvars; helpers: a, b, t0, t1 = 4).
    nvars: usize,
    /// Helper-call and array access permitted (main only).
    in_main: bool,
    /// Number of helpers available to call.
    nfuncs: usize,
    /// Current loop nesting depth (bounds `Loop` indices and `For` depth).
    loop_depth: u8,
}

fn gen_expr(rng: &mut Rng, ctx: Ctx, depth: u32) -> Ex {
    if depth == 0 || rng.chance(0.3) {
        return match rng.range_u32(0, 3) {
            0 => Ex::Num(rng.range_i32(-120, 120)),
            1 => Ex::Var(rng.range_usize(0, ctx.nvars)),
            _ => {
                if ctx.loop_depth > 0 {
                    Ex::Loop(rng.range_u32(0, ctx.loop_depth as u32) as u8)
                } else {
                    Ex::Var(rng.range_usize(0, ctx.nvars))
                }
            }
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_expr(rng, ctx, depth - 1));
    let max = if ctx.in_main { 9 } else { 7 };
    match rng.range_u32(0, max) {
        0 | 1 => Ex::Bin(*rng.choose(&BINS), sub(rng), sub(rng)),
        2 => Ex::Shift(*rng.choose(&SHIFTS), sub(rng), sub(rng)),
        3 => Ex::Cmp(*rng.choose(&CMPS), sub(rng), sub(rng)),
        4 => Ex::Ternary(sub(rng), sub(rng), sub(rng)),
        5 => Ex::DivC(sub(rng), rng.range_i32(1, 16)),
        6 => Ex::ModC(sub(rng), rng.range_i32(1, 16)),
        7 => Ex::ArrLoad(sub(rng)),
        _ => {
            if ctx.nfuncs > 0 {
                Ex::Call(rng.range_usize(0, ctx.nfuncs), sub(rng), sub(rng))
            } else {
                Ex::Bin(*rng.choose(&BINS), sub(rng), sub(rng))
            }
        }
    }
}

fn gen_stmt(rng: &mut Rng, ctx: Ctx, depth: u32, has_input: bool) -> St {
    let roll = rng.range_u32(0, 100);
    let expr = |rng: &mut Rng| gen_expr(rng, ctx, 3);
    if roll < 30 {
        St::Assign(rng.range_usize(0, ctx.nvars), expr(rng))
    } else if roll < 45 {
        St::OpAssign(rng.range_usize(0, ctx.nvars), *rng.choose(&OPASSIGNS), expr(rng))
    } else if roll < 55 && ctx.in_main {
        St::ArrStore(expr(rng), expr(rng))
    } else if roll < 63 {
        St::Print(expr(rng))
    } else if roll < 68 && ctx.in_main && has_input {
        St::ReadCh(rng.range_usize(0, ctx.nvars))
    } else if roll < 84 && depth > 0 {
        let cond = gen_expr(rng, ctx, 2);
        let then = gen_block(rng, ctx, depth - 1, has_input, 1, 4);
        let els = if rng.chance(0.5) {
            gen_block(rng, ctx, depth - 1, has_input, 0, 3)
        } else {
            Vec::new()
        };
        St::If(cond, then, els)
    } else if depth > 0 && ctx.loop_depth < 2 {
        let inner = Ctx { loop_depth: ctx.loop_depth + 1, ..ctx };
        let trip = rng.range_u32(1, 13);
        let body = gen_block(rng, inner, depth - 1, has_input, 1, 4);
        St::For(ctx.loop_depth, trip, body)
    } else {
        St::Assign(rng.range_usize(0, ctx.nvars), expr(rng))
    }
}

fn gen_block(
    rng: &mut Rng,
    ctx: Ctx,
    depth: u32,
    has_input: bool,
    lo: usize,
    hi: usize,
) -> Vec<St> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| gen_stmt(rng, ctx, depth, has_input)).collect()
}

/// Generate a random program.
pub fn gen_prog(rng: &mut Rng) -> Prog {
    let profile = rng.range_usize(0, PROFILE_COUNT);
    let nvars = rng.range_usize(2, 6);
    let nfuncs = rng.range_usize(0, 3);
    let input: Vec<u8> = if rng.chance(0.4) {
        (0..rng.range_usize(1, 9)).map(|_| rng.range_u32(b' ' as u32, 127) as u8).collect()
    } else {
        Vec::new()
    };

    let helper_ctx = Ctx { nvars: 4, in_main: false, nfuncs: 0, loop_depth: 0 };
    let funcs: Vec<HelperFn> = (0..nfuncs)
        .map(|_| HelperFn {
            body: gen_block(rng, helper_ctx, 2, false, 1, 5),
            ret: gen_expr(rng, helper_ctx, 3),
        })
        .collect();

    let main_ctx = Ctx { nvars, in_main: true, nfuncs, loop_depth: 0 };
    let body = gen_block(rng, main_ctx, 3, !input.is_empty(), 2, 10);

    Prog { profile, nvars, funcs, body, input }
}

/// Shrink candidates: main body via [`shrink_vec`], structured statements
/// unwrapped in place (an `if` becomes its branches, a loop its body), and
/// each helper body shrunk. Helpers themselves are never dropped, so every
/// candidate still compiles.
pub fn shrink_prog(p: &Prog) -> Vec<Prog> {
    let mut out = Vec::new();
    for body in shrink_vec(&p.body) {
        out.push(Prog { body, ..p.clone() });
    }
    for (i, st) in p.body.iter().enumerate() {
        let mut splice = |content: &[St]| {
            let mut body = p.body.clone();
            body.splice(i..=i, content.iter().cloned());
            out.push(Prog { body, ..p.clone() });
        };
        match st {
            St::If(_, t, e) => {
                splice(t);
                if !e.is_empty() {
                    splice(e);
                }
            }
            St::For(_, _, b) => splice(b),
            _ => {}
        }
    }
    for (k, f) in p.funcs.iter().enumerate() {
        for body in shrink_vec(&f.body) {
            let mut funcs = p.funcs.clone();
            funcs[k] = HelperFn { body, ret: f.ret.clone() };
            out.push(Prog { funcs, ..p.clone() });
        }
    }
    if !p.input.is_empty() {
        out.push(Prog { input: Vec::new(), ..p.clone() });
    }
    out
}

fn render_expr(e: &Ex, names: &[&str], out: &mut String) {
    match e {
        Ex::Num(n) => {
            if *n < 0 {
                // Parenthesize so `a - -5` never renders as `a --5`.
                out.push_str(&format!("({n})"));
            } else {
                out.push_str(&n.to_string());
            }
        }
        Ex::Var(v) => out.push_str(names[*v % names.len()]),
        Ex::Loop(d) => out.push_str(if *d % 2 == 0 { "i0" } else { "i1" }),
        Ex::ArrLoad(i) => {
            out.push_str("arr[(");
            render_expr(i, names, out);
            out.push_str(") & 7]");
        }
        Ex::Bin(op, a, b) | Ex::Cmp(op, a, b) => {
            out.push('(');
            render_expr(a, names, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, names, out);
            out.push(')');
        }
        Ex::Shift(op, a, b) => {
            out.push('(');
            render_expr(a, names, out);
            out.push_str(&format!(" {op} (("));
            render_expr(b, names, out);
            out.push_str(") & 7))");
        }
        Ex::Ternary(c, a, b) => {
            out.push('(');
            render_expr(c, names, out);
            out.push_str(" ? ");
            render_expr(a, names, out);
            out.push_str(" : ");
            render_expr(b, names, out);
            out.push(')');
        }
        Ex::DivC(a, c) => {
            out.push('(');
            render_expr(a, names, out);
            out.push_str(&format!(" / {})", (*c).max(1)));
        }
        Ex::ModC(a, c) => {
            out.push('(');
            render_expr(a, names, out);
            out.push_str(&format!(" % {})", (*c).max(1)));
        }
        Ex::Call(k, a, b) => {
            out.push_str(&format!("f{k}("));
            render_expr(a, names, out);
            out.push_str(", ");
            render_expr(b, names, out);
            out.push(')');
        }
    }
}

fn render_stmt(st: &St, names: &[&str], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match st {
        St::Assign(v, e) => {
            out.push_str(&format!("{pad}{} = ", names[*v % names.len()]));
            render_expr(e, names, out);
            out.push_str(";\n");
        }
        St::OpAssign(v, op, e) => {
            out.push_str(&format!("{pad}{} {op} ", names[*v % names.len()]));
            render_expr(e, names, out);
            out.push_str(";\n");
        }
        St::ArrStore(i, e) => {
            out.push_str(&format!("{pad}arr[("));
            render_expr(i, names, out);
            out.push_str(") & 7] = ");
            render_expr(e, names, out);
            out.push_str(";\n");
        }
        St::If(c, t, e) => {
            out.push_str(&format!("{pad}if ("));
            render_expr(c, names, out);
            out.push_str(") {\n");
            for s in t {
                render_stmt(s, names, indent + 1, out);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    render_stmt(s, names, indent + 1, out);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        St::For(d, n, body) => {
            let iv = if *d % 2 == 0 { "i0" } else { "i1" };
            out.push_str(&format!("{pad}for ({iv} = 0; {iv} < {n}; {iv}++) {{\n"));
            for s in body {
                render_stmt(s, names, indent + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        St::Print(e) => {
            out.push_str(&format!("{pad}printf(\"%d\\n\", "));
            render_expr(e, names, out);
            out.push_str(");\n");
        }
        St::ReadCh(v) => {
            out.push_str(&format!("{pad}{} = getchar();\n", names[*v % names.len()]));
        }
    }
}

/// Render a [`Prog`] to compilable mini-C source. The program always ends
/// by printing and returning a checksum over every variable and array
/// slot, so the whole dataflow is observable.
pub fn render(p: &Prog) -> String {
    let mut out = String::new();
    let helper_names: [&str; 4] = ["a", "b", "t0", "t1"];
    for (k, f) in p.funcs.iter().enumerate() {
        out.push_str(&format!("int f{k}(int a, int b) {{\n"));
        out.push_str("    int t0 = 3;\n    int t1 = -7;\n    int i0 = 0;\n    int i1 = 0;\n");
        for st in &f.body {
            render_stmt(st, &helper_names, 1, &mut out);
        }
        out.push_str("    return ");
        render_expr(&f.ret, &helper_names, &mut out);
        out.push_str(";\n}\n");
    }

    let var_names: Vec<String> = (0..p.nvars).map(|v| format!("v{v}")).collect();
    let names: Vec<&str> = var_names.iter().map(|s| s.as_str()).collect();
    out.push_str("int main() {\n");
    for (v, name) in names.iter().enumerate() {
        out.push_str(&format!("    int {name} = {};\n", v as i32 + 1));
    }
    out.push_str("    int arr[8];\n    int i0 = 0;\n    int i1 = 0;\n    int acc = 0;\n");
    for k in 0..8 {
        out.push_str(&format!("    arr[{k}] = {};\n", k * 5 - 3));
    }
    for st in &p.body {
        render_stmt(st, &names, 1, &mut out);
    }
    for name in &names {
        out.push_str(&format!("    acc = acc * 31 + {name};\n"));
    }
    for k in 0..8 {
        out.push_str(&format!("    acc = acc * 31 + arr[{k}];\n"));
    }
    out.push_str("    printf(\"%d\\n\", acc);\n    return acc & 0x7f;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile_under_their_profile() {
        let mut rng = Rng::new(0xdecade);
        for _ in 0..40 {
            let p = gen_prog(&mut rng);
            let src = render(&p);
            wyt_minicc::compile(&src, &profile(p.profile))
                .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        }
    }

    #[test]
    fn shrink_candidates_stay_compilable() {
        let mut rng = Rng::new(0xca5cade);
        let p = gen_prog(&mut rng);
        for cand in shrink_prog(&p) {
            let src = render(&cand);
            wyt_minicc::compile(&src, &profile(cand.profile))
                .unwrap_or_else(|e| panic!("shrunk program must compile: {e}\n{src}"));
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let p = gen_prog(&mut Rng::new(123));
        let q = gen_prog(&mut Rng::new(123));
        assert_eq!(render(&p), render(&q));
    }
}
