//! Deterministic pseudo-random numbers for test-case generation.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the standard
//! construction for turning a single `u64` seed into a full 256-bit state
//! without correlated lanes. Every stream is fully determined by its seed,
//! so any generated test case can be reproduced from the seed alone; the
//! property harness ([`crate::prop`]) leans on this for failure replay.

/// One SplitMix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix two words into one — used to derive independent per-case seeds from
/// a base seed and a case index.
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `i32` over the full range.
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 bits of mantissa gives a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `u32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded generation (Lemire, sans rejection): the
        // bias is < 2^-32 per draw, far below anything a test can observe.
        lo + ((self.next_u32() as u64 * span) >> 32) as u32
    }

    /// Uniform `i32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        lo.wrapping_add(((self.next_u32() as u64 * span) >> 32) as i32)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.range_u32(0, (hi - lo) as u32) as usize
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }

    /// An independent child generator (forked stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let w = r.range_i32(-5, 3);
            assert!((-5..3).contains(&w));
            let u = r.range_usize(1, 2);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = Rng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 reachable: {seen:?}");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = Rng::new(5);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
