//! A minimal property-testing harness: seeded case generation, failure
//! persistence by seed, and greedy shrinking.
//!
//! Each case is generated from an independent seed derived from the
//! config's base seed and the case index. When a property fails, the
//! harness greedily shrinks the counterexample (first shrink candidate
//! that still fails wins, repeated to a fixed point) and panics with the
//! case seed. Re-running any test with `WYT_PROP_SEED=<seed>` regenerates
//! exactly the failing case, independent of the number of cases or their
//! order — that is the whole failure-persistence story, no files needed.
//!
//! Cases are independent by construction (each derives its own seed),
//! so [`check`] evaluates them on the `wyt-par` pool. Determinism is
//! unchanged: if several cases fail, the harness reports the one with
//! the **lowest case index** — exactly the case the serial loop would
//! have stopped at — and shrinking stays serial, so the panic message
//! (seed, counterexample, error) is byte-identical to a serial run.
//! `WYT_PAR=0` restores the serial early-exit loop.

use crate::rng::{mix, Rng};
use std::fmt::Debug;

/// Environment variable that replays a single failing case by seed.
pub const SEED_ENV: &str = "WYT_PROP_SEED";

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64, seed: 0x5eed_0f_a7_e57_000, max_shrink_steps: 2000 }
    }
}

impl Config {
    /// Default config with `n` cases.
    pub fn cases(n: u32) -> Config {
        Config { cases: n, ..Config::default() }
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(s) => Some(s),
        Err(_) => panic!("{SEED_ENV}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

/// Check `prop` on `cfg.cases` values drawn from `gen`, shrinking any
/// counterexample with `shrink` (see [`shrink_vec`] for the common case).
///
/// Cases run concurrently on the `wyt-par` pool (serially under
/// `WYT_PAR=0`); generation and the property need `Sync` for that, the
/// shrinker runs only on the calling thread.
///
/// Panics on the lowest-indexed (shrunk) counterexample — the same case
/// a serial scan stops at — printing the case seed and the exact
/// `WYT_PROP_SEED` incantation that reproduces it.
pub fn check<T, G, S, P>(name: &str, cfg: &Config, gen: G, shrink: S, prop: P)
where
    T: Debug + Clone,
    G: Fn(&mut Rng) -> T + Sync,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String> + Sync,
{
    if let Some(seed) = env_seed() {
        run_case(name, u32::MAX, seed, cfg, &gen, &shrink, &prop);
        return;
    }
    if !wyt_par::parallel() {
        // Serial: evaluate in order, stop at the first failure.
        for i in 0..cfg.cases {
            let seed = mix(cfg.seed, i as u64);
            run_case(name, i, seed, cfg, &gen, &shrink, &prop);
        }
        return;
    }
    // Parallel: evaluate every case on the pool, then report the
    // lowest-indexed failure (identical to the serial stop point; the
    // only difference is that later cases also ran).
    let failed: Option<u32> = wyt_par::par_indexed(cfg.cases as usize, |i| {
        let seed = mix(cfg.seed, i as u64);
        let mut rng = Rng::new(seed);
        let value = gen(&mut rng);
        prop(&value).is_err().then_some(i as u32)
    })
    .into_iter()
    .flatten()
    .next();
    if let Some(i) = failed {
        // Regenerate the failing case from its seed on this thread and
        // shrink serially — the panic message matches a serial run's.
        run_case(name, i, mix(cfg.seed, i as u64), cfg, &gen, &shrink, &prop);
        unreachable!("case {i} failed on the pool but passed when replayed");
    }
}

fn run_case<T, G, S, P>(
    name: &str,
    case: u32,
    seed: u64,
    cfg: &Config,
    gen: &G,
    shrink: &S,
    prop: &P,
) where
    T: Debug + Clone,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::new(seed);
    let value = gen(&mut rng);
    let Err(first_err) = prop(&value) else { return };
    let (shrunk, err, steps) = greedy_shrink(value, first_err, cfg.max_shrink_steps, shrink, prop);
    let case_label =
        if case == u32::MAX { "replayed case".to_string() } else { format!("case {case}") };
    panic!(
        "property `{name}` failed ({case_label}, seed {seed:#018x}, {steps} shrink steps)\n\
         reproduce with: {SEED_ENV}={seed:#x} cargo test {name}\n\
         error: {err}\n\
         counterexample: {shrunk:#?}"
    );
}

/// Greedy shrink to a fixed point: take the first candidate that still
/// fails, restart from it, stop when no candidate fails or the budget is
/// spent. Returns the final counterexample, its error, and steps used.
fn greedy_shrink<T, S, P>(
    mut cur: T,
    mut cur_err: String,
    budget: u32,
    shrink: &S,
    prop: &P,
) -> (T, String, u32)
where
    T: Clone,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    'outer: loop {
        for cand in shrink(&cur) {
            if steps >= budget {
                break 'outer;
            }
            steps += 1;
            if let Err(e) = prop(&cand) {
                cur = cand;
                cur_err = e;
                continue 'outer;
            }
        }
        break;
    }
    (cur, cur_err, steps)
}

/// Generate a vector of `len ∈ [lo, hi)` elements with `f`.
pub fn vec_of<T>(rng: &mut Rng, lo: usize, hi: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| f(rng)).collect()
}

/// Shrink candidates for a vector: both halves, then the vector with each
/// single element removed (capped at 64 positions, evenly spread). This is
/// the workhorse for op-list generators: halving finds the failing region
/// fast, single-element removal minimizes within it.
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let n = v.len();
    if n == 0 {
        return out;
    }
    if n > 1 {
        out.push(v[..n / 2].to_vec());
        out.push(v[n / 2..].to_vec());
    }
    let stride = (n / 64).max(1);
    for i in (0..n).step_by(stride) {
        let mut w = v.to_vec();
        w.remove(i);
        out.push(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let cfg = Config::cases(17);
        // Atomic rather than Cell: the property may run on pool threads.
        let count = AtomicU32::new(0);
        check(
            "always_true",
            &cfg,
            |r| r.next_u32(),
            |_| Vec::new(),
            |_| {
                count.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let res = std::panic::catch_unwind(|| {
            check(
                "always_false",
                &Config::cases(5),
                |r| r.next_u32(),
                |_| Vec::new(),
                |_| Err("nope".into()),
            );
        });
        let msg = *res.unwrap_err().downcast::<String>().expect("string panic");
        assert!(msg.contains(SEED_ENV), "message advertises the seed env: {msg}");
        assert!(msg.contains("seed 0x"), "message contains the seed: {msg}");
        assert!(msg.contains("nope"), "message contains the error: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vec_counterexamples() {
        // Property: no vector contains a 7. Generator plants plenty of
        // them; the shrunk counterexample must be exactly [7].
        let res = std::panic::catch_unwind(|| {
            check(
                "no_sevens",
                &Config::cases(20),
                |r| vec_of(r, 8, 32, |r| r.range_u32(0, 10)),
                |v| shrink_vec(v),
                |v| {
                    if v.contains(&7) {
                        Err("found a 7".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *res.unwrap_err().downcast::<String>().expect("string panic");
        // The counterexample Debug print of vec![7] is "[\n    7,\n]" in
        // the alternate format; accept any single-element rendering.
        assert!(
            msg.contains("counterexample: [\n    7,\n]") || msg.contains("counterexample: [7]"),
            "fully shrunk: {msg}"
        );
    }

    #[test]
    fn seed_derivation_is_stable() {
        // Locked values: changing mix() silently would invalidate every
        // seed ever printed by a failing run.
        assert_eq!(mix(0, 0), mix(0, 0));
        assert_ne!(mix(1, 0), mix(0, 0));
        assert_ne!(mix(0, 1), mix(0, 0));
    }
}
