//! # wyt-fault — deterministic fault-injection harness
//!
//! Robustness counterpart of the [`crate::oracle`]: instead of checking
//! that a *clean* pipeline preserves semantics, it corrupts stage inputs
//! at well-defined boundaries — the merged trace, the vararg
//! observations, the saved-register classification — or withholds the
//! program's input from the initial trace (exercising the self-healing
//! loop) — and demands that the pipeline *degrades*, never breaks:
//!
//! 1. `recompile` never panics under any fault plan;
//! 2. it returns either `Ok` (possibly with functions demoted down the
//!    degradation ladder, visible in `PipelineReport::degradations`) or a
//!    structured [`wyt_core::RecompileError`];
//! 3. every image it does produce still reproduces the native behaviour
//!    on the traced input, on both the machine emulator and the IR
//!    interpreter — the differential oracle applied to degraded output.
//!
//! Fault plans are derived from a single `u64` seed through the in-tree
//! PRNG, so every run is reproducible: set [`FAULT_ENV`]
//! (`WYT_FAULT=<seed>`, decimal or `0x`-hex) to replay one plan.

use crate::oracle::{observe_interp, observe_native, OracleConfig, TrapClass};
use crate::rng::{mix, Rng};
use wyt_core::regsave::{RegClass, RegSaveInfo, ESP_CELL, NUM_CELLS};
use wyt_core::vararg::VarargObservations;
use wyt_core::{recompile_healing_faulted, recompile_with_faults, FaultInjector};
use wyt_emu::TransferKind;
use wyt_ir::{FuncId, InstId};
use wyt_lifter::Trace;
use wyt_minicc::Profile;
use wyt_opt::OptLevel;

/// Environment variable selecting a fault-plan seed.
pub const FAULT_ENV: &str = "WYT_FAULT";

/// The fault-plan seed from [`FAULT_ENV`], if set.
///
/// # Panics
/// If the variable is set but not a `u64` (decimal or 0x-hex).
pub fn env_seed() -> Option<u64> {
    let raw = std::env::var(FAULT_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(s) => Some(s),
        Err(_) => panic!("{FAULT_ENV}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

// Per-site stream separators: each injection site derives its own PRNG
// stream from the plan seed, so adding a site never perturbs the others.
const SITE_SELECT: u64 = 0x5e1e_c7;
const SITE_TRACE: u64 = 0x7_ace;
const SITE_VARARG: u64 = 0xa9_5;
const SITE_REGSAVE: u64 = 0x9e9_5;
const SITE_CHAOS_JOB: u64 = 0xc4a0_5;
const SITE_CHAOS_FS: u64 = 0xf5_fa_17;

/// A deterministic fault plan: which stage boundaries get corrupted and
/// how, all derived from one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The plan seed.
    pub seed: u64,
}

impl FaultPlan {
    /// Plan for `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// Which fault families this plan enables (trace, vararg, regsave,
    /// withheld-input). At least one is always on.
    fn mask(&self) -> u64 {
        mix(self.seed, SITE_SELECT) % 15 + 1
    }

    /// Does this plan exercise the self-healing loop by withholding the
    /// input from the initial trace?
    pub fn withholds_input(&self) -> bool {
        self.mask() & 8 != 0
    }

    /// Build the [`FaultInjector`] realizing this plan. The hooks are
    /// stateless (each call reseeds its own stream), so a pipeline that
    /// restarts a stage — the degradation ladder does — sees the *same*
    /// corruption every attempt.
    pub fn injector(&self) -> FaultInjector {
        let seed = self.seed;
        let mask = self.mask();
        let mut inj = FaultInjector::default();
        if mask & 1 != 0 {
            inj.trace = Some(Box::new(move |t: &mut Trace| corrupt_trace(seed, t)));
        }
        if mask & 2 != 0 {
            inj.vararg = Some(Box::new(move |o: &mut VarargObservations| corrupt_vararg(seed, o)));
        }
        if mask & 4 != 0 {
            inj.regsave = Some(Box::new(move |r: &mut RegSaveInfo| corrupt_regsave(seed, r)));
        }
        inj
    }
}

/// A deterministic *supervision* chaos plan: which batch jobs crash,
/// which overrun their fuel budget, and what store-level I/O weather the
/// whole batch runs under — all derived from one seed, so a serial and a
/// `WYT_PAR=4` replay of the same plan disrupt the identical jobs.
///
/// The three families are disjoint per job (a job crashes *or* times out
/// *or* runs clean), and the disruption hooks are themselves
/// deterministic: a crash is an unconditional `panic!` from the trace
/// injection point, a timeout charges the job's entire fuel budget at
/// the same point, so a retried attempt fails identically and the job is
/// quarantined with a stable typed outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The plan seed.
    pub seed: u64,
}

impl ChaosPlan {
    /// Plan for `seed`.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan { seed }
    }

    fn job_word(&self, i: usize) -> u64 {
        mix(mix(self.seed, SITE_CHAOS_JOB), i as u64)
    }

    /// Does job `i` panic mid-pipeline? (~1 in 8.)
    pub fn crashes_job(&self, i: usize) -> bool {
        self.job_word(i) % 8 == 0
    }

    /// Does job `i` overrun its fuel budget? (~1 in 8, disjoint from
    /// [`ChaosPlan::crashes_job`].)
    pub fn overruns_job(&self, i: usize) -> bool {
        self.job_word(i) % 8 == 1
    }

    /// The [`FaultInjector`] disrupting job `i` under this plan — an
    /// injected panic, an injected budget overrun, or no disruption.
    pub fn injector_for(&self, i: usize) -> FaultInjector {
        let mut inj = FaultInjector::default();
        if self.crashes_job(i) {
            inj.trace =
                Some(Box::new(move |_t: &mut Trace| panic!("chaos: injected crash in job {i}")));
        } else if self.overruns_job(i) {
            inj.trace = Some(Box::new(move |_t: &mut Trace| {
                // Spend the whole fuel budget in one step: the watchdog
                // cancels the job at this (safe) preemption point.
                wyt_par::supervise::charge_steps(u64::MAX / 2);
            }));
        }
        inj
    }

    /// A transient-only faulty filesystem for the batch's store, seeded
    /// from this plan. Every injected fault is absorbed by the store's
    /// bounded retries, so the batch's *results* are byte-identical to a
    /// fault-free run — only the `store.io.*` counters show the weather.
    pub fn fault_fs(&self) -> wyt_store::FaultFs {
        wyt_store::FaultFs::new(
            mix(self.seed, SITE_CHAOS_FS),
            wyt_store::FaultPlan::transient_only(),
        )
    }
}

/// Corrupt the merged trace: drop edges (torn trace), duplicate an edge
/// with a call kind (fake function entry), add a bogus call target.
fn corrupt_trace(seed: u64, t: &mut Trace) {
    let mut rng = Rng::new(mix(seed, SITE_TRACE));
    let edges: Vec<(u32, u32, TransferKind)> = t.edges.iter().copied().collect();
    if edges.is_empty() {
        return;
    }
    let mut touched = false;
    for e in &edges {
        if rng.chance(0.125) {
            t.edges.remove(e);
            touched = true;
        }
    }
    if rng.chance(0.5) {
        let &(from, to, _) = rng.choose(&edges);
        touched |= t.edges.insert((from, to, TransferKind::Call));
    }
    if rng.chance(0.5) {
        let &(from, to, _) = rng.choose(&edges);
        // Mid-instruction (undecodable) or far outside the text segment.
        let bogus = if rng.next_bool() { to + 1 } else { 0xdead_0000 };
        touched |= t.edges.insert((from, bogus, TransferKind::Call));
    }
    if !touched {
        // A plan that enables the trace family must corrupt something.
        t.edges.remove(rng.choose(&edges));
    }
}

/// Corrupt the vararg observations: inflate or deflate recovered argument
/// counts (a format string lying about its arity) or drop observations
/// entirely (the call site is never recovered).
fn corrupt_vararg(seed: u64, obs: &mut VarargObservations) {
    let mut rng = Rng::new(mix(seed, SITE_VARARG));
    let mut keys: Vec<(FuncId, InstId)> = obs.arg_counts.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        if !rng.chance(0.35) {
            continue;
        }
        match rng.range_u32(0, 3) {
            0 => {
                let extra = rng.range_usize(1, 4);
                *obs.arg_counts.get_mut(&k).expect("key from map") += extra;
            }
            1 => {
                let less = rng.range_usize(1, 3);
                let c = obs.arg_counts.get_mut(&k).expect("key from map");
                *c = c.saturating_sub(less);
            }
            _ => {
                obs.arg_counts.remove(&k);
            }
        }
    }
}

/// Corrupt the saved-register classification: flip Saved ↔ Clobbered per
/// cell (a clobbered observation for a register the callee preserves, and
/// vice versa). `esp` is modelled structurally and never flipped.
fn corrupt_regsave(seed: u64, info: &mut RegSaveInfo) {
    let mut rng = Rng::new(mix(seed, SITE_REGSAVE));
    let mut fids: Vec<FuncId> = info.class.keys().copied().collect();
    fids.sort_unstable();
    for fid in fids {
        let cells = info.class.get_mut(&fid).expect("key from map");
        for c in 0..NUM_CELLS {
            if c == ESP_CELL || !rng.chance(0.15) {
                continue;
            }
            cells[c] = match cells[c] {
                RegClass::Saved => RegClass::Clobbered,
                RegClass::Clobbered | RegClass::Argument => RegClass::Saved,
            };
        }
    }
}

/// Run the fault-injected pipeline on `src` and enforce the harness
/// contract. Returns a canonical per-mode summary (used by determinism
/// tests: the same plan must yield the byte-identical summary regardless
/// of `WYT_PAR`).
///
/// # Errors
/// A description of the property violation: the native run misbehaving,
/// or a produced (possibly degraded) image diverging from it.
pub fn check_source_under_fault(
    src: &str,
    profile: &Profile,
    input: &[u8],
    plan: &FaultPlan,
    cfg: &OracleConfig,
) -> Result<String, String> {
    let full = wyt_minicc::compile(src, profile)
        .map_err(|e| format!("[{}] compile failed: {e}", profile.name))?;
    let img = full.stripped();
    let derived_fuel = cfg.fuel.saturating_mul(4);

    let native = observe_native(&img, input, cfg.fuel);
    if native.class != TrapClass::Exit {
        return Err(format!("[{}] program misbehaves natively: {native}", profile.name));
    }

    let injector = plan.injector();
    let mut summary = String::new();
    for mode in &cfg.modes {
        match recompile_with_faults(&img, &[input.to_vec()], *mode, OptLevel::Full, &injector) {
            // A structured error is an acceptable outcome under faults —
            // the contract only forbids panics and silent miscompiles.
            Err(e) => summary.push_str(&format!("{mode:?}: error: {e}\n")),
            Ok(out) => {
                let rec = observe_native(&out.image, input, derived_fuel);
                if rec != native {
                    return Err(format!(
                        "[{}] seed {:#x} ({mode:?}): degraded image diverges:\n  \
                         native:     {native}\n  recompiled: {rec}",
                        profile.name, plan.seed
                    ));
                }
                let it = observe_interp(&out.module, input, derived_fuel);
                if it != native {
                    return Err(format!(
                        "[{}] seed {:#x} ({mode:?}): final IR diverges:\n  \
                         native: {native}\n  interp: {it}",
                        profile.name, plan.seed
                    ));
                }
                summary
                    .push_str(&format!("{mode:?}: ok degraded={}", out.report.degradations.len()));
                for d in &out.report.degradations {
                    summary.push_str(&format!(" {}:{}:{}", d.func, d.rung, d.reason));
                }
                summary.push('\n');
            }
        }
    }

    // The withheld-input family exercises the self-healing loop: trace
    // with an empty input only, hold the real input out, and demand that
    // healing either converges to an image reproducing the native
    // behaviour or fails structurally — never panics, never miscompiles.
    // The same injector rides along, so a plan that also enables the
    // trace family corrupts every incremental re-trace delta: what
    // healing then cannot fix must be caught by the degradation ladder,
    // and whatever image survives must still be oracle-equivalent on the
    // inputs it was validated against.
    if plan.withholds_input() {
        match recompile_healing_faulted(
            &img,
            &[Vec::new()],
            &[input.to_vec()],
            OptLevel::Full,
            &injector,
        ) {
            Err(e) => summary.push_str(&format!("healing: error: {e}\n")),
            Ok(healed) => {
                let r = &healed.report;
                if r.converged {
                    let rec = observe_native(&healed.recompiled.image, input, derived_fuel);
                    if rec != native {
                        return Err(format!(
                            "[{}] seed {:#x}: healed image diverges:\n  \
                             native: {native}\n  healed: {rec}",
                            profile.name, plan.seed
                        ));
                    }
                } else {
                    // Unconverged healing hands back the last good image:
                    // it must still reproduce the *traced* (empty-input)
                    // behaviour exactly, degraded or not.
                    let empty_native = observe_native(&img, b"", cfg.fuel);
                    let rec = observe_native(&healed.recompiled.image, b"", derived_fuel);
                    if rec != empty_native {
                        return Err(format!(
                            "[{}] seed {:#x}: unconverged healed image diverges on the \
                             traced input:\n  native: {empty_native}\n  healed: {rec}",
                            profile.name, plan.seed
                        ));
                    }
                }
                summary.push_str(&format!(
                    "healing: rounds={} healed={} unhealed={} converged={} degraded={}\n",
                    r.rounds,
                    r.sites_healed,
                    r.sites_unhealed,
                    r.converged,
                    healed.recompiled.report.degradations.len()
                ));
            }
        }
    }
    Ok(summary)
}

/// [`check_source_under_fault`] for a generated [`crate::progen::Prog`].
///
/// # Errors
/// See [`check_source_under_fault`]; the failing program's source is
/// appended.
pub fn check_prog_under_fault(
    p: &crate::progen::Prog,
    plan: &FaultPlan,
    cfg: &OracleConfig,
) -> Result<String, String> {
    let src = crate::progen::render(p);
    check_source_under_fault(&src, &crate::progen::profile(p.profile), &p.input, plan, cfg)
        .map_err(|e| format!("{e}\nsource:\n{src}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_nonempty() {
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            let plan = FaultPlan::new(seed);
            assert!(plan.mask() >= 1 && plan.mask() <= 15);
            assert_eq!(plan.mask(), FaultPlan::new(seed).mask());
            assert_eq!(plan.withholds_input(), plan.mask() & 8 != 0);
        }
    }

    #[test]
    fn trace_corruption_is_idempotent_per_seed() {
        // Two runs from the same plan must corrupt identically — the
        // degradation ladder re-invokes hooks on every restart.
        let img = wyt_minicc::compile(
            "int f(int x) { return x + 1; } int main() { return f(41); }",
            &Profile::gcc12_o3(),
        )
        .unwrap()
        .stripped();
        let (trace, _) = wyt_lifter::trace_image(&img, &[vec![]]);
        let mut a = trace.clone();
        let mut b = trace.clone();
        corrupt_trace(7, &mut a);
        corrupt_trace(7, &mut b);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, trace.edges, "the trace family must change the trace");
    }

    #[test]
    fn faulted_pipeline_never_panics_on_a_small_program() {
        let src = r#"
            int helper(int a, int b) { return a * b + 3; }
            int main() {
                int x = helper(6, 7);
                printf("%d\n", x);
                return x & 0x7f;
            }
        "#;
        let cfg = OracleConfig::default();
        for seed in 0..6u64 {
            let plan = FaultPlan::new(seed);
            let sum = check_source_under_fault(src, &Profile::gcc12_o3(), b"", &plan, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!sum.is_empty());
        }
    }
}
