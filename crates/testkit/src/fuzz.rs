//! In-tree deterministic mutation fuzzer for the ingestion frontends.
//!
//! Every byte stream the suite accepts from outside — encoded
//! instructions, image/trace/input JSON, store envelopes, arbitrary
//! JSON documents, programs handed to the emulator — has a *total*
//! frontend in `wyt_core::ingest`. This module proves totality by
//! construction-free brute force: a corpus of valid artifacts is built
//! in-process, mutated with classic operators (bit flips, truncation,
//! splice, length-field boosting, chunk repeat) and driven through the
//! frontend under `catch_unwind`. Any panic is a **finding**: the case
//! is minimized byte-wise and reported with the per-case seed that
//! reproduces it.
//!
//! Everything is deterministic. Case `i` of a campaign with seed `s`
//! derives its bytes purely from `mix(s, i)`, the campaign fans out
//! over [`wyt_par::par_indexed`] (which reports results in index
//! order), and minimization runs serially afterwards — so serial and
//! `WYT_PAR=4` runs produce byte-identical findings, and any finding
//! replays from `WYT_FUZZ=<seed>` alone.

use crate::rng::{mix, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use wyt_isa::image::{Image, TEXT_BASE};
use wyt_obs::Json;

/// Environment variable that overrides the campaign seed (decimal or
/// `0x`-prefixed hex), mirroring `WYT_PROP_SEED` for property tests.
pub const FUZZ_ENV: &str = "WYT_FUZZ";

/// Default campaign seed when neither the caller nor [`FUZZ_ENV`]
/// provides one.
pub const DEFAULT_SEED: u64 = 0xf0cc_5eed_0000_0001;

/// Hard ceiling on a mutated case, so the fuzzer itself never
/// amplifies a small corpus into unbounded allocation.
pub const MAX_CASE_BYTES: usize = 1 << 20;

/// Fixed key used for the envelope surface (both when building the
/// corpus entry and when validating mutants, so identity checks can
/// pass on the unmutated input).
pub const ENVELOPE_KEY: &str = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff";

/// Fuel budget for the hostile-execution surface. Small: the point is
/// decode/exec robustness, not long program runs.
const EMU_FUEL: u64 = 200_000;

/// Seed override from [`FUZZ_ENV`], if set and parseable.
pub fn env_seed() -> Option<u64> {
    let raw = std::env::var(FUZZ_ENV).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// One fuzzable ingestion surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// Raw instruction decoding: a linear `wyt_isa::decode` walk.
    Isa,
    /// Image JSON ingestion plus a bounded decode walk of the result.
    Image,
    /// Merged-trace JSON ingestion.
    Trace,
    /// Store envelope validation.
    Envelope,
    /// Arbitrary JSON under the parser limits.
    Json,
    /// Hostile program execution under fuel/cycle/memory budgets.
    Emu,
}

impl Surface {
    /// All surfaces, in the order campaigns and CLIs enumerate them.
    pub const ALL: [Surface; 6] = [
        Surface::Isa,
        Surface::Image,
        Surface::Trace,
        Surface::Envelope,
        Surface::Json,
        Surface::Emu,
    ];

    /// Stable lowercase name (CLI flag value, crash-file prefix,
    /// counter-key segment).
    pub fn name(self) -> &'static str {
        match self {
            Surface::Isa => "isa",
            Surface::Image => "image",
            Surface::Trace => "trace",
            Surface::Envelope => "envelope",
            Surface::Json => "json",
            Surface::Emu => "emu",
        }
    }

    /// Inverse of [`Surface::name`].
    pub fn parse(s: &str) -> Option<Surface> {
        Surface::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// A panic discovered by a campaign, minimized and replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Case index within the campaign.
    pub index: usize,
    /// The per-case seed (`mix(campaign_seed, index)`).
    pub case_seed: u64,
    /// Minimized input that still panics the frontend.
    pub bytes: Vec<u8>,
}

/// Build the deterministic seed corpus for a surface: small *valid*
/// artifacts produced by the suite's own toolchain, so mutants start
/// near the interesting boundary instead of in uniform noise.
pub fn corpus(surface: Surface) -> Vec<Vec<u8>> {
    match surface {
        Surface::Isa | Surface::Emu => seed_images().into_iter().map(|img| img.text).collect(),
        Surface::Image => seed_images()
            .iter()
            .map(|img| wyt_core::artifact::image_to_json(img).to_string().into_bytes())
            .collect(),
        Surface::Trace => seed_images()
            .iter()
            .map(|img| {
                let (trace, _) = wyt_lifter::trace_image(img, &[vec![]]);
                wyt_core::artifact::trace_to_json(&trace).to_string().into_bytes()
            })
            .collect(),
        Surface::Envelope => seed_images()
            .iter()
            .map(|img| {
                let payload = wyt_core::artifact::image_to_json(img);
                let checksum = wyt_store::sha256_hex(payload.to_string().as_bytes());
                Json::obj(vec![
                    ("wyt_store", Json::from(1u64)),
                    ("kind", Json::from("artifact")),
                    ("key", Json::from(ENVELOPE_KEY)),
                    ("stamp", Json::from(7u64)),
                    ("checksum", Json::from(checksum.as_str())),
                    ("payload", payload),
                ])
                .to_string()
                .into_bytes()
            })
            .collect(),
        Surface::Json => vec![
            br#"{"counters": {"a": 1, "b": [1, 2, 3]}, "spans": []}"#.to_vec(),
            br#"[{"k": "x", "v": -12.5e3, "t": true, "n": null}, "tail"]"#.to_vec(),
            br#"{"deep": {"deep": {"deep": {"deep": [0, "A\n"]}}}}"#.to_vec(),
        ],
    }
}

/// The fixed set of tiny programs the corpora derive from. Compiled
/// in-process by `wyt-minicc`, so the corpus needs no checked-in
/// binary blobs and tracks the toolchain.
fn seed_images() -> Vec<Image> {
    const SOURCES: [&str; 3] = [
        "int main() { return 41 + 1; }",
        "int f(int n) { int a[4]; a[n & 3] = n; return a[0] + a[3]; }\n\
         int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) s = s + f(i); return s; }",
        "int main() { char *p = malloc(16); memset(p, 7, 16); return p[3]; }",
    ];
    SOURCES
        .iter()
        .map(|src| {
            wyt_minicc::compile(src, &wyt_minicc::Profile::gcc12_o3())
                .expect("seed corpus program compiles")
                .stripped()
        })
        .collect()
}

/// Produce one mutated case from the corpus. Applies 1–3 operators
/// drawn from: bit flips, truncation, splice, length-field boosting,
/// chunk repeat. Output is capped at [`MAX_CASE_BYTES`].
pub fn mutate(rng: &mut Rng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = rng.choose(corpus).clone();
    for _ in 0..rng.range_u32(1, 4) {
        match rng.range_u32(0, 5) {
            0 => bit_flips(rng, &mut bytes),
            1 => truncate(rng, &mut bytes),
            2 => {
                let donor = rng.choose(corpus).clone();
                splice(rng, &mut bytes, &donor);
            }
            3 => length_boost(rng, &mut bytes),
            _ => chunk_repeat(rng, &mut bytes),
        }
    }
    bytes.truncate(MAX_CASE_BYTES);
    bytes
}

/// Flip 1–8 random bits.
fn bit_flips(rng: &mut Rng, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    for _ in 0..rng.range_u32(1, 9) {
        let i = rng.range_usize(0, bytes.len());
        bytes[i] ^= 1 << rng.range_u32(0, 8);
    }
}

/// Cut the tail at a random point (possibly to empty).
fn truncate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    let at = rng.range_usize(0, bytes.len() + 1);
    bytes.truncate(at);
}

/// Overwrite or insert a random window copied from another corpus
/// entry — moves whole fields/structures between documents.
fn splice(rng: &mut Rng, bytes: &mut Vec<u8>, donor: &[u8]) {
    if donor.is_empty() {
        return;
    }
    let ds = rng.range_usize(0, donor.len());
    let de = rng.range_usize(ds, donor.len() + 1);
    let window = &donor[ds..de];
    let at = rng.range_usize(0, bytes.len() + 1);
    if rng.next_bool() && at + window.len() <= bytes.len() {
        bytes[at..at + window.len()].copy_from_slice(window);
    } else {
        bytes.splice(at..at, window.iter().copied());
    }
}

/// Boost a "length field": either write an extreme 32-bit LE value
/// over a random window (binary surfaces) or replace a run of ASCII
/// digits with a huge number (JSON surfaces). Targets the classic
/// trust-the-length overflow class.
fn length_boost(rng: &mut Rng, bytes: &mut Vec<u8>) {
    const BOOST: [u32; 6] = [u32::MAX, i32::MAX as u32, 1 << 31, 1 << 24, 0x8000_0001, 65_536];
    if bytes.len() >= 4 && rng.next_bool() {
        let at = rng.range_usize(0, bytes.len() - 3);
        bytes[at..at + 4].copy_from_slice(&rng.choose(&BOOST).to_le_bytes());
        return;
    }
    // Find a digit run starting at/after a random point and inflate it.
    if bytes.is_empty() {
        return;
    }
    let start = rng.range_usize(0, bytes.len());
    if let Some(d0) = (start..bytes.len()).find(|&i| bytes[i].is_ascii_digit()) {
        let d1 = (d0..bytes.len()).take_while(|&i| bytes[i].is_ascii_digit()).last().unwrap_or(d0);
        let huge = format!("{}", u64::from(*rng.choose(&BOOST)) * 1_000_000_007);
        bytes.splice(d0..=d1, huge.bytes());
    }
}

/// Repeat a random chunk k times in place (bounded by the case cap) —
/// stresses element-count loops and depth limits.
fn chunk_repeat(rng: &mut Rng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    let cs = rng.range_usize(0, bytes.len());
    let ce = rng.range_usize(cs, bytes.len() + 1);
    let chunk = bytes[cs..ce].to_vec();
    if chunk.is_empty() {
        return;
    }
    let reps = rng.range_usize(2, 65).min(MAX_CASE_BYTES.saturating_sub(bytes.len()) / chunk.len());
    let mut insert = Vec::with_capacity(chunk.len() * reps);
    for _ in 0..reps {
        insert.extend_from_slice(&chunk);
    }
    bytes.splice(ce..ce, insert);
}

/// Drive `bytes` through one frontend. This is the totality contract
/// under test: for arbitrary input the call must return (with a typed
/// error or a clean result) — any panic escaping here is a finding.
pub fn drive(surface: Surface, bytes: &[u8]) {
    match surface {
        Surface::Isa => {
            let mut off = 0usize;
            while off < bytes.len() {
                match wyt_isa::decode(&bytes[off..]) {
                    Ok((_, len)) => off += len.max(1),
                    Err(_) => off += 1,
                }
            }
        }
        Surface::Image => {
            if let Ok(img) = wyt_core::ingest::image_json(&String::from_utf8_lossy(bytes)) {
                // A structurally valid image must also decode totally.
                let mut addr = img.text_base;
                let end = addr.saturating_add(img.text.len() as u32);
                while addr < end {
                    match img.decode_at(addr) {
                        Ok((_, len)) => addr = addr.saturating_add(len.max(1) as u32),
                        Err(_) => addr = addr.saturating_add(1),
                    }
                }
            }
        }
        Surface::Trace => {
            let _ = wyt_core::ingest::trace_json(&String::from_utf8_lossy(bytes));
        }
        Surface::Envelope => {
            let _ = wyt_core::ingest::envelope_text(
                "artifact",
                ENVELOPE_KEY,
                &String::from_utf8_lossy(bytes),
            );
        }
        Surface::Json => {
            let _ = wyt_core::ingest::json_text(&String::from_utf8_lossy(bytes));
        }
        Surface::Emu => {
            let mut img = Image::new();
            img.text = bytes.to_vec();
            img.entry = TEXT_BASE;
            let _ = wyt_core::ingest::hostile_run(&img, vec![], EMU_FUEL);
        }
    }
}

/// Whether driving `bytes` through `surface` panics.
fn panics(surface: Surface, bytes: &[u8]) -> bool {
    catch_unwind(AssertUnwindSafe(|| drive(surface, bytes))).is_err()
}

/// Replay one input: `Ok` when the frontend returns (totality holds),
/// `Err` when it panics. Used by the crash-corpus regression gate.
pub fn replay(surface: Surface, bytes: &[u8]) -> Result<(), String> {
    if panics(surface, bytes) {
        Err(format!("{} frontend panicked on {} bytes", surface.name(), bytes.len()))
    } else {
        Ok(())
    }
}

/// Greedy byte-level minimization of a panicking input: drop
/// exponentially shrinking chunks, then zero individual bytes, as long
/// as the panic survives. Bounded by `max_steps` driver calls.
pub fn minimize(surface: Surface, bytes: Vec<u8>, max_steps: usize) -> Vec<u8> {
    let mut cur = bytes;
    let mut steps = 0usize;
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 && steps < max_steps {
        let mut i = 0;
        let mut progressed = false;
        while i + chunk <= cur.len() && steps < max_steps {
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            steps += 1;
            if panics(surface, &cand) {
                cur = cand;
                progressed = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk /= 2;
        }
    }
    for i in 0..cur.len() {
        if steps >= max_steps {
            break;
        }
        if cur[i] != 0 {
            let mut cand = cur.clone();
            cand[i] = 0;
            steps += 1;
            if panics(surface, &cand) {
                cur = cand;
            }
        }
    }
    cur
}

/// Run a campaign: `iters` mutated cases against one surface.
///
/// Case `i` is derived purely from `mix(seed, i)` and cases fan out
/// over [`wyt_par::par_indexed`], so serial and parallel runs return
/// byte-identical findings in index order. Findings are minimized
/// (serially) before being returned. Emits `fuzz.cases` /
/// `fuzz.findings` counters.
pub fn campaign(surface: Surface, iters: usize, seed: u64) -> Vec<Finding> {
    let corpus = corpus(surface);
    let hits = wyt_par::par_indexed(iters, |i| {
        let case_seed = mix(seed, i as u64);
        let mut rng = Rng::new(case_seed);
        let bytes = mutate(&mut rng, &corpus);
        if panics(surface, &bytes) {
            Some((i, case_seed, bytes))
        } else {
            None
        }
    });
    wyt_obs::counter("fuzz.cases", iters as u64);
    let findings: Vec<Finding> = hits
        .into_iter()
        .flatten()
        .map(|(index, case_seed, bytes)| Finding {
            index,
            case_seed,
            bytes: minimize(surface, bytes, 2000),
        })
        .collect();
    wyt_obs::counter("fuzz.findings", findings.len() as u64);
    findings
}

/// Re-derive the exact mutated input of case `index` in a campaign —
/// the replay path behind `WYT_FUZZ=<seed>`.
pub fn case_bytes(surface: Surface, seed: u64, index: usize) -> Vec<u8> {
    let corpus = corpus(surface);
    let mut rng = Rng::new(mix(seed, index as u64));
    mutate(&mut rng, &corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaces_round_trip_names() {
        for s in Surface::ALL {
            assert_eq!(Surface::parse(s.name()), Some(s));
        }
        assert_eq!(Surface::parse("bogus"), None);
    }

    #[test]
    fn corpus_is_valid_and_deterministic() {
        for s in Surface::ALL {
            let a = corpus(s);
            assert!(!a.is_empty(), "{} corpus empty", s.name());
            assert_eq!(a, corpus(s), "{} corpus nondeterministic", s.name());
            // Unmutated corpus entries must drive cleanly.
            for entry in &a {
                assert!(replay(s, entry).is_ok(), "{} corpus entry panics", s.name());
            }
        }
        // The envelope corpus is not just *driven* cleanly — it
        // actually validates, so mutants explore the accept path too.
        for entry in corpus(Surface::Envelope) {
            assert!(wyt_core::ingest::envelope_text(
                "artifact",
                ENVELOPE_KEY,
                &String::from_utf8_lossy(&entry)
            )
            .is_ok());
        }
    }

    #[test]
    fn mutation_is_seed_deterministic_and_bounded() {
        let corpus = corpus(Surface::Json);
        for i in 0..50u64 {
            let a = mutate(&mut Rng::new(mix(1, i)), &corpus);
            let b = mutate(&mut Rng::new(mix(1, i)), &corpus);
            assert_eq!(a, b);
            assert!(a.len() <= MAX_CASE_BYTES);
        }
    }

    #[test]
    fn minimize_preserves_the_panic() {
        // A synthetic panicking "surface": the Isa walk cannot panic,
        // so test minimize's own mechanics against a trip-wire byte.
        let hay: Vec<u8> = (0..200u8).collect();
        let needle = 0x7fu8;
        let still_trips = |b: &[u8]| b.contains(&needle);
        // Inline re-implementation of the chunk loop against a plain
        // predicate to pin the shrinking behavior itself.
        let mut cur = hay;
        let mut chunk = cur.len() / 2;
        while chunk >= 1 {
            let mut i = 0;
            let mut progressed = false;
            while i + chunk <= cur.len() {
                let mut cand = cur.clone();
                cand.drain(i..i + chunk);
                if still_trips(&cand) {
                    cur = cand;
                    progressed = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 && !progressed {
                break;
            }
            if !progressed {
                chunk /= 2;
            }
        }
        assert_eq!(cur, vec![needle]);
    }

    #[test]
    fn small_campaigns_find_nothing() {
        for s in Surface::ALL {
            let findings = campaign(s, 40, DEFAULT_SEED);
            assert!(findings.is_empty(), "{}: {:?}", s.name(), findings);
        }
    }
}
