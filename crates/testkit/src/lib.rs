//! # wyt-testkit — hermetic test infrastructure
//!
//! Everything the workspace needs to test itself with **zero external
//! dependencies**: a seedable PRNG ([`rng`]), a property-testing harness
//! with failure persistence by seed and greedy shrinking ([`prop`]), a
//! random mini-C program generator ([`progen`]), and the **three-way
//! differential execution oracle** ([`oracle`]) that pins the paper's
//! semantic-preservation claim: for any program, native emulation, the
//! lifted-IR interpretation and the full recompile round-trip must
//! exhibit identical observable behaviour (exit code, output bytes, trap
//! class) under bounded fuel.
//!
//! Reproducing a failure: every harness panic prints a case seed; re-run
//! the same test with `WYT_PROP_SEED=<seed>` to regenerate exactly that
//! case (see [`prop::SEED_ENV`]).
//!
//! ```
//! use wyt_testkit::prop::{check, shrink_vec, vec_of, Config};
//!
//! check(
//!     "sums_commute",
//!     &Config::cases(32),
//!     |rng| vec_of(rng, 0, 16, |r| r.range_i32(-100, 100)),
//!     |v| shrink_vec(v),
//!     |v| {
//!         let fwd: i32 = v.iter().sum();
//!         let rev: i32 = v.iter().rev().sum();
//!         if fwd == rev { Ok(()) } else { Err(format!("{fwd} != {rev}")) }
//!     },
//! );
//! ```

pub mod fault;
pub mod fuzz;
pub mod oracle;
pub mod progen;
pub mod prop;
pub mod rng;

pub use fault::{check_prog_under_fault, check_source_under_fault, FaultPlan, FAULT_ENV};
pub use fuzz::{Finding, Surface, FUZZ_ENV};
pub use oracle::{check_prog, check_source, Obs, OracleConfig, TrapClass};
pub use progen::{gen_prog, render, shrink_prog, Prog};
pub use prop::{check, shrink_vec, vec_of, Config};
pub use rng::Rng;
