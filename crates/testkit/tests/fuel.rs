//! Cross-engine fuel parity: when a budget runs out, the native machine
//! and the lifted-IR interpreter must report it the same way — both as
//! `TrapClass::Fuel` — so the differential oracle can compare bounded
//! runs without special-casing either engine.

use wyt_lifter::lift_image;
use wyt_minicc::{compile, Profile};
use wyt_testkit::oracle::{observe_interp, observe_native};
use wyt_testkit::TrapClass;

const LOOPY: &str = r#"
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 100000; i = i + 1) {
        acc = acc + i;
    }
    return acc & 0x7f;
}
"#;

#[test]
fn starved_engines_agree_on_fuel_class() {
    let img = compile(LOOPY, &Profile::gcc12_o3()).expect("compile").stripped();

    // Generous budget: both engines finish and agree this is a clean exit.
    let full_native = observe_native(&img, &[], 10_000_000);
    assert_eq!(full_native.class, TrapClass::Exit, "{full_native}");

    let lifted = lift_image(&img, &[vec![]]).expect("lift");
    let full_interp = observe_interp(&lifted.module, &[], 10_000_000);
    assert_eq!(full_interp.class, TrapClass::Exit, "{full_interp}");
    assert_eq!(full_native.exit_code, full_interp.exit_code);

    // Starved budget: both engines classify as Fuel, never as a crash.
    let starved_native = observe_native(&img, &[], 50);
    assert_eq!(starved_native.class, TrapClass::Fuel, "{starved_native}");

    let starved_interp = observe_interp(&lifted.module, &[], 50);
    assert_eq!(starved_interp.class, TrapClass::Fuel, "{starved_interp}");
}

#[test]
fn fuel_class_is_not_an_exit() {
    // An out-of-fuel observation must never compare equal to a clean exit,
    // whatever the exit code happens to be.
    let img = compile(LOOPY, &Profile::gcc12_o0()).expect("compile").stripped();
    let done = observe_native(&img, &[], 10_000_000);
    let starved = observe_native(&img, &[], 50);
    assert_ne!(done, starved);
}
