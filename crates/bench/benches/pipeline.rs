//! Criterion micro-benchmarks of the recompilation pipeline itself:
//! how long tracing, lifting, the refinements, and the full recompilation
//! take on a representative workload. (The paper's tables measure the
//! *product*; these measure the *toolchain*, and gate regressions in it.)

use criterion::{criterion_group, criterion_main, Criterion};
use wyt_core::{recompile, Mode};
use wyt_lifter::lift_image;
use wyt_minicc::{compile, Profile};

fn bench_pipeline(c: &mut Criterion) {
    let bench = wyt_spec::by_name("sjeng").expect("suite");
    let img = compile(bench.source, &Profile::gcc44_o3()).unwrap().stripped();
    let inputs = bench.train_inputs();

    c.bench_function("trace_and_lift", |b| {
        b.iter(|| lift_image(&img, &inputs).unwrap())
    });

    c.bench_function("recompile_nosymbolize", |b| {
        b.iter(|| recompile(&img, &inputs, Mode::NoSymbolize).unwrap())
    });

    c.bench_function("recompile_wytiwyg", |b| {
        b.iter(|| recompile(&img, &inputs, Mode::Wytiwyg).unwrap())
    });

    let small = compile("int main() { return 7; }", &Profile::gcc12_o3())
        .unwrap()
        .stripped();
    c.bench_function("recompile_minimal", |b| {
        b.iter(|| recompile(&small, &[vec![]], Mode::Wytiwyg).unwrap())
    });
}

fn bench_emulator(c: &mut Criterion) {
    let bench = wyt_spec::by_name("bzip2").expect("suite");
    let img = compile(bench.source, &Profile::gcc12_o3()).unwrap();
    let input = bench.train_inputs().remove(0);
    c.bench_function("emulate_bzip2_train", |b| {
        b.iter(|| {
            let r = wyt_emu::run_image(&img, input.clone());
            assert!(r.ok());
            r.cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_emulator
}
criterion_main!(benches);
