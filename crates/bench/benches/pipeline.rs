//! Micro-benchmarks of the recompilation pipeline itself: how long
//! tracing, lifting, the refinements, and the full recompilation take on
//! a representative workload. (The paper's tables measure the *product*;
//! these measure the *toolchain*, and gate regressions in it.)
//!
//! Run with `cargo bench -p wyt-bench`. Uses the in-tree harness in
//! `wyt_bench::timing` — no external benchmarking dependencies.

use wyt_bench::timing::Bencher;
use wyt_core::{recompile, Mode};
use wyt_lifter::lift_image;
use wyt_minicc::{compile, Profile};

fn main() {
    let b = Bencher::default();
    let report = |s: wyt_bench::timing::Sample| println!("{}", s.row());

    let bench = wyt_spec::by_name("sjeng").expect("suite");
    let img = compile(bench.source, &Profile::gcc44_o3()).unwrap().stripped();
    let inputs = bench.train_inputs();

    report(b.measure("trace_and_lift", || lift_image(&img, &inputs).unwrap()));
    report(
        b.measure("recompile_nosymbolize", || recompile(&img, &inputs, Mode::NoSymbolize).unwrap()),
    );
    report(b.measure("recompile_wytiwyg", || recompile(&img, &inputs, Mode::Wytiwyg).unwrap()));

    let small = compile("int main() { return 7; }", &Profile::gcc12_o3()).unwrap().stripped();
    report(b.measure("recompile_minimal", || recompile(&small, &[vec![]], Mode::Wytiwyg).unwrap()));

    let bench = wyt_spec::by_name("bzip2").expect("suite");
    let img = compile(bench.source, &Profile::gcc12_o3()).unwrap();
    let input = bench.train_inputs().remove(0);
    report(b.measure("emulate_bzip2_train", || {
        let r = wyt_emu::run_image(&img, input.clone());
        assert!(r.ok());
        r.cycles
    }));
}
